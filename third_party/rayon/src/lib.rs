//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation of the slice of rayon's API that
//! `pdnn-tensor` uses: a sized thread pool with `install`, and
//! `par_chunks_mut(..).enumerate().for_each(..)` over `&mut [T]`.
//!
//! Semantics match rayon where it matters for correctness: chunks are
//! disjoint `&mut` stripes, `for_each` returns only after every chunk
//! has been processed, and panics in workers propagate to the caller.
//! Scheduling is static (round-robin over `threads` scoped workers)
//! rather than work-stealing, which is adequate for the near-uniform
//! GEMM stripes this workspace feeds it.

use std::cell::Cell;

thread_local! {
    /// Parallelism level installed by [`ThreadPool::install`] for the
    /// current thread; `None` means "not inside a pool".
    static ACTIVE_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_parallelism() -> usize {
    ACTIVE_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error returned by [`ThreadPoolBuilder::build`]. The stand-in pool
/// cannot actually fail to build; the type exists for API parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A sized pool. Threads are spawned per `for_each` call (scoped)
/// rather than kept alive; `install` only records the parallelism
/// level for parallel iterators run inside `f`.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's parallelism level active.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        ACTIVE_THREADS.with(|t| {
            let prev = t.replace(Some(self.threads));
            let out = f();
            t.set(prev);
            out
        })
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    use super::current_parallelism;

    /// `&mut [T]` extension providing `par_chunks_mut`.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Parallel iterator over disjoint mutable chunks of a slice.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        #[must_use]
        pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
            EnumerateParChunksMut { inner: self }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct EnumerateParChunksMut<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync,
        {
            let chunks: Vec<(usize, &'a mut [T])> = self
                .inner
                .slice
                .chunks_mut(self.inner.chunk_size)
                .enumerate()
                .collect();
            let workers = current_parallelism().min(chunks.len()).max(1);
            if workers <= 1 {
                for item in chunks {
                    f(item);
                }
                return;
            }
            // Static round-robin assignment over scoped workers; the
            // scope joins (and re-raises worker panics) before return.
            let mut per_worker: Vec<Vec<(usize, &'a mut [T])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in chunks.into_iter().enumerate() {
                per_worker[i % workers].push(item);
            }
            let f = &f;
            std::thread::scope(|s| {
                for work in per_worker {
                    s.spawn(move || {
                        for item in work {
                            f(item);
                        }
                    });
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_cover_every_element() {
        let mut v = vec![0u64; 1037];
        v.as_mut_slice()
            .par_chunks_mut(64)
            .enumerate()
            .for_each(|(i, chunk)| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (i * 64 + j) as u64;
                }
            });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn install_scopes_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_parallelism);
        assert_eq!(inside, 3);
    }

    #[test]
    fn pool_result_is_returned() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut v = vec![1.0f32; 256];
        let total: f32 = pool.install(|| {
            v.as_mut_slice().par_chunks_mut(32).for_each(|c| {
                for x in c.iter_mut() {
                    *x *= 2.0;
                }
            });
            v.iter().sum()
        });
        assert_eq!(total, 512.0);
    }
}
