//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of crossbeam's API that `pdnn-mpisim` uses: an
//! unbounded MPSC channel with timeout-capable receive. Backed by
//! `std::sync::mpsc`, which has identical semantics for this usage
//! (cloneable senders, single receiver per rank, FIFO per sender,
//! disconnect on last-sender drop).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Cloneable sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn senders_clone_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_reports_timeout_then_value() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        }
    }
}
