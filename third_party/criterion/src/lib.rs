//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion's API that `pdnn-bench` uses. The
//! harness is intentionally simple: each benchmark runs a short
//! warmup, then a fixed measurement loop, and prints mean ns/iter
//! (plus derived throughput when declared). There is no statistical
//! analysis, outlier rejection, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration used to derive rate output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
            total_iters: 0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.total_iters == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return;
        }
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.total_iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 * 1e9 / ns_per_iter),
            Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 * 1e9 / ns_per_iter),
        });
        println!(
            "{}/{id}: {ns_per_iter:.0} ns/iter{}",
            self.name,
            rate.unwrap_or_default()
        );
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    total_iters: u64,
}

impl Bencher {
    /// Run `f` for one warmup pass plus `sample_size` timed passes.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.total_iters += self.iters;
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warmup + three timed iterations
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("id", 5), &5usize, |b, &n| {
            b.iter(|| seen = n)
        });
        group.finish();
        assert_eq!(seen, 5);
    }
}
