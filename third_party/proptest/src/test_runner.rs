//! Test configuration and the deterministic generation RNG.

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// SplitMix64 generator seeded from the test name and case index, so
/// every case is reproducible without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        // Modulo bias is ~2^-53 for the bounds tests use; acceptable
        // for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_give_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("alpha", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("beta", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut r = TestRng::for_case("unit", 3);
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
