//! Value-generation strategies: deterministic, shrink-free.

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Object-safe: the combinator methods are `Self: Sized` so trait
/// objects (used by `prop_oneof!`) only need [`Strategy::generate`].
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// `collection::vec(elem, len_range)`.
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + rng.unit_f64() as $ty * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges_respect_bounds", 0);
        for _ in 0..2000 {
            let u = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f32..4.0).generate(&mut rng);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let draw = |case| {
            let mut rng = TestRng::for_case("determinism", case);
            crate::collection::vec(0u64..1000, 0usize..20).generate(&mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(0), draw(1));
    }

    #[test]
    fn oneof_covers_every_arm() {
        let s: OneOf<u32> = OneOf::new(vec![
            Box::new(Just(1u32)),
            Box::new(Just(2u32)),
            Box::new(Just(3u32)),
        ]);
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n..(n + 1)));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let d = doubled.generate(&mut rng);
            assert!(d % 2 == 0 && (2..20).contains(&d));
        }
    }
}
