//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic re-implementation of the proptest surface
//! its test suites use: the `proptest!` macro, range/`Just`/tuple
//! strategies, `prop_map`/`prop_flat_map`, `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * generation is fully deterministic — case `i` of test `t` always
//!   sees the same inputs (seeded from a hash of the test name and the
//!   case index), so failures reproduce without a persistence file;
//! * there is no shrinking — the failing inputs are reported as-is;
//! * `prop_assert*` panics immediately instead of recording a failure
//!   for shrinking.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Inclusive-exclusive bounds on a generated collection length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub start: usize,
        pub end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range must be non-empty");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy generating a `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Entry point macro: a block of property tests sharing one config.
///
/// Supported grammar (the subset this workspace uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_name(x in 0usize..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        __case as u64,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; panics with the failing message.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($s) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
