//! Failure-mode behavior of the message-passing substrate: what
//! happens when ranks die, messages never come, or protocols are
//! violated. The distributed trainer's liveness rests on these
//! semantics.

use pdnn::mpisim::{run_world, CommError, Payload, Src};
use std::time::Duration;

#[test]
fn waiting_on_a_dead_peer_times_out() {
    // Rank 1 exits immediately; rank 0's timed receive must expire
    // rather than hang (other ranks still hold senders, so the
    // channel never disconnects — the timeout is the safety net).
    let results = run_world(3, |comm| {
        if comm.rank() == 0 {
            let r = comm.recv_timeout(Src::Of(1), 5, Duration::from_millis(50));
            matches!(r, Err(CommError::Timeout))
        } else {
            true
        }
    });
    assert!(results[0].result);
}

#[test]
fn send_to_exited_rank_is_buffered_not_lost() {
    // Unbounded channels: a send to a rank that has not yet received
    // (or never will) succeeds — MPI eager semantics. The sender must
    // not block or error.
    let results = run_world(2, |comm| {
        if comm.rank() == 0 {
            // Rank 1 exits without receiving; these sends still land
            // in its (dropped) mailbox or return Disconnected — either
            // way rank 0 terminates.
            for i in 0..100 {
                let r = comm.send(1, 9, Payload::U64(vec![i]));
                if r.is_err() {
                    return false; // peer endpoint observed closed
                }
            }
            true
        } else {
            true // exit immediately
        }
    });
    // Both outcomes are specified; the world itself must terminate.
    assert_eq!(results.len(), 2);
}

#[test]
fn protocol_type_mismatch_is_a_loud_panic() {
    let outcome = std::panic::catch_unwind(|| {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F32(vec![1.0])).unwrap();
            } else {
                // Expecting u64 but receiving f32: must panic with a
                // protocol error, not silently reinterpret.
                let pkt = comm.recv(Src::Of(0), 1).unwrap();
                pkt.payload.into_u64();
            }
        })
    });
    assert!(outcome.is_err(), "type confusion went unnoticed");
}

#[test]
fn worker_panic_propagates_to_the_caller() {
    let outcome = std::panic::catch_unwind(|| {
        run_world(4, |comm| {
            if comm.rank() == 2 {
                panic!("injected worker failure");
            }
            // Other ranks do bounded work and exit (no blocking recv,
            // so the world unwinds cleanly).
            comm.rank()
        })
    });
    assert!(outcome.is_err());
}

#[test]
fn mismatched_collective_lengths_panic() {
    let outcome = std::panic::catch_unwind(|| {
        run_world(2, |comm| {
            let mut buf = vec![0.0f64; comm.rank() + 1]; // 1 vs 2 elements
            comm.reduce(&mut buf, pdnn::mpisim::ReduceOp::Sum, 0)
                .unwrap();
        })
    });
    assert!(
        outcome.is_err(),
        "length mismatch must not silently truncate"
    );
}

#[test]
fn timeout_leaves_comm_usable() {
    // After a timeout the communicator must still deliver later
    // messages correctly (no corrupted matching state).
    let results = run_world(2, |comm| {
        if comm.rank() == 0 {
            let timed_out = comm
                .recv_timeout(Src::Of(1), 7, Duration::from_millis(20))
                .is_err();
            let got = comm.recv(Src::Of(1), 8).unwrap().payload.into_u64();
            (timed_out, got[0])
        } else {
            std::thread::sleep(Duration::from_millis(50));
            comm.send(0, 8, Payload::U64(vec![99])).unwrap();
            (false, 0)
        }
    });
    assert_eq!(results[0].result, (true, 99));
}
