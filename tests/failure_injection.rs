//! Failure-mode behavior of the message-passing substrate: what
//! happens when ranks die, messages never come, or protocols are
//! violated. The distributed trainer's liveness rests on these
//! semantics.

use pdnn::mpisim::{run_world, run_world_faulted, CommError, FaultPlan, Payload, ReduceOp, Src};
use std::time::Duration;

#[test]
fn waiting_on_a_dead_peer_times_out() {
    // Rank 1 exits immediately; rank 0's timed receive must expire
    // rather than hang (other ranks still hold senders, so the
    // channel never disconnects — the timeout is the safety net).
    let results = run_world(3, |comm| {
        if comm.rank() == 0 {
            let r = comm.recv_timeout(Src::Of(1), 5, Duration::from_millis(50));
            matches!(r, Err(CommError::Timeout))
        } else {
            true
        }
    });
    assert!(results[0].result);
}

#[test]
fn send_to_exited_rank_is_buffered_not_lost() {
    // Unbounded channels: a send to a rank that has not yet received
    // (or never will) succeeds — MPI eager semantics. The sender must
    // not block or error.
    let results = run_world(2, |comm| {
        if comm.rank() == 0 {
            // Rank 1 exits without receiving; these sends still land
            // in its (dropped) mailbox or return Disconnected — either
            // way rank 0 terminates.
            for i in 0..100 {
                let r = comm.send(1, 9, Payload::U64(vec![i]));
                if r.is_err() {
                    return false; // peer endpoint observed closed
                }
            }
            true
        } else {
            true // exit immediately
        }
    });
    // Both outcomes are specified; the world itself must terminate.
    assert_eq!(results.len(), 2);
}

#[test]
fn protocol_type_mismatch_is_a_loud_panic() {
    let outcome = std::panic::catch_unwind(|| {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F32(vec![1.0])).unwrap();
            } else {
                // Expecting u64 but receiving f32: must panic with a
                // protocol error, not silently reinterpret.
                let pkt = comm.recv(Src::Of(0), 1).unwrap();
                pkt.payload.into_u64();
            }
        })
    });
    assert!(outcome.is_err(), "type confusion went unnoticed");
}

#[test]
fn worker_panic_propagates_to_the_caller() {
    let outcome = std::panic::catch_unwind(|| {
        run_world(4, |comm| {
            if comm.rank() == 2 {
                panic!("injected worker failure");
            }
            // Other ranks do bounded work and exit (no blocking recv,
            // so the world unwinds cleanly).
            comm.rank()
        })
    });
    assert!(outcome.is_err());
}

#[test]
fn mismatched_collective_lengths_panic() {
    let outcome = std::panic::catch_unwind(|| {
        run_world(2, |comm| {
            let mut buf = vec![0.0f64; comm.rank() + 1]; // 1 vs 2 elements
            comm.reduce(&mut buf, pdnn::mpisim::ReduceOp::Sum, 0)
                .unwrap();
        })
    });
    assert!(
        outcome.is_err(),
        "length mismatch must not silently truncate"
    );
}

#[test]
fn killed_rank_unwinds_and_root_sees_rank_dead() {
    // Rank 2 is killed right before its second collective (the
    // reduce). It must observe `Killed`, every peer must observe
    // `RankDead { rank: 2 }` at a deterministic point, and the
    // world must terminate.
    let plan = FaultPlan::new(1)
        .kill(2, 1)
        .with_timeouts(Duration::from_millis(200), Duration::from_secs(5));
    let results = run_world_faulted(3, &plan, |comm| {
        let mut theta = vec![comm.rank() as f64; 4];
        let b = comm.bcast(&mut theta, 0);
        let mut acc = vec![1.0f64; 4];
        let r = comm.reduce(&mut acc, ReduceOp::Sum, 0);
        (b.is_ok(), r, comm.dead_ranks().to_vec())
    });
    assert!(results[2].result.0, "bcast before the kill point succeeds");
    assert_eq!(results[2].result.1, Err(CommError::Killed));
    assert_eq!(results[0].result.1, Err(CommError::RankDead { rank: 2 }));
    assert_eq!(results[0].result.2, vec![2]);
    assert!(results[1].result.1.is_ok(), "send-side reduce unaffected");
}

#[test]
fn acknowledged_death_lets_survivors_continue() {
    // After the root acknowledges a death, later collectives run
    // cleanly on the survivors; an unacknowledged death keeps being
    // reported so it can never be silently absorbed.
    let plan = FaultPlan::new(2)
        .kill(2, 0)
        .with_timeouts(Duration::from_millis(200), Duration::from_secs(5));
    let results = run_world_faulted(3, &plan, |comm| {
        let mut acc = vec![1.0f64];
        let first = comm.reduce(&mut acc, ReduceOp::Sum, 0);
        if comm.rank() == 0 {
            if let Err(CommError::RankDead { rank }) = &first {
                comm.ack_dead(*rank);
            }
        }
        let mut acc2 = vec![1.0f64];
        let second = comm.reduce(&mut acc2, ReduceOp::Sum, 0);
        (first, second, acc2)
    });
    assert_eq!(results[0].result.0, Err(CommError::RankDead { rank: 2 }));
    assert!(results[0].result.1.is_ok(), "post-ack reduce is clean");
    assert_eq!(results[0].result.2, vec![2.0], "root + rank 1 only");
}

#[test]
fn dropped_message_times_out_but_later_traffic_flows() {
    let plan = FaultPlan::new(3).drop_message(0, 1, 0);
    let results = run_world_faulted(2, &plan, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, Payload::U64(vec![9])).unwrap();
            comm.send(1, 6, Payload::U64(vec![10])).unwrap();
            (true, 0)
        } else {
            let first = comm.recv_timeout(Src::Of(0), 5, Duration::from_millis(50));
            let second = comm.recv(Src::Of(0), 6).unwrap().payload.into_u64();
            (matches!(first, Err(CommError::Timeout)), second[0])
        }
    });
    assert_eq!(results[1].result, (true, 10));
}

#[test]
fn stalled_rank_is_evicted_by_the_root() {
    // Rank 1 stalls past the root's detection window: the root must
    // evict it (reporting RankDead) rather than hang, and the
    // stalled rank must observe `Evicted` when it wakes.
    let plan = FaultPlan::new(4)
        .stall(1, 0, 200)
        .with_timeouts(Duration::from_millis(40), Duration::from_secs(5));
    let results = run_world_faulted(2, &plan, |comm| {
        let mut v = vec![1.0f64];
        let r1 = comm.reduce(&mut v, ReduceOp::Sum, 0);
        let mut w = vec![2.0f64];
        let r2 = comm.bcast(&mut w, 0);
        (r1, r2)
    });
    assert_eq!(results[0].result.0, Err(CommError::RankDead { rank: 1 }));
    assert!(results[0].result.1.is_ok());
    assert_eq!(results[1].result.1, Err(CommError::Evicted));
}

#[test]
fn same_fault_plan_reproduces_identical_outcomes() {
    // The whole point of plan-driven injection: two runs under the
    // same plan observe the failure, detect it, and recover at the
    // same logical points, producing identical results and traces.
    let run = || {
        run_world_faulted(
            4,
            &FaultPlan::new(7)
                .kill(3, 2)
                .with_timeouts(Duration::from_millis(200), Duration::from_secs(5)),
            |comm| {
                let mut log: Vec<String> = Vec::new();
                for _ in 0..3 {
                    let mut theta = vec![0.25f64; 8];
                    let b = comm.bcast(&mut theta, 0);
                    log.push(format!("{b:?}"));
                    let mut g = vec![comm.rank() as f64; 8];
                    let r = comm.reduce(&mut g, ReduceOp::Sum, 0);
                    log.push(format!("{r:?}:{g:?}"));
                    if comm.rank() == 0 {
                        if let Err(CommError::RankDead { rank }) = r {
                            comm.ack_dead(rank);
                        }
                    }
                }
                // Only the root's dead-set is compared: when a
                // *bystander* rank pulls the death packet out of its
                // inbox is scheduling-dependent (detection there is
                // lazy), but the root discovers the death at a fixed
                // point in its receive sequence.
                let dead = if comm.rank() == 0 {
                    comm.dead_ranks().to_vec()
                } else {
                    Vec::new()
                };
                (log, dead)
            },
        )
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.result, rb.result, "rank {}", ra.rank);
        assert_eq!(ra.trace, rb.trace, "rank {}", ra.rank);
    }
}

#[test]
fn timeout_leaves_comm_usable() {
    // After a timeout the communicator must still deliver later
    // messages correctly (no corrupted matching state).
    let results = run_world(2, |comm| {
        if comm.rank() == 0 {
            let timed_out = comm
                .recv_timeout(Src::Of(1), 7, Duration::from_millis(20))
                .is_err();
            let got = comm.recv(Src::Of(1), 8).unwrap().payload.into_u64();
            (timed_out, got[0])
        } else {
            std::thread::sleep(Duration::from_millis(50));
            comm.send(0, 8, Payload::U64(vec![99])).unwrap();
            (false, 0)
        }
    });
    assert_eq!(results[0].result, (true, 99));
}
