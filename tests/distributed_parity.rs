//! The paper's "no loss in accuracy" claim, tested functionally:
//! distributed Hessian-free training over real message passing must
//! match serial training in quality, independent of worker count and
//! partitioning strategy.

use pdnn::core::{
    train_distributed, DistributedConfig, DnnProblem, HfConfig, HfOptimizer, Objective,
};
use pdnn::dnn::{Activation, Network};
use pdnn::speech::{Corpus, CorpusSpec, Strategy};
use pdnn::tensor::GemmContext;
use pdnn::util::Prng;

fn setup() -> (Corpus, Network<f32>, HfConfig) {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 72,
        ..CorpusSpec::tiny(888)
    });
    let mut rng = Prng::new(11);
    let net = Network::new(
        &[corpus.spec().feature_dim, 16, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let hf = HfConfig::small_task()
        .into_builder()
        .max_iters(5)
        .build()
        .unwrap();
    (corpus, net, hf)
}

fn serial_result(corpus: &Corpus, net: &Network<f32>, hf: HfConfig) -> (f64, f64) {
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut problem = DnnProblem::new(
        net.clone(),
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let stats = HfOptimizer::new(hf).train(&mut problem);
    let last = stats.iter().rev().find(|s| s.accepted).expect("no step");
    (last.heldout_after, last.heldout_accuracy)
}

#[test]
fn distributed_matches_serial_across_worker_counts() {
    let (corpus, net, hf) = setup();
    let (serial_loss, serial_acc) = serial_result(&corpus, &net, hf);

    for workers in [1usize, 2, 3, 5] {
        let config = DistributedConfig {
            workers,
            hf,
            heldout_frac: 0.2,
            ..Default::default()
        };
        let out = train_distributed(&net, &corpus, &Objective::CrossEntropy, &config)
            .expect("training failed");
        let last = out
            .stats
            .iter()
            .rev()
            .find(|s| s.accepted)
            .unwrap_or_else(|| panic!("{workers} workers: no accepted step"));
        // Same data, same optimizer; only f32 reduction order differs,
        // which can steer CG slightly — quality must match.
        assert!(
            (last.heldout_after - serial_loss).abs() < 0.05 * (1.0 + serial_loss),
            "{workers} workers: loss {} vs serial {serial_loss}",
            last.heldout_after
        );
        assert!(
            (last.heldout_accuracy - serial_acc).abs() < 0.05,
            "{workers} workers: accuracy {} vs serial {serial_acc}",
            last.heldout_accuracy
        );
    }
}

#[test]
fn partition_strategy_does_not_change_quality() {
    let (corpus, net, hf) = setup();
    let mut losses = Vec::new();
    for strategy in [
        Strategy::Contiguous,
        Strategy::RoundRobin,
        Strategy::SortedBalanced,
    ] {
        let config = DistributedConfig {
            workers: 3,
            hf,
            strategy,
            heldout_frac: 0.2,
            ..Default::default()
        };
        let out = train_distributed(&net, &corpus, &Objective::CrossEntropy, &config)
            .expect("training failed");
        let last = out.stats.iter().rev().find(|s| s.accepted).unwrap();
        losses.push(last.heldout_after);
    }
    let max = losses.iter().cloned().fold(f64::MIN, f64::max);
    let min = losses.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.05 * (1.0 + min),
        "strategies disagree: {losses:?}"
    );
}

#[test]
fn distributed_run_produces_paper_instrumentation() {
    let (corpus, net, hf) = setup();
    let hf = hf.into_builder().max_iters(2).build().unwrap();
    let config = DistributedConfig {
        workers: 3,
        hf,
        heldout_frac: 0.2,
        ..Default::default()
    };
    let out = train_distributed(&net, &corpus, &Objective::CrossEntropy, &config)
        .expect("training failed");

    // The phase names of Figures 2-3.
    for phases in &out.worker_phases {
        for name in [
            "load_data",
            "gradient_loss",
            "worker_curvature_product",
            "eval_heldout",
            "sync_weights_worker",
        ] {
            assert!(phases.get(name).calls > 0, "missing worker phase {name}");
        }
    }
    assert!(out.master_phases.get("sync_weights_master").calls > 0);
    assert!(out.master_phases.get("load_data").calls > 0);

    // The comm classes of Figures 4-5.
    assert!(out.master_trace.p2p.bytes_sent > 0);
    assert!(out.master_trace.collective.bytes_sent > 0);
    assert!(out.master_trace.collectives_completed > 0);
    for t in &out.worker_traces {
        assert!(t.collective.bytes_received > 0);
    }

    // Weight broadcasts move ~num_params * 4 bytes per sync.
    let per_sync = 4 * net.num_params() as u64;
    assert!(
        out.master_trace.collective.bytes_sent >= per_sync,
        "master sent less than one parameter vector"
    );
}

#[test]
fn threads_per_rank_does_not_change_results() {
    // The paper's ranks x threads grid: math must be invariant to the
    // within-rank threading (GEMM decomposition is deterministic).
    let (corpus, net, hf) = setup();
    let hf = hf.into_builder().max_iters(3).build().unwrap();
    let run = |threads: usize| {
        let config = DistributedConfig {
            workers: 2,
            hf,
            threads_per_rank: threads,
            heldout_frac: 0.2,
            ..Default::default()
        };
        let out = train_distributed(&net, &corpus, &Objective::CrossEntropy, &config)
            .expect("training failed");
        out.network.to_flat()
    };
    let t1 = run(1);
    let t2 = run(2);
    assert_eq!(t1, t2, "threading changed the arithmetic");
}
