//! End-to-end integration: corpus generation → network → training →
//! evaluation, across the optimizers and objectives.

use pdnn::baselines::{train_sgd, SgdConfig};
use pdnn::core::{DnnProblem, HfConfig, HfOptimizer, HfProblem, Objective};
use pdnn::dnn::{mmi_batch, state_error_rate, viterbi_decode_batch, Activation, Network};
use pdnn::speech::{Corpus, CorpusSpec};
use pdnn::tensor::GemmContext;
use pdnn::util::Prng;

fn corpus() -> Corpus {
    Corpus::generate(CorpusSpec {
        utterances: 96,
        ..CorpusSpec::tiny(4242)
    })
}

fn network(corpus: &Corpus, seed: u64) -> Network<f32> {
    let mut rng = Prng::new(seed);
    Network::new(
        &[corpus.spec().feature_dim, 20, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    )
}

#[test]
fn hessian_free_learns_the_synthetic_task() {
    let corpus = corpus();
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut problem = DnnProblem::new(
        network(&corpus, 1),
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let start = problem.heldout_eval(&problem.theta());
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(10)
        .build()
        .unwrap();
    let stats = HfOptimizer::new(cfg).train(&mut problem);
    let last = stats.iter().rev().find(|s| s.accepted).expect("no step");
    assert!(
        last.heldout_after < start.loss * 0.5,
        "loss {} -> {}",
        start.loss,
        last.heldout_after
    );
    assert!(
        last.heldout_accuracy > 0.8,
        "accuracy only {}",
        last.heldout_accuracy
    );
    // The paper: convergence within 20-40 passes; our small task
    // converges much faster, but losses must be monotone over
    // accepted steps.
    let accepted: Vec<_> = stats.iter().filter(|s| s.accepted).collect();
    for w in accepted.windows(2) {
        assert!(w[1].heldout_after <= w[0].heldout_after + 1e-9);
    }
}

#[test]
fn hf_matches_sgd_quality_on_the_same_task() {
    // The paper's premise: HF is competitive with SGD in quality
    // while being parallelizable. Both must solve the task.
    let corpus = corpus();
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let train = corpus.shard(&train_ids);
    let heldout = corpus.shard(&held_ids);
    let ctx = GemmContext::sequential();

    let mut sgd_net = network(&corpus, 1);
    let sgd_stats = train_sgd(
        &mut sgd_net,
        &ctx,
        &train,
        &heldout,
        &SgdConfig {
            epochs: 12,
            minibatch: 128,
            ..Default::default()
        },
    );
    let sgd_acc = sgd_stats.last().unwrap().heldout_accuracy;

    let mut problem = DnnProblem::new(
        network(&corpus, 1),
        ctx,
        train,
        heldout,
        Objective::CrossEntropy,
    );
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(12)
        .build()
        .unwrap();
    let stats = HfOptimizer::new(cfg).train(&mut problem);
    let hf_acc = stats
        .iter()
        .rev()
        .find(|s| s.accepted)
        .unwrap()
        .heldout_accuracy;

    assert!(sgd_acc > 0.8, "SGD failed: {sgd_acc}");
    assert!(hf_acc > 0.8, "HF failed: {hf_acc}");
    assert!(
        (hf_acc - sgd_acc).abs() < 0.12,
        "quality gap too large: sgd {sgd_acc} vs hf {hf_acc}"
    );
}

#[test]
fn sequence_training_improves_the_sequence_criterion() {
    // Enough data that the held-out set tracks training (no
    // overfitting cliff), and light CE pretraining so the sequence
    // criterion has headroom — the regime where sequence training
    // shows monotone held-out MMI improvement with ρ ≈ 1.
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 200,
        emission_noise: 1.0,
        ..CorpusSpec::tiny(99)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let graph = corpus.denominator_graph();
    let ctx = GemmContext::sequential();

    let mmi_of = |net: &Network<f32>| {
        let shard = corpus.shard(&held_ids);
        let logits = net.logits(&ctx, &shard.x);
        mmi_batch(&logits, &shard.labels, &shard.utt_lens, &graph).loss / shard.frames() as f64
    };

    // Stage 1: CE.
    let mut ce = DnnProblem::new(
        network(&corpus, 2),
        ctx.clone(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(2)
        .build()
        .unwrap();
    HfOptimizer::new(cfg).train(&mut ce);
    let ce_net = ce.into_network();
    let before = mmi_of(&ce_net);

    // Stage 2: sequence.
    let mut seq = DnnProblem::new(
        ce_net,
        ctx.clone(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::Sequence(graph.clone()),
    );
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(6)
        .build()
        .unwrap();
    let stats = HfOptimizer::new(cfg).train(&mut seq);
    let after = mmi_of(&seq.into_network());

    assert!(
        stats.iter().any(|s| s.accepted),
        "no sequence step accepted"
    );
    assert!(
        after < before * 0.9,
        "sequence criterion did not meaningfully improve: {before} -> {after}"
    );
}

#[test]
fn viterbi_decoding_beats_frame_argmax_on_heldout() {
    // The decode-time analogue of the paper's WER metric: combining
    // the DNN scores with the transition model must not lose to
    // per-frame argmax, and typically wins on noisy tasks.
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 120,
        emission_noise: 1.3,
        ..CorpusSpec::tiny(777)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.25);
    let ctx = GemmContext::sequential();
    let mut problem = DnnProblem::new(
        network(&corpus, 5),
        ctx.clone(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(6)
        .build()
        .unwrap();
    HfOptimizer::new(cfg).train(&mut problem);
    let net = problem.into_network();

    let held = corpus.shard(&held_ids);
    let logits = net.logits(&ctx, &held.x);
    let argmax: Vec<u32> = logits.row_argmax().iter().map(|&v| v as u32).collect();
    let decoded = viterbi_decode_batch(&logits, &held.utt_lens, &corpus.denominator_graph());
    let ser_argmax = state_error_rate(&argmax, &held.labels);
    let ser_viterbi = state_error_rate(&decoded, &held.labels);
    assert!(
        ser_viterbi <= ser_argmax + 1e-9,
        "viterbi {ser_viterbi} lost to argmax {ser_argmax}"
    );
    assert!(ser_viterbi < 0.5, "decoder failed outright: {ser_viterbi}");
}

#[test]
fn deterministic_given_seeds() {
    let corpus = corpus();
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let run = || {
        let mut problem = DnnProblem::new(
            network(&corpus, 3),
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        );
        let cfg = HfConfig::small_task()
            .into_builder()
            .max_iters(3)
            .build()
            .unwrap();
        let stats = HfOptimizer::new(cfg).train(&mut problem);
        (stats.last().unwrap().heldout_after, problem.theta())
    };
    let (l1, t1) = run();
    let (l2, t2) = run();
    assert_eq!(l1, l2);
    assert_eq!(t1, t2);
}
