//! Integration checks on the figure/table generators: every
//! reproduction target renders, persists as CSV, and the headline
//! shape claims hold (belt-and-braces over the unit tests, exercised
//! through the public facade).

use pdnn::perfmodel::figures;
use pdnn::perfmodel::{bgq_time, BgqRun, JobSpec};

#[test]
fn all_generators_emit_csv() {
    let dir = std::env::temp_dir().join(format!("pdnn-figures-{}", std::process::id()));
    let job = JobSpec::ce_50h();
    let targets = [
        ("fig1a", figures::fig1(&job, &figures::fig1a_configs())),
        (
            "fig1b",
            figures::fig1(&JobSpec::ce_400h(), &figures::fig1b_configs()),
        ),
        ("fig2", figures::fig2(&job)),
        ("fig3", figures::fig3(&job)),
        ("fig4", figures::fig4(&job)),
        ("fig5", figures::fig5(&job)),
        ("table1", figures::table1()),
        ("comm", figures::comm_ablation(64 << 20, 1024)),
    ];
    for (name, table) in targets {
        assert!(!table.is_empty(), "{name} has no rows");
        let path = table.write_csv(&dir, name).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.lines().count() > 1, "{name} CSV has no data rows");
        // Every row has the same number of commas as the header.
        let header_cols = content.lines().next().unwrap().split(',').count();
        for line in content.lines() {
            assert_eq!(line.split(',').count(), header_cols, "{name}: ragged CSV");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn headline_claims_hold_through_the_facade() {
    // Figure 1(a): 2048-2-32 < 4096-4-16 < 1024-1-64.
    let job = JobSpec::ce_50h();
    let t = |r: BgqRun| bgq_time(&job, &r).total_seconds();
    let t2048 = t(BgqRun::new(2048, 2, 32));
    let t4096 = t(BgqRun::new(4096, 4, 16));
    let t1024 = t(BgqRun::new(1024, 1, 64));
    assert!(t2048 < t4096 && t4096 < t1024, "{t2048} {t4096} {t1024}");

    // Table I: BG/Q wins on both objectives, by a smaller factor for
    // sequence training.
    let [(xc, bc, sc), (xs, bs, ss)] = figures::table1_values();
    assert!(xc > bc && xs > bs);
    assert!(ss < sc, "sequence speedup {ss} !< CE speedup {sc}");

    // Figure 1(b): two racks meaningfully faster on 400 h.
    let job400 = JobSpec::ce_400h();
    let one_rack = bgq_time(&job400, &BgqRun::new(4096, 4, 16)).total_seconds();
    let two_racks = bgq_time(&job400, &BgqRun::new(8192, 4, 16)).total_seconds();
    assert!(two_racks < one_rack);
    let gain = one_rack / two_racks;
    assert!(gain < 1.9, "super-linear two-rack gain {gain}?");
}

#[test]
fn imbalance_inflates_modeled_time_proportionally() {
    // Section V.C mechanism: every compute phase waits for the
    // slowest worker.
    let run = BgqRun::new(2048, 2, 32);
    let mut balanced = JobSpec::ce_50h();
    balanced.imbalance = 1.0;
    let mut skewed = balanced.clone();
    skewed.imbalance = 1.5;
    let tb = bgq_time(&balanced, &run);
    let ts = bgq_time(&skewed, &run);
    let gb = tb.phase("gradient_loss").unwrap().worker_compute_s;
    let gs = ts.phase("gradient_loss").unwrap().worker_compute_s;
    assert!(
        (gs / gb - 1.5).abs() < 1e-9,
        "gradient did not scale: {}",
        gs / gb
    );
    assert!(ts.total_seconds() > tb.total_seconds());
}
