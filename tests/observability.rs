//! Integration coverage for the unified telemetry subsystem: a real
//! 4-rank distributed training run must leave almost no wall time
//! unaccounted for on any rank, and the per-rank telemetry must
//! survive a JSONL export/import round trip bit-for-bit.

use pdnn::core::{train_distributed, DistributedConfig, HfConfig, Objective, TrainOutput};
use pdnn::dnn::{Activation, Network};
use pdnn::obs::jsonl::{read_jsonl, write_jsonl};
use pdnn::obs::{SpanRecord, Telemetry};
use pdnn::speech::{Corpus, CorpusSpec};
use pdnn::util::Prng;

fn train_four_ranks() -> TrainOutput {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 48,
        ..CorpusSpec::tiny(4242)
    });
    let mut rng = Prng::new(7);
    let net = Network::new(
        &[corpus.spec().feature_dim, 12, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let config = DistributedConfig {
        workers: 3,
        hf: HfConfig::small_task()
            .into_builder()
            .max_iters(3)
            .build()
            .unwrap(),
        heldout_frac: 0.2,
        ..Default::default()
    };
    train_distributed(&net, &corpus, &Objective::CrossEntropy, &config).expect("training failed")
}

/// Fraction of `[first start, last end]` covered by the union of the
/// span intervals (overlap counted once).
fn span_coverage(spans: &[SpanRecord]) -> f64 {
    assert!(!spans.is_empty(), "rank recorded no spans");
    let mut intervals: Vec<(f64, f64)> = spans.iter().map(|s| (s.start, s.end)).collect();
    intervals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let first = intervals[0].0;
    let last = intervals.iter().fold(f64::MIN, |m, &(_, e)| m.max(e));
    let mut union = 0.0;
    let mut cursor = first;
    for (start, end) in intervals {
        if end > cursor {
            union += end - start.max(cursor);
            cursor = end;
        }
    }
    let wall = last - first;
    if wall <= 0.0 {
        1.0
    } else {
        union / wall
    }
}

#[test]
fn four_rank_training_spans_cover_each_ranks_time() {
    let out = train_four_ranks();
    assert!(!out.stats.is_empty(), "training produced no iterations");
    assert_eq!(out.worker_telemetries.len(), 3);

    let coverage = span_coverage(&out.master_telemetry.spans);
    assert!(
        coverage >= 0.95,
        "master spans cover only {:.1}% of its wall time",
        100.0 * coverage
    );
    for (w, telemetry) in out.worker_telemetries.iter().enumerate() {
        let coverage = span_coverage(&telemetry.spans);
        assert!(
            coverage >= 0.95,
            "worker {w} spans cover only {:.1}% of its wall time",
            100.0 * coverage
        );
    }

    // The recorder's counters agree with the optimizer's own account.
    assert_eq!(
        out.master_telemetry.counter("hf_iterations"),
        out.stats.len() as u64
    );
}

#[test]
fn per_rank_telemetry_round_trips_through_jsonl() {
    let out = train_four_ranks();
    let mut per_rank: Vec<Telemetry> = vec![out.master_telemetry];
    per_rank.extend(out.worker_telemetries);

    let path =
        std::env::temp_dir().join(format!("pdnn_observability_{}.jsonl", std::process::id()));
    write_jsonl(&path, &per_rank).expect("jsonl export failed");
    let back = read_jsonl(&path).expect("jsonl import failed");
    std::fs::remove_file(&path).ok();

    assert_eq!(back.len(), per_rank.len());
    for (rank, (parsed_rank, parsed)) in back.into_iter().enumerate() {
        assert_eq!(parsed_rank, rank as u64);
        assert_eq!(
            parsed, per_rank[rank],
            "rank {rank} telemetry changed across the JSONL round trip"
        );
    }
}
