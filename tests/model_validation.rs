//! Cross-layer validation: the analytic scaling model
//! (`pdnn-perfmodel`) extrapolates shapes that the *functional*
//! runtime, running the real protocol under a virtual clock, must
//! reproduce at small scale. If these diverge, the figure
//! reproductions are extrapolating the wrong mechanism.

use pdnn::bgq::Network;
use pdnn::mpisim::{run_world, LinkModel, Payload, ReduceOp, Src};
use std::sync::Arc;

/// Adapter: the BG/Q torus point-to-point cost drives the functional
/// runtime's virtual clock.
struct BgqLink(Network);

impl LinkModel for BgqLink {
    fn p2p_seconds(&self, bytes: u64) -> f64 {
        self.0.p2p_time(bytes)
    }
}

fn max_vtime(results: &[pdnn::mpisim::RankOutcome<f64>]) -> f64 {
    results.iter().map(|r| r.result).fold(0.0, f64::max)
}

#[test]
fn functional_bcast_sits_between_hw_collective_and_fanout_models() {
    // One 4 MB parameter broadcast over 64 ranks. The analytic
    // hardware-collective model is a lower bound (it assumes torus
    // pipelining); the sequential fan-out is the upper bound the
    // paper abandoned; the emergent software binomial tree must land
    // strictly between.
    let ranks = 64usize;
    let bytes = 4usize << 20;
    let net = Network::bgq(64);
    let link: Arc<dyn LinkModel> = Arc::new(BgqLink(net));

    let l2 = Arc::clone(&link);
    let functional = max_vtime(&run_world(ranks, move |comm| {
        comm.set_link_model(Arc::clone(&l2));
        let mut buf = if comm.rank() == 0 {
            vec![0.0f32; bytes / 4]
        } else {
            Vec::new()
        };
        comm.bcast(&mut buf, 0).unwrap();
        comm.vtime()
    }));

    let hw_model = net_bcast(bytes as u64, ranks);
    let fanout_model = (ranks - 1) as f64 * Network::bgq(64).p2p_time(bytes as u64);
    assert!(
        functional >= hw_model,
        "software tree {functional} beat the pipelined-hardware bound {hw_model}"
    );
    assert!(
        functional < fanout_model / 3.0,
        "software tree {functional} not clearly better than fan-out {fanout_model}"
    );
}

fn net_bcast(bytes: u64, ranks: usize) -> f64 {
    Network::bgq(64).bcast_time(bytes, ranks)
}

#[test]
fn compute_scaling_matches_the_models_assumption() {
    // The perfmodel divides per-iteration gradient compute by the
    // worker count. Reproduce functionally: charge each worker
    // frames/w of modeled compute, reduce to the master, and check
    // the master-side completion ratio between 4 and 8 workers.
    let frames = 80_000.0;
    let secs_per_frame = 1e-4;
    let run = |workers: usize| -> f64 {
        let results = run_world(workers + 1, move |comm| {
            comm.set_link_model(Arc::new(BgqLink(Network::bgq(64))));
            if comm.rank() > 0 {
                comm.advance_vtime(frames / workers as f64 * secs_per_frame);
            }
            let mut g = vec![0.0f32; 1000];
            comm.reduce(&mut g, ReduceOp::Sum, 0).unwrap();
            comm.vtime()
        });
        results[0].result // master completion time
    };
    let t4 = run(4);
    let t8 = run(8);
    let ratio = t4 / t8;
    assert!(
        (ratio - 2.0).abs() < 0.1,
        "compute-dominated phase should halve with 2x workers: ratio {ratio}"
    );
}

#[test]
fn imbalance_inflates_functional_step_time_like_the_model() {
    // perfmodel multiplies worker compute by the imbalance factor;
    // functionally, the synchronous reduce waits for the straggler.
    let workers = 6usize;
    let base = 1.0f64;
    let run = |imbalance: f64| -> f64 {
        let results = run_world(workers + 1, move |comm| {
            comm.set_link_model(Arc::new(BgqLink(Network::bgq(64))));
            if comm.rank() > 0 {
                // One worker carries the imbalanced load.
                let load = if comm.rank() == 1 {
                    base * imbalance
                } else {
                    base
                };
                comm.advance_vtime(load);
            }
            let mut g = vec![0.0f32; 64];
            comm.reduce(&mut g, ReduceOp::Sum, 0).unwrap();
            comm.vtime()
        });
        results[0].result
    };
    let balanced = run(1.0);
    let skewed = run(1.5);
    let ratio = skewed / balanced;
    assert!(
        (ratio - 1.5).abs() < 0.05,
        "step time should scale with the imbalance factor: {ratio}"
    );
}

#[test]
fn master_fanout_grows_linearly_with_ranks_functionally() {
    // The model's load_data term: the master ships per-worker
    // manifests point-to-point, serialized on its injection port.
    let bytes_per_worker = 256 * 1024;
    let run = |workers: usize| -> f64 {
        let results = run_world(workers + 1, move |comm| {
            comm.set_link_model(Arc::new(BgqLink(Network::bgq(64))));
            if comm.rank() == 0 {
                for w in 1..=workers {
                    comm.send(w, 7, Payload::Bytes(vec![0u8; bytes_per_worker]))
                        .unwrap();
                }
            } else {
                comm.recv(Src::Of(0), 7).unwrap();
            }
            comm.vtime()
        });
        results[0].result
    };
    let t8 = run(8);
    let t16 = run(16);
    let ratio = t16 / t8;
    assert!(
        (ratio - 2.0).abs() < 0.1,
        "master fan-out should be linear in workers: ratio {ratio}"
    );
}
