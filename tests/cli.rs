//! End-to-end tests of the `pdnn-train` command-line binary:
//! training, checkpointing, and resume across objectives.

use std::process::Command;

fn train_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pdnn-train")
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pdnn-cli-{}-{name}", std::process::id()))
}

#[test]
fn serial_training_run_succeeds() {
    let out = Command::new(train_bin())
        .args(["--utterances", "40", "--iters", "2"])
        .output()
        .expect("failed to spawn pdnn-train");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mode: serial"), "{stdout}");
    assert!(stdout.contains("heldout loss"), "{stdout}");
}

#[test]
fn distributed_save_then_sequence_resume() {
    let ckpt = tmpfile("roundtrip.pdnn");
    let _ = std::fs::remove_file(&ckpt);

    let out = Command::new(train_bin())
        .args([
            "--utterances",
            "40",
            "--iters",
            "2",
            "--workers",
            "2",
            "--save",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn failed");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists(), "checkpoint not written");

    let out = Command::new(train_bin())
        .args([
            "--utterances",
            "40",
            "--iters",
            "1",
            "--objective",
            "sequence",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn failed");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resumed from"), "{stdout}");
    std::fs::remove_file(&ckpt).unwrap();
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = Command::new(train_bin())
        .args(["--objective", "nonsense"])
        .output()
        .expect("spawn failed");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown --objective"), "{stderr}");

    // Zero iterations must be a clean CLI error, not a config panic.
    let out = Command::new(train_bin())
        .args(["--iters", "0"])
        .output()
        .expect("spawn failed");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--iters must be at least 1") && !stderr.contains("panicked"),
        "{stderr}"
    );

    let out = Command::new(train_bin())
        .args(["--resume", "/nonexistent/path.pdnn"])
        .output()
        .expect("spawn failed");
    assert!(!out.status.success());
}

#[test]
fn checkpoint_shape_mismatch_is_rejected() {
    let ckpt = tmpfile("mismatch.pdnn");
    let _ = std::fs::remove_file(&ckpt);
    // Train with 8 states, then resume claiming 6.
    let out = Command::new(train_bin())
        .args([
            "--utterances",
            "30",
            "--iters",
            "1",
            "--states",
            "8",
            "--save",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn failed");
    assert!(out.status.success());
    let out = Command::new(train_bin())
        .args([
            "--utterances",
            "30",
            "--iters",
            "1",
            "--states",
            "6",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn failed");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not match"), "{stderr}");
    std::fs::remove_file(&ckpt).unwrap();
}
