//! Distributed Hessian-free training — the paper's core scenario at
//! laptop scale: one master coordinating data-parallel workers over
//! (simulated) MPI, with the paper's load-balanced utterance
//! assignment, followed by the per-rank communication/phase report
//! that mirrors the paper's Figures 2–5 instrumentation.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use pdnn::core::{train_distributed, DistributedConfig, Objective};
use pdnn::dnn::{Activation, Network};
use pdnn::speech::{Corpus, CorpusSpec, Strategy};
use pdnn::util::Prng;

fn main() {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 160,
        speakers: 12,
        ..CorpusSpec::tiny(77)
    });
    let mut rng = Prng::new(3);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 24, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );

    let mut config = DistributedConfig {
        workers: 4,
        strategy: Strategy::SortedBalanced, // the paper's Section V.C fix
        ..Default::default()
    };
    config.hf.max_iters = 6;

    println!(
        "training: {} workers + 1 master, {} frames, {} parameters\n",
        config.workers,
        corpus.total_frames(),
        net0.num_params()
    );

    let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config)
        .expect("training failed");

    println!("iter  heldout loss  accuracy  accepted");
    for s in &out.stats {
        println!(
            "{:>4}  {:>12.4}  {:>8.3}  {}",
            s.iter,
            s.heldout_after,
            if s.heldout_accuracy.is_nan() {
                0.0
            } else {
                s.heldout_accuracy
            },
            s.accepted
        );
    }

    // The instrumentation the paper's figures are built from:
    println!("\n-- master phases --\n{}", out.master_phases.report());
    println!("-- worker 0 phases --\n{}", out.worker_phases[0].report());
    println!(
        "-- master MPI -- collective: {:.1} ms ({} ops), p2p: {:.1} ms ({} sends)",
        out.master_trace.collective.seconds * 1e3,
        out.master_trace.collectives_completed,
        out.master_trace.p2p.seconds * 1e3,
        out.master_trace.p2p.sends,
    );
    for (w, t) in out.worker_traces.iter().enumerate() {
        println!(
            "-- worker {w} MPI -- collective: {:.1} ms, bytes rx: {}",
            t.collective.seconds * 1e3,
            pdnn::util::fmt_count(t.collective.bytes_received + t.p2p.bytes_received),
        );
    }

    let last = out.stats.iter().rev().find(|s| s.accepted).unwrap();
    println!(
        "\nfinal heldout accuracy: {:.1}%",
        100.0 * last.heldout_accuracy
    );
}
