//! The paper's two objectives end to end: cross-entropy training
//! followed by sequence-discriminative (lattice-free MMI) training —
//! the CE/sequence pair of Table I.
//!
//! CE training learns frame classification; the sequence pass then
//! optimizes the utterance-level criterion directly against the
//! denominator graph (the corpus's own state bigram), which is what
//! production systems do for the best word-error rates.
//!
//! ```sh
//! cargo run --release --example sequence_training
//! ```

use pdnn::core::{DnnProblem, HfConfig, HfOptimizer, Objective};
use pdnn::dnn::{mmi_batch, state_error_rate, viterbi_decode_batch, Activation, Network};
use pdnn::speech::{Corpus, CorpusSpec};
use pdnn::tensor::GemmContext;
use pdnn::util::Prng;

fn mmi_loss_of(net: &Network<f32>, corpus: &Corpus, ids: &[usize]) -> f64 {
    let shard = corpus.shard(ids);
    let ctx = GemmContext::sequential();
    let logits = net.logits(&ctx, &shard.x);
    let out = mmi_batch(
        &logits,
        &shard.labels,
        &shard.utt_lens,
        &corpus.denominator_graph(),
    );
    out.loss / shard.frames() as f64
}

/// State error rate of the Viterbi decode — the synthetic task's
/// analogue of the word error rate the paper reports.
fn ser_of(net: &Network<f32>, corpus: &Corpus, ids: &[usize]) -> f64 {
    let shard = corpus.shard(ids);
    let ctx = GemmContext::sequential();
    let logits = net.logits(&ctx, &shard.x);
    let decoded = viterbi_decode_batch(&logits, &shard.utt_lens, &corpus.denominator_graph());
    state_error_rate(&decoded, &shard.labels)
}

fn main() {
    // A noisier task than the quickstart: CE training alone cannot
    // fully resolve the frames, leaving headroom the sequence-level
    // criterion exploits via the transition structure.
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 100,
        emission_noise: 1.1,
        ..CorpusSpec::tiny(999)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut rng = Prng::new(5);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 24, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );

    // ---- stage 1: cross-entropy -----------------------------------
    let mut ce_problem = DnnProblem::new(
        net0,
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let ce_cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(8)
        .build()
        .expect("invalid HF configuration");
    let ce_stats = HfOptimizer::new(ce_cfg).train(&mut ce_problem);
    let ce_net = ce_problem.into_network();
    let ce_last = ce_stats.iter().rev().find(|s| s.accepted).unwrap();
    let mmi_after_ce = mmi_loss_of(&ce_net, &corpus, &held_ids);
    let ser_after_ce = ser_of(&ce_net, &corpus, &held_ids);
    println!(
        "after CE training:   heldout CE {:.4}, accuracy {:.3}, heldout MMI {:.4}, SER {:.3}",
        ce_last.heldout_after, ce_last.heldout_accuracy, mmi_after_ce, ser_after_ce
    );

    // ---- stage 2: sequence (MMI) ----------------------------------
    let mut seq_problem = DnnProblem::new(
        ce_net,
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::Sequence(corpus.denominator_graph()),
    );
    let seq_cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(6)
        .lambda0(1.0) // fresh damping for the new objective
        .build()
        .expect("invalid HF configuration");
    let seq_stats = HfOptimizer::new(seq_cfg).train(&mut seq_problem);
    let seq_net = seq_problem.into_network();
    let mmi_after_seq = mmi_loss_of(&seq_net, &corpus, &held_ids);
    let ser_after_seq = ser_of(&seq_net, &corpus, &held_ids);

    println!("sequence iterations:");
    for s in &seq_stats {
        println!(
            "  iter {:>2}: heldout MMI {:.4} (accepted: {})",
            s.iter, s.heldout_after, s.accepted
        );
    }
    println!(
        "after seq training:  heldout MMI {mmi_after_seq:.4} (was {mmi_after_ce:.4} after CE)"
    );
    assert!(
        mmi_after_seq <= mmi_after_ce + 1e-9,
        "sequence training should not worsen the sequence criterion"
    );
    println!(
        "sequence objective improved by {:.1}%",
        100.0 * (1.0 - mmi_after_seq / mmi_after_ce.max(1e-12))
    );
    println!(
        "Viterbi state error rate: {ser_after_ce:.3} after CE -> {ser_after_seq:.3} after sequence \
         (the paper's WER analogue)"
    );
}
