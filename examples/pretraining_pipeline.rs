//! The full acoustic-model pipeline of the paper's lineage
//! (refs [6], [8]): discriminative layer-wise pretraining to
//! initialize a deep network, Hessian-free cross-entropy fine-tuning,
//! sequence (MMI) training, and Viterbi decoding with the state error
//! rate — the synthetic analogue of the word-error-rate numbers the
//! paper's systems report.
//!
//! ```sh
//! cargo run --release --example pretraining_pipeline
//! ```

use pdnn::baselines::{discriminative_pretrain, PretrainConfig, SgdConfig};
use pdnn::core::{DnnProblem, HfConfig, HfOptimizer, Objective};
use pdnn::dnn::{state_error_rate, viterbi_decode_batch, Network};
use pdnn::speech::{Corpus, CorpusSpec, Shard};
use pdnn::tensor::GemmContext;

fn ser(net: &Network<f32>, shard: &Shard, corpus: &Corpus) -> f64 {
    let ctx = GemmContext::sequential();
    let logits = net.logits(&ctx, &shard.x);
    let decoded = viterbi_decode_batch(&logits, &shard.utt_lens, &corpus.denominator_graph());
    state_error_rate(&decoded, &shard.labels)
}

fn main() {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 160,
        emission_noise: 1.0,
        ..CorpusSpec::tiny(4321)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let train = corpus.shard(&train_ids);
    let held = corpus.shard(&held_ids);
    let ctx = GemmContext::sequential();
    let dims = [corpus.spec().feature_dim, 20, 20, 20, corpus.spec().states];

    // ---- 1. discriminative layer-wise pretraining ------------------
    let pretrain_cfg = PretrainConfig {
        sgd: SgdConfig {
            epochs: 6,
            ..Default::default()
        },
        ..Default::default()
    };
    let pretrained = discriminative_pretrain(&dims, &train, &held, &ctx, &pretrain_cfg);
    println!(
        "1. pretrained {:?}: heldout SER {:.3}",
        pretrained.dims(),
        ser(&pretrained, &held, &corpus)
    );

    // ---- 2. Hessian-free cross-entropy fine-tuning ------------------
    let mut ce = DnnProblem::new(
        pretrained,
        ctx.clone(),
        train.clone(),
        held.clone(),
        Objective::CrossEntropy,
    );
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(6)
        .build()
        .expect("invalid HF configuration");
    HfOptimizer::new(cfg).train(&mut ce);
    let ce_net = ce.into_network();
    let ser_ce = ser(&ce_net, &held, &corpus);
    println!("2. after HF cross-entropy: heldout SER {ser_ce:.3}");

    // ---- 3. sequence (MMI) training ---------------------------------
    let mut seq = DnnProblem::new(
        ce_net,
        ctx.clone(),
        train,
        held.clone(),
        Objective::Sequence(corpus.denominator_graph()),
    );
    let cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(5)
        .build()
        .expect("invalid HF configuration");
    HfOptimizer::new(cfg).train(&mut seq);
    let final_net = seq.into_network();
    let ser_seq = ser(&final_net, &held, &corpus);
    println!("3. after HF sequence (MMI): heldout SER {ser_seq:.3}");

    assert!(
        ser_seq <= ser_ce + 0.02,
        "sequence stage regressed the decode error"
    );
    println!(
        "\npipeline complete: pretrain -> CE fine-tune -> sequence training,\n\
         evaluated by Viterbi decode — the paper's production recipe in miniature."
    );
}
