//! SGD vs Hessian-free on the same task — the comparison behind the
//! paper's motivation (Section II.A): serial SGD is the default; HF's
//! advantage is that its big-batch structure parallelizes, while SGD's
//! tiny minibatches drown in communication when distributed.
//!
//! This example trains the same network with both and reports
//! quality, passes over the data, and (for the parallel-SGD variant)
//! the measured communication volume per frame.
//!
//! ```sh
//! cargo run --release --example sgd_vs_hf
//! ```

use pdnn::baselines::{train_parallel_sgd, train_sgd, SgdConfig};
use pdnn::core::{DnnProblem, HfConfig, HfOptimizer, Objective};
use pdnn::dnn::{Activation, Network};
use pdnn::speech::{Corpus, CorpusSpec};
use pdnn::tensor::GemmContext;
use pdnn::util::Prng;

fn main() {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 100,
        ..CorpusSpec::tiny(31)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let train = corpus.shard(&train_ids);
    let heldout = corpus.shard(&held_ids);
    let mut rng = Prng::new(9);
    let net0: Network<f32> = Network::new(
        &[corpus.spec().feature_dim, 24, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let ctx = GemmContext::sequential();

    // ---- serial SGD -------------------------------------------------
    let sgd_cfg = SgdConfig {
        epochs: 10,
        minibatch: 128,
        ..Default::default()
    };
    let mut sgd_net = net0.clone();
    let sgd_stats = train_sgd(&mut sgd_net, &ctx, &train, &heldout, &sgd_cfg);
    let sgd_last = sgd_stats.last().unwrap();
    println!(
        "serial SGD:   {} epochs, {} updates/epoch -> heldout loss {:.4}, accuracy {:.3}",
        sgd_cfg.epochs, sgd_last.updates, sgd_last.heldout_loss, sgd_last.heldout_accuracy
    );

    // ---- Hessian-free -----------------------------------------------
    let mut problem = DnnProblem::new(
        net0.clone(),
        ctx.clone(),
        train.clone(),
        heldout.clone(),
        Objective::CrossEntropy,
    );
    let hf_cfg = HfConfig::small_task()
        .into_builder()
        .max_iters(10)
        .build()
        .expect("invalid HF configuration");
    let hf_stats = HfOptimizer::new(hf_cfg).train(&mut problem);
    let hf_last = hf_stats.iter().rev().find(|s| s.accepted).unwrap();
    println!(
        "Hessian-free: {} iterations              -> heldout loss {:.4}, accuracy {:.3}",
        hf_stats.len(),
        hf_last.heldout_after,
        hf_last.heldout_accuracy
    );

    // ---- the communication pathology of parallel SGD ---------------
    let psgd_cfg = SgdConfig {
        epochs: 1,
        minibatch: 128,
        ..Default::default()
    };
    let out = train_parallel_sgd(&net0, &train, &heldout, &psgd_cfg, 4);
    let bytes: u64 = out.traces.iter().map(|t| t.collective.bytes_sent).sum();
    let frames = train.frames() as u64;
    println!(
        "\nparallel SGD over 4 ranks, 1 epoch: {} updates, {} bytes moved \
         ({} bytes per training frame!)",
        out.updates,
        pdnn::util::fmt_count(bytes),
        pdnn::util::fmt_count(bytes / frames.max(1)),
    );
    println!(
        "— the Θ(parameters) allreduce per {} -frame minibatch is why the paper \
         parallelizes second-order HF instead of SGD.",
        psgd_cfg.minibatch
    );
}
