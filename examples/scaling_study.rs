//! Protocol-accurate mini scaling study under virtual time.
//!
//! The analytic model in `pdnn-perfmodel` extrapolates to 8192 ranks;
//! this example cross-checks its *mechanisms* at thread scale: the
//! real distributed-HF communication protocol runs over the in-process
//! runtime with a BG/Q link model attached, so each rank carries a
//! virtual clock advanced by modeled transfer and compute costs. The
//! resulting timings are protocol-exact (every broadcast, reduction,
//! and wait really happens) while the costs are modeled.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use pdnn::bgq::Network;
use pdnn::mpisim::{render_gantt, run_world, LinkModel, ReduceOp, Span, SpanKind};
use std::sync::Arc;

struct BgqLink(Network);

impl LinkModel for BgqLink {
    fn p2p_seconds(&self, bytes: u64) -> f64 {
        self.0.p2p_time(bytes)
    }
}

/// One synthetic HF iteration: weight broadcast, worker gradient
/// compute (modeled), gradient reduction, a few CG rounds
/// (direction broadcast + curvature compute + reduction).
fn hf_iteration_vtime(workers: usize, params: usize, frames: f64, cg_rounds: usize) -> f64 {
    let per_worker_secs = frames / workers as f64 * 1e-7; // modeled compute
    let results = run_world(workers + 1, move |comm| {
        comm.set_link_model(Arc::new(BgqLink(Network::bgq(64))));
        let is_master = comm.rank() == 0;

        // sync_weights
        let mut theta = if is_master {
            vec![0.0f32; params]
        } else {
            vec![]
        };
        comm.bcast(&mut theta, 0).unwrap();

        // gradient_loss
        if !is_master {
            comm.advance_vtime(per_worker_secs);
        }
        let mut grad = vec![0.0f32; params];
        comm.reduce(&mut grad, ReduceOp::Sum, 0).unwrap();

        // CG: bcast direction, curvature product, reduce
        for _ in 0..cg_rounds {
            let mut d = if is_master {
                vec![0.0f32; params]
            } else {
                vec![]
            };
            comm.bcast(&mut d, 0).unwrap();
            if !is_master {
                comm.advance_vtime(per_worker_secs * 0.02);
            }
            let mut gv = vec![0.0f32; params];
            comm.reduce(&mut gv, ReduceOp::Sum, 0).unwrap();
        }
        comm.vtime()
    });
    results.iter().map(|r| r.result).fold(0.0, f64::max)
}

/// Render one iteration's per-rank virtual-time structure.
fn gantt_of_iteration(workers: usize, params: usize, frames: f64) -> String {
    let per_worker_secs = frames / workers as f64 * 1e-7;
    let results = run_world(workers + 1, move |comm| {
        comm.set_link_model(Arc::new(BgqLink(Network::bgq(64))));
        let is_master = comm.rank() == 0;
        let mut spans: Vec<Span> = Vec::new();
        let mut mark =
            |name: &'static str, kind, start, end| spans.push(Span::new(name, kind, start, end));

        let t0 = comm.vtime();
        let mut theta = if is_master {
            vec![0.0f32; params]
        } else {
            vec![]
        };
        comm.bcast(&mut theta, 0).unwrap();
        mark("sync", SpanKind::CommCollective, t0, comm.vtime());

        let t0 = comm.vtime();
        if !is_master {
            comm.advance_vtime(per_worker_secs);
        }
        mark("grad", SpanKind::DenseCompute, t0, comm.vtime());

        let t0 = comm.vtime();
        let mut grad = vec![0.0f32; params];
        comm.reduce(&mut grad, ReduceOp::Sum, 0).unwrap();
        mark("reduce", SpanKind::CommCollective, t0, comm.vtime());
        spans
    });
    let ranks: Vec<Vec<Span>> = results.into_iter().map(|r| r.result).collect();
    render_gantt(&ranks, 60)
}

fn main() {
    let params = 200_000;
    let frames = 4.0e6;
    let cg = 10;
    println!("protocol-accurate HF iteration under virtual time");
    println!("({params} parameters, {frames:.0} frames, {cg} CG rounds)\n");
    println!("workers  iteration vtime  speedup  efficiency");
    let base = hf_iteration_vtime(2, params, frames, cg);
    for workers in [2usize, 4, 8, 16, 32] {
        let t = hf_iteration_vtime(workers, params, frames, cg);
        let speedup = base / t;
        let ideal = workers as f64 / 2.0;
        println!(
            "{workers:>7}  {:>14.4}s  {speedup:>6.2}x  {:>9.0}%",
            t,
            100.0 * speedup / ideal
        );
    }
    println!(
        "\nCompute scales with workers; the broadcasts/reductions do not —\n\
         the same efficiency rolloff the analytic model extrapolates to\n\
         4096-8192 ranks (see: cargo run -p pdnn-bench --bin scaling).\n"
    );
    println!("virtual-time structure of one gradient phase (4 workers + master):");
    print!("{}", gantt_of_iteration(4, params, frames));
}
