//! Quickstart: train a small DNN acoustic model with Hessian-free
//! optimization on a synthetic speech task.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pdnn::core::{DnnProblem, HfConfig, HfOptimizer, Objective};
use pdnn::dnn::{Activation, Network};
use pdnn::speech::{Corpus, CorpusSpec};
use pdnn::tensor::GemmContext;
use pdnn::util::Prng;

fn main() {
    // 1. Generate a synthetic speech-like corpus: an HMM over phone
    //    states emitting Gaussian acoustic features, with variable-
    //    length utterances (see pdnn-speech for the generative model).
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 120,
        ..CorpusSpec::tiny(2024)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    println!(
        "corpus: {} utterances, {} frames, {} states, {}-dim features",
        corpus.utterances().len(),
        corpus.total_frames(),
        corpus.spec().states,
        corpus.spec().feature_dim,
    );

    // 2. Build a sigmoid MLP (input -> hidden -> states).
    let mut rng = Prng::new(1);
    let net = Network::new(
        &[corpus.spec().feature_dim, 32, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    println!(
        "network: dims {:?}, {} parameters",
        net.dims(),
        net.num_params()
    );

    // 3. Wrap data + model into an HF problem and train.
    let mut problem = DnnProblem::new(
        net,
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let config = HfConfig::small_task()
        .into_builder()
        .max_iters(10)
        .build()
        .expect("invalid HF configuration");
    let mut optimizer = HfOptimizer::new(config);
    let stats = optimizer.train(&mut problem);

    // 4. Watch the held-out loss fall and accuracy rise.
    println!("\niter  train loss  heldout loss  accuracy  CG iters  alpha  accepted");
    for s in &stats {
        println!(
            "{:>4}  {:>10.4}  {:>12.4}  {:>8.3}  {:>8}  {:>5.2}  {}",
            s.iter,
            s.train_loss,
            s.heldout_after,
            if s.heldout_accuracy.is_nan() {
                0.0
            } else {
                s.heldout_accuracy
            },
            s.cg_iters,
            s.alpha,
            if s.accepted { "yes" } else { "no (λ boosted)" },
        );
    }

    let last = stats
        .iter()
        .rev()
        .find(|s| s.accepted)
        .expect("no accepted step");
    println!(
        "\nfinal heldout: loss {:.4}, frame accuracy {:.1}%",
        last.heldout_after,
        100.0 * last.heldout_accuracy
    );
    assert!(last.heldout_accuracy > 0.5, "training failed to learn");
}
