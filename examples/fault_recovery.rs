//! Kill-and-recover smoke: a worker is killed mid-CG by a seeded
//! `FaultPlan`, the master detects the death via timed collectives,
//! re-partitions the orphaned shard onto the survivors, restores θ
//! from the on-disk checkpoint, and finishes training.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```
//!
//! `scripts/verify.sh` runs this and greps the summary line, so the
//! output format is load-bearing.

use pdnn::core::{train_distributed_faulted, DistributedConfig, Objective};
use pdnn::dnn::{Activation, Network};
use pdnn::mpisim::FaultPlan;
use pdnn::speech::{Corpus, CorpusSpec};
use pdnn::util::Prng;
use std::time::Duration;

fn main() {
    let corpus = Corpus::generate(CorpusSpec::tiny(19));
    let mut rng = Prng::new(4);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 16, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );

    let checkpoint =
        std::env::temp_dir().join(format!("pdnn-fault-recovery-{}.ckpt", std::process::id()));
    let mut config = DistributedConfig {
        workers: 3,
        checkpoint_every: 1,
        checkpoint_path: Some(checkpoint.clone()),
        ..Default::default()
    };
    config.hf.max_iters = 3;

    // Rank 1 dies at its 10th collective — inside the first CG solve.
    let plan = FaultPlan::new(41)
        .kill(1, 10)
        .with_timeouts(Duration::from_millis(500), Duration::from_secs(30));

    println!(
        "training: {} workers + 1 master, killing rank 1 mid-CG, checkpoint at {}",
        config.workers,
        checkpoint.display()
    );

    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &config, &plan)
        .expect("training must survive one worker death");
    std::fs::remove_file(&checkpoint).ok();

    println!("\niter  train loss  heldout loss");
    for s in &out.stats {
        println!(
            "{:>4}  {:>10.4}  {:>12.4}",
            s.iter, s.train_loss, s.heldout_after
        );
    }

    assert_eq!(out.dead_ranks, vec![1], "expected exactly rank 1 dead");
    assert_eq!(out.recoveries, 1, "expected exactly one recovery");
    assert_eq!(out.stats.len(), 3, "training did not run to completion");
    assert!(
        out.stats.iter().all(|s| s.train_loss.is_finite()),
        "non-finite loss after recovery"
    );

    println!(
        "\nfault recovery OK: dead_ranks={:?} recoveries={} iters={}",
        out.dead_ranks,
        out.recoveries,
        out.stats.len()
    );
}
