#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the full style and
# static-analysis gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== style: rustfmt =="
cargo fmt --check

echo "== style: clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== static analysis: pdnn-lint =="
cargo run -q -p pdnn-lint

echo "== protocol: pdnn-protocheck static + mutation self-test =="
cargo run -q -p pdnn-protocheck -- --static --mutations

echo "== protocol: pdnn-protocheck dynamic sweep =="
cargo run -q --release -p pdnn-protocheck -- --dynamic 8 --workers 3 --iters 2

echo "verify: OK"
