#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the full style and
# static-analysis gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== style: rustfmt =="
cargo fmt --check

echo "== style: clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== static analysis: pdnn-lint =="
cargo run -q -p pdnn-lint

echo "== protocol: pdnn-protocheck static + mutation self-test =="
cargo run -q -p pdnn-protocheck -- --static --mutations

echo "== protocol: pdnn-protocheck dynamic sweep =="
cargo run -q --release -p pdnn-protocheck -- --dynamic 8 --workers 3 --iters 2

echo "== fault tolerance: mpisim failure-injection suite =="
cargo test -q --release --test failure_injection

echo "== fault tolerance: core recovery suite (kill, re-shard, resume) =="
cargo test -q --release -p pdnn-core --test fault_tolerance

echo "== fault tolerance: kill-and-recover smoke (checkpoint restore) =="
# Capture first (grep -q would SIGPIPE the example under pipefail).
smoke_out="$(cargo run -q --release --example fault_recovery)"
echo "$smoke_out" | grep -q "fault recovery OK: dead_ranks=\[1\] recoveries=1 iters=3" \
  || { echo "fault_recovery smoke did not report a clean recovery" >&2; exit 1; }

echo "== perf: training-step bench smoke (arena zero-growth gate) =="
# The --smoke run itself asserts zero steady-state heap growth (the
# workspace-arena guarantee); the greps assert the emitted JSON has
# the phase schema consumers of BENCH_4.json rely on.
mkdir -p target/bench_smoke
cargo run -q --release -p pdnn-bench --bin training_step -- --smoke \
  --out target/bench_smoke/BENCH_4.json
for key in '"gn_solve"' '"ns_per_frame"' '"steady_state_heap_growth_bytes": 0'; do
  grep -q "$key" target/bench_smoke/BENCH_4.json \
    || { echo "bench smoke JSON missing $key" >&2; exit 1; }
done

echo "verify: OK"
