#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the full style and
# static-analysis gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== backends: tier-1 under forced-scalar and auto dispatch =="
# The ComputeBackend contract: every runtime-dispatched SIMD kernel is
# bit-identical to the forced-scalar reference, so the whole suite
# (determinism byte-gates included) must pass under both. Separate
# processes because the backend choice is resolved once per process.
PDNN_BACKEND=scalar cargo test -q -p pdnn-tensor -p pdnn-dnn -p pdnn-core
PDNN_BACKEND=auto cargo test -q -p pdnn-tensor -p pdnn-dnn -p pdnn-core

echo "== style: rustfmt =="
cargo fmt --check

echo "== style: clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== static analysis: pdnn-lint =="
cargo run -q -p pdnn-lint

echo "== protocol: pdnn-protocheck static + mutation self-test =="
cargo run -q -p pdnn-protocheck -- --static --mutations

echo "== protocol: pdnn-protocheck dynamic sweep =="
cargo run -q --release -p pdnn-protocheck -- --dynamic 8 --workers 3 --iters 2

echo "== protocol: pdnn-protomc model check + mutation self-test + trace conformance =="
# Exhaustive interleaving exploration of the 2/3/4-rank worlds with a
# one-kill fault budget, cross-checked against a sleep-set-reduced
# run, plus the masterless ring/tree worlds at the same sizes —
# fault-free and with a one-kill budget at every (victim,
# collective-entry) placement of the peer-coordinated recovery model;
# then the seeded-mutation battery (master + decentral + recovery)
# and replay of five real 4-rank training traces (fault-free,
# injected kill, ring sync, tree sync, ring sync with a mid-training
# kill) through the automata.
cargo run -q --release -p pdnn-protomc
pm_report=results/protomc_report.json
grep -q '"findings": 0,' "$pm_report" \
  || { echo "protomc report shows property violations" >&2; exit 1; }
grep -q '"reduction_ok": true,' "$pm_report" \
  || { echo "protomc partial-order reduction disagrees with the full exploration" >&2; exit 1; }
grep -q '"decentral": {"findings": 0,' "$pm_report" \
  || { echo "protomc masterless (ring/tree) worlds show property violations" >&2; exit 1; }
grep -q '"mode": "ring", "ranks": 4, "kill_placements": 8,' "$pm_report" \
  || { echo "protomc decentral recovery model did not explore the 4-rank ring kill placements" >&2; exit 1; }
pm_muts="$(sed -n 's/.*"mutations": \([0-9]*\),.*/\1/p' "$pm_report")"
pm_caught="$(sed -n 's/.*"caught": \([0-9]*\),.*/\1/p' "$pm_report" | head -n1)"
[ -n "$pm_muts" ] && [ "$pm_muts" -ge 26 ] && [ "$pm_caught" = "$pm_muts" ] \
  || { echo "protomc mutation self-test: $pm_caught/$pm_muts caught (need all of >= 26)" >&2; exit 1; }
grep -q '"conformance": {"unmapped": 0, "accepted": 5,' "$pm_report" \
  || { echo "protomc trace conformance: a real training trace did not conform" >&2; exit 1; }
echo "protomc: $pm_caught/$pm_muts mutations caught, 5/5 traces conform"

echo "== sync strategies: masterless suite + trainer ring smoke =="
# The masterless contract end to end (bit-determinism, byte gates,
# codec parity, peer-coordinated kill-and-recover in ring and tree
# modes), then the CLI trainer under --sync ring must actually run
# masterless.
cargo test -q --release -p pdnn-core --test sync_strategies
ring_out="$(cargo run -q --release --bin pdnn-train -- --workers 4 --sync ring --iters 2 --utterances 48)"
echo "$ring_out" | grep -q "peer ranks, ring allreduce sync" \
  || { echo "pdnn-train --sync ring did not run in masterless ring mode" >&2; exit 1; }

echo "== sync strategies: sync-modes bench smoke (BENCH_6 byte gates) =="
# The --smoke run itself asserts the 8-rank gates (ring rank-0 p2p
# ≤ 25% of master's, ≥2x plain-ring and ≥4x compressed-ring rank-0
# byte reduction); the greps assert the emitted JSON carries them.
mkdir -p target/bench_smoke
cargo run -q --release -p pdnn-bench --bin sync_modes -- --smoke \
  --out target/bench_smoke/BENCH_6.json >/dev/null
for key in '"bench": "sync_modes"' \
           '"ring_rank0_p2p_le_quarter_of_master": true' \
           '"ring_rank0_ge_2x_reduction": true' \
           '"ring_int8_rank0_ge_4x_reduction": true'; do
  grep -q "$key" target/bench_smoke/BENCH_6.json \
    || { echo "sync_modes smoke JSON missing $key" >&2; exit 1; }
done
# The 16-rank wall gate (ring within noise of master) needs the full
# paired-round measurement, which the smoke run skips; assert the
# committed artifact carries it so a regression can't be checked in.
grep -q '"ring_wall_le_master": true' BENCH_6.json \
  || { echo "committed BENCH_6.json does not carry the 16-rank ring-wall gate" >&2; exit 1; }

echo "== kernel safety: pdnn-kernelcheck static + mutation self-test =="
cargo run -q -p pdnn-kernelcheck -- --static --mutations
# The report is an acceptance artifact: the clean tree must verify
# with zero findings and zero waivers, every unsafe site covered by a
# verified contract, and the full mutation battery caught.
kc_report=results/kernelcheck_report.json
grep -q '"findings": 0,' "$kc_report" \
  || { echo "kernelcheck report shows findings" >&2; exit 1; }
grep -q '"suppressed": 0,' "$kc_report" \
  || { echo "kernelcheck report shows waivers; the kernel zone must verify without allows" >&2; exit 1; }
grep -q '"meta": 0,' "$kc_report" \
  || { echo "kernelcheck report shows suppression-directive problems" >&2; exit 1; }
kc_sites="$(sed -n 's/.*"unsafe_sites": \([0-9]*\),.*/\1/p' "$kc_report")"
kc_covered="$(sed -n 's/.*"covered": \([0-9]*\),.*/\1/p' "$kc_report")"
[ -n "$kc_sites" ] && [ "$kc_sites" = "$kc_covered" ] \
  || { echo "kernelcheck coverage gap: $kc_covered/$kc_sites unsafe sites covered" >&2; exit 1; }
kc_muts="$(sed -n 's/.*"mutations": \([0-9]*\),.*/\1/p' "$kc_report")"
kc_caught="$(sed -n 's/.*"caught": \([0-9]*\),.*/\1/p' "$kc_report")"
[ -n "$kc_muts" ] && [ "$kc_muts" -ge 15 ] && [ "$kc_caught" = "$kc_muts" ] \
  || { echo "kernelcheck mutation self-test: $kc_caught/$kc_muts caught (need all of >= 15)" >&2; exit 1; }
echo "kernelcheck: $kc_covered/$kc_sites sites covered, $kc_caught/$kc_muts mutations caught"

echo "== kernel safety: miri (pack / tail / scalar-kernel tests) =="
# Miri interprets the safe packing and scalar-kernel paths with full
# UB checking. SIMD wrapper tests are excluded by the filters (runtime
# CPU detection and vendor intrinsics are outside Miri's remit).
if cargo +nightly miri --version >/dev/null 2>&1; then
  cargo +nightly miri test -q -p pdnn-tensor --lib -- \
    gemm::pack gemm::kernel::scalar gemm::kernel::tests blas1
else
  echo "miri is not installed for the nightly toolchain; skipping"
  echo "(offline image cannot add rustup components; gate runs where miri is available)"
fi

echo "== kernel safety: AddressSanitizer smoke (parity + fuzz sweeps) =="
# ASan catches any out-of-bounds the static contracts might have
# missed, on exactly the adversarial shapes the fuzz sweep drives
# through every ISA. Separate target dir so sanitized artifacts never
# mix with the normal cache.
if [ "$(uname -m)" = "x86_64" ] && cargo +nightly --version >/dev/null 2>&1; then
  RUSTFLAGS="-Zsanitizer=address" CARGO_TARGET_DIR=target/asan \
    cargo +nightly test -q -p pdnn-tensor --test backend_parity --test kernel_fuzz \
    --target x86_64-unknown-linux-gnu
else
  echo "nightly toolchain or x86_64 target unavailable; skipping the sanitizer smoke"
fi

echo "== fault tolerance: mpisim failure-injection suite =="
cargo test -q --release --test failure_injection

echo "== fault tolerance: core recovery suite (kill, re-shard, resume) =="
cargo test -q --release -p pdnn-core --test fault_tolerance

echo "== fault tolerance: kill-and-recover smoke (checkpoint restore) =="
# Capture first (grep -q would SIGPIPE the example under pipefail).
smoke_out="$(cargo run -q --release --example fault_recovery)"
echo "$smoke_out" | grep -q "fault recovery OK: dead_ranks=\[1\] recoveries=1 iters=3" \
  || { echo "fault_recovery smoke did not report a clean recovery" >&2; exit 1; }

echo "== perf: training-step bench smoke (arena zero-growth gate) =="
# The --smoke run itself asserts zero steady-state heap growth (the
# workspace-arena guarantee); the greps assert the emitted JSON has
# the phase schema consumers of BENCH_4.json rely on.
mkdir -p target/bench_smoke
smoke_bench="$(PDNN_BACKEND=scalar cargo run -q --release -p pdnn-bench --bin training_step -- --smoke \
  --out target/bench_smoke/BENCH_4.json --out-isa target/bench_smoke/BENCH_5.json)"
for key in '"gn_solve"' '"ns_per_frame"' '"steady_state_heap_growth_bytes": 0'; do
  grep -q "$key" target/bench_smoke/BENCH_4.json \
    || { echo "bench smoke JSON missing $key" >&2; exit 1; }
done

echo "== backends: dispatch assertions (smoke) =="
# Forced scalar must report scalar dispatch...
echo "$smoke_bench" | grep -q "compute backend: dispatching scalar microkernels" \
  || { echo "forced-scalar smoke did not dispatch scalar kernels" >&2; exit 1; }
grep -q '"scalar"' target/bench_smoke/BENCH_5.json \
  || { echo "BENCH_5 smoke JSON missing the scalar ISA row" >&2; exit 1; }
# ...and auto dispatch must pick AVX2 when the CPU offers it: BENCH_5
# measured our AVX2 kernels faster than AVX-512 (29.0 vs 18.6 GFLOPS
# forward), so auto resolving to avx512 is the dispatch regression.
auto_out="$(cargo run -q --release -p pdnn-bench --bin training_step -- --smoke \
  --out target/bench_smoke/BENCH_4_auto.json --out-isa target/bench_smoke/BENCH_5_auto.json)"
auto_isa="$(echo "$auto_out" | sed -n 's/^compute backend: dispatching \([a-z0-9]*\) microkernels$/\1/p')"
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  case "$auto_isa" in
    avx2) ;;
    *) echo "auto dispatch picked '$auto_isa' on an AVX2-capable host (want avx2)" >&2; exit 1 ;;
  esac
else
  [ -n "$auto_isa" ] || { echo "auto smoke never reported its dispatched ISA" >&2; exit 1; }
fi
echo "auto dispatch: $auto_isa"

echo "verify: OK"
