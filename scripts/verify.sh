#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then style gates scoped to
# the crates touched by the telemetry-subsystem work.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== style: rustfmt =="
cargo fmt --check

echo "== style: clippy (changed crates) =="
cargo clippy -p pdnn-obs -p pdnn-util -p pdnn-mpisim -p pdnn-core \
    -p pdnn-bgq -p pdnn-perfmodel -p pdnn-bench -p pdnn \
    --all-targets -- -D warnings

echo "verify: OK"
