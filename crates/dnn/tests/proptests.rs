//! Property-based tests for the network derivatives and the sequence
//! criterion, over randomized architectures, data, and graphs.

use pdnn_dnn::gauss_newton::{gn_product, Curvature};
use pdnn_dnn::loss::{cross_entropy, cross_entropy_loss_only, softmax_rows};
use pdnn_dnn::sequence::{mmi_utterance, DenominatorGraph};
use pdnn_dnn::{gradcheck, Activation, Network};
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{blas1, Matrix};
use pdnn_util::Prng;
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = (Vec<usize>, Activation)> {
    let dims = prop_oneof![
        Just(vec![3usize, 4]),
        Just(vec![4usize, 6, 3]),
        Just(vec![5usize, 7, 6, 4]),
        Just(vec![2usize, 3, 2, 3, 2]),
    ];
    let act = prop_oneof![
        Just(Activation::Sigmoid),
        Just(Activation::Tanh),
        Just(Activation::ReLU),
    ];
    (dims, act)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gradient_matches_finite_differences(
        (dims, act_raw) in arch_strategy(),
        frames in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Finite differences are invalid at ReLU kinks (a random deep
        // net routinely has a pre-activation within ±h of zero), so
        // the FD property is restricted to smooth activations; ReLU's
        // analytic gradient is covered by the unit tests, which place
        // the network away from kinks.
        let act = if act_raw == Activation::ReLU {
            Activation::Tanh
        } else {
            act_raw
        };
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(seed);
        let net: Network<f64> = Network::new(&dims, act, &mut rng);
        let x = Matrix::random_normal(frames, dims[0], 1.0, &mut rng);
        let classes = *dims.last().unwrap() as u64;
        let labels: Vec<u32> = (0..frames).map(|_| rng.below(classes) as u32).collect();

        let (_, grad, _) = pdnn_dnn::backprop::loss_and_gradient(
            &net, &ctx, &x, &labels, None, pdnn_dnn::FrameLoss::CrossEntropy,
        );
        let theta0 = net.to_flat();
        let f = |theta: &[f64]| {
            let mut n = net.clone();
            n.set_flat(theta);
            cross_entropy_loss_only(&n.logits(&ctx, &x), &labels).0
        };
        let fd = gradcheck::fd_gradient(f, &theta0, 1e-5);
        let err = gradcheck::max_rel_error(&grad, &fd);
        prop_assert!(err < 1e-4, "rel err {err} dims={dims:?} act={act:?}");
    }

    #[test]
    fn gauss_newton_stays_psd_and_symmetric(
        (dims, act) in arch_strategy(),
        frames in 1usize..6,
        seed in 0u64..1000,
    ) {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(seed ^ 0xF00D);
        let net: Network<f64> = Network::new(&dims, act, &mut rng);
        let x = Matrix::random_normal(frames, dims[0], 1.0, &mut rng);
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        let n = net.num_params();
        let v1: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let v2: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let g1 = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v1);
        let g2 = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v2);
        prop_assert!(blas1::dot(&v1, &g1) >= -1e-9);
        let a = blas1::dot(&v2, &g1);
        let b = blas1::dot(&v1, &g2);
        prop_assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn ce_gradient_rows_always_sum_to_zero(
        frames in 1usize..8,
        classes in 2usize..10,
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let logits: Matrix<f64> = Matrix::random_normal(frames, classes, 2.0, &mut rng);
        let labels: Vec<u32> = (0..frames).map(|_| rng.below(classes as u64) as u32).collect();
        let out = cross_entropy(&logits, &labels);
        for r in 0..frames {
            let s: f64 = out.dlogits.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-10);
        }
        prop_assert!(out.loss >= 0.0);
    }

    #[test]
    fn mmi_loss_nonnegative_and_occupancies_normalized(
        frames in 1usize..10,
        states in 2usize..6,
        self_loop in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let other = (1.0 - self_loop) / (states - 1) as f64;
        let mut trans = vec![other; states * states];
        for i in 0..states {
            trans[i * states + i] = self_loop;
        }
        let g = DenominatorGraph::new(&vec![1.0 / states as f64; states], &trans);
        let logits: Matrix<f64> = Matrix::random_normal(frames, states, 1.5, &mut rng);
        let align: Vec<u32> = (0..frames).map(|_| rng.below(states as u64) as u32).collect();
        let out = mmi_utterance(&logits, &align, &g);
        prop_assert!(out.loss >= -1e-8, "loss {}", out.loss);
        for t in 0..frames {
            let s: f64 = out.den_posteriors.row(t).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-7, "frame {t}: {s}");
            let gsum: f64 = out.dlogits.row(t).iter().sum();
            prop_assert!(gsum.abs() < 1e-7, "grad row {t}: {gsum}");
        }
    }

    #[test]
    fn flat_roundtrip_is_lossless(
        (dims, act) in arch_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let net: Network<f32> = Network::new(&dims, act, &mut rng);
        let theta = net.to_flat();
        let mut other: Network<f32> = Network::new(&dims, act, &mut rng);
        other.set_flat(&theta);
        prop_assert_eq!(other.to_flat(), theta);
    }

    #[test]
    fn softmax_rows_are_distributions(
        frames in 1usize..8,
        classes in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let logits: Matrix<f64> = Matrix::random_normal(frames, classes, 5.0, &mut rng);
        let p = softmax_rows(&logits);
        for r in 0..frames {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
