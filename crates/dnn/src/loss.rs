//! Frame-level training criteria.
//!
//! Cross-entropy (the paper's first objective, Table I row 1) and
//! squared error. Softmax is fused into the cross-entropy so the
//! network emits raw logits and the computation is stable for large
//! magnitudes. Loss sums accumulate in `f64` — they are reduced over
//! millions of frames and across workers.

use pdnn_tensor::{Matrix, Scalar};

/// Which per-frame criterion a trainer optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameLoss {
    /// Softmax cross-entropy against integer class targets.
    CrossEntropy,
    /// 0.5 * squared error against real-valued targets.
    SquaredError,
}

/// Result of evaluating a loss over a batch.
#[derive(Clone, Debug)]
pub struct LossOutput<T: Scalar = f32> {
    /// Sum of per-frame losses (not the mean — distributed reduction
    /// sums worker partials, then the master divides once).
    pub loss: f64,
    /// Gradient of the summed loss with respect to the logits.
    pub dlogits: Matrix<T>,
    /// Frames whose argmax matched the target (CE only; 0 for MSE).
    pub correct: usize,
}

/// Row-wise softmax (stable: shifts by the row max).
pub fn softmax_rows<T: Scalar>(logits: &Matrix<T>) -> Matrix<T> {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let mut max = row[0];
        for &v in row.iter() {
            max = max.max(v);
        }
        let mut sum = 0.0f64;
        for v in row.iter_mut() {
            let e = (*v - max).exp();
            sum += e.to_f64();
            *v = e;
        }
        let inv = T::from_f64(1.0 / sum);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Row-wise log-sum-exp values of a logits matrix.
fn row_lse<T: Scalar>(row: &[T]) -> (T, f64) {
    let mut max = row[0];
    for &v in row.iter() {
        max = max.max(v);
    }
    let sum: f64 = row.iter().map(|&v| (v - max).to_f64().exp()).sum();
    (max, max.to_f64() + sum.ln())
}

/// Summed softmax cross-entropy and its logits-gradient.
///
/// # Panics
/// If `labels.len() != logits.rows()` or a label is out of range.
#[allow(clippy::needless_range_loop)] // r indexes rows of several matrices at once
pub fn cross_entropy<T: Scalar>(logits: &Matrix<T>, labels: &[u32]) -> LossOutput<T> {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "cross_entropy: {} labels for {} frames",
        labels.len(),
        logits.rows()
    );
    let classes = logits.cols();
    let mut dlogits = logits.clone();
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for r in 0..logits.rows() {
        let label = labels[r] as usize;
        assert!(
            label < classes,
            "cross_entropy: label {label} out of range ({classes} classes)"
        );
        let row_in = logits.row(r);
        let (_, lse) = row_lse(row_in);
        loss += lse - row_in[label].to_f64();

        let mut best = 0usize;
        for (i, &v) in row_in.iter().enumerate() {
            if v > row_in[best] {
                best = i;
            }
        }
        if best == label {
            correct += 1;
        }

        let row_out = dlogits.row_mut(r);
        for v in row_out.iter_mut() {
            *v = T::from_f64((v.to_f64() - lse).exp());
        }
        row_out[label] -= T::ONE;
    }
    LossOutput {
        loss,
        dlogits,
        correct,
    }
}

/// Summed cross-entropy only (no gradient) — used by the held-out
/// loss evaluations inside backtracking and line search, which are
/// called many times per HF iteration.
#[allow(clippy::needless_range_loop)]
pub fn cross_entropy_loss_only<T: Scalar>(logits: &Matrix<T>, labels: &[u32]) -> (f64, usize) {
    assert_eq!(labels.len(), logits.rows(), "loss_only label count");
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for r in 0..logits.rows() {
        let label = labels[r] as usize;
        let row = logits.row(r);
        assert!(label < row.len(), "label {label} out of range");
        let (_, lse) = row_lse(row);
        loss += lse - row[label].to_f64();
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    (loss, correct)
}

/// Summed `0.5 * ||logits - targets||^2` and its gradient.
pub fn squared_error<T: Scalar>(logits: &Matrix<T>, targets: &Matrix<T>) -> LossOutput<T> {
    assert_eq!(
        logits.shape(),
        targets.shape(),
        "squared_error shape mismatch"
    );
    let mut dlogits = logits.clone();
    let mut loss = 0.0f64;
    for (d, &t) in dlogits
        .as_mut_slice()
        .iter_mut()
        .zip(targets.as_slice().iter())
    {
        *d -= t;
        let e = d.to_f64();
        loss += 0.5 * e * e;
    }
    LossOutput {
        loss,
        dlogits,
        correct: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits: Matrix<f64> = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone: larger logit ⇒ larger probability.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a: Matrix<f64> = Matrix::from_vec(1, 2, vec![1000.0, 1001.0]);
        let p = softmax_rows(&a);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        let b: Matrix<f64> = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let q = softmax_rows(&b);
        assert!((p[(0, 0)] - q[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits: Matrix<f64> = Matrix::zeros(4, 8);
        let labels = [0u32, 3, 5, 7];
        let out = cross_entropy(&logits, &labels);
        assert!((out.loss - 4.0 * (8.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits: Matrix<f64> = Matrix::from_vec(2, 3, vec![0.1, -0.4, 2.0, 1.0, 1.0, 1.0]);
        let out = cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f64 = out.dlogits.row(r).iter().sum();
            assert!(s.abs() < 1e-12, "row {r} sums to {s}");
        }
        // Target coordinate has negative gradient (pulls logit up).
        assert!(out.dlogits[(0, 2)] < 0.0);
        assert!(out.dlogits[(1, 0)] < 0.0);
    }

    #[test]
    fn cross_entropy_counts_correct() {
        let logits: Matrix<f32> = Matrix::from_vec(3, 2, vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0]);
        let out = cross_entropy(&logits, &[0, 1, 1]);
        assert_eq!(out.correct, 2);
        let (loss2, correct2) = cross_entropy_loss_only(&logits, &[0, 1, 1]);
        assert_eq!(correct2, 2);
        assert!((loss2 - out.loss).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits: Matrix<f32> = Matrix::zeros(1, 3);
        cross_entropy(&logits, &[3]);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let base: Matrix<f64> = Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.1]);
        let labels = [1u32];
        let out = cross_entropy(&base, &labels);
        let h = 1e-6;
        for j in 0..3 {
            let mut plus = base.clone();
            plus[(0, j)] += h;
            let mut minus = base.clone();
            minus[(0, j)] -= h;
            let fd = (cross_entropy(&plus, &labels).loss - cross_entropy(&minus, &labels).loss)
                / (2.0 * h);
            assert!(
                (fd - out.dlogits[(0, j)]).abs() < 1e-6,
                "coord {j}: fd={fd} grad={}",
                out.dlogits[(0, j)]
            );
        }
    }

    #[test]
    fn squared_error_basic() {
        let logits: Matrix<f32> = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let targets: Matrix<f32> = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let out = squared_error(&logits, &targets);
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.dlogits.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn squared_error_zero_at_target() {
        let logits: Matrix<f64> = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, 0.0]);
        let out = squared_error(&logits, &logits.clone());
        assert_eq!(out.loss, 0.0);
        assert!(out.dlogits.as_slice().iter().all(|&v| v == 0.0));
    }
}
