//! Feed-forward network definition, forward pass, and the flat
//! parameter-vector view used by the optimizer.
//!
//! The Hessian-free optimizer treats the whole network as one flat
//! vector θ (gradients, CG directions, and curvature products are all
//! vectors of `num_params()` scalars), so the network provides
//! pack/unpack methods with a fixed, documented layout: for each layer
//! in order, the weight matrix row-major, then the bias.

use crate::activation::Activation;
use crate::packed::PackedWeights;
use pdnn_tensor::gemm::{GemmContext, GemmOp, Trans};
use pdnn_tensor::{Matrix, Scalar, Workspace};
use pdnn_util::Prng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of weight-version stamps.
///
/// Every mutation of a network's parameters takes a fresh stamp, so a
/// [`crate::packed::PackedWeights`] built from version `v` is valid
/// iff the network still reports `v` — no network ever reuses a
/// version after mutation, including across clones.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// One affine layer `z = a W^T + b` followed by an activation.
///
/// `w` is `[out x in]` so a batch `a` of shape `[frames x in]`
/// multiplies as `a * W^T`, keeping both operands row-major.
#[derive(Clone, Debug)]
pub struct Layer<T: Scalar = f32> {
    /// Weight matrix, `out x in`.
    pub w: Matrix<T>,
    /// Bias, length `out`.
    pub b: Vec<T>,
    /// Nonlinearity applied after the affine map.
    pub act: Activation,
}

impl<T: Scalar> Layer<T> {
    /// Glorot/Xavier-uniform initialized layer.
    pub fn glorot(inputs: usize, outputs: usize, act: Activation, rng: &mut Prng) -> Self {
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        Layer {
            w: Matrix::random_uniform(outputs, inputs, -limit, limit, rng),
            b: vec![T::ZERO; outputs],
            act,
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.w.cols()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.w.rows()
    }

    /// Parameters in this layer (weights + biases).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Affine + activation forward for a batch `[frames x in]`.
    pub fn forward(&self, ctx: &GemmContext, a_in: &Matrix<T>) -> Matrix<T> {
        let mut z = Matrix::zeros(a_in.rows(), self.outputs());
        GemmOp::ab(a_in, Trans::N, &self.w, Trans::T).run(ctx, &mut z);
        z.add_row_broadcast(&self.b);
        self.act.apply(&mut z);
        z
    }
}

/// A feed-forward deep neural network.
///
/// Hidden layers share one activation; the final layer is always
/// [`Activation::Identity`] — the loss functions in [`crate::loss`]
/// and [`crate::sequence`] consume raw logits (softmax is fused into
/// the loss for numerical stability, exactly as in the paper's
/// cross-entropy setup).
#[derive(Clone, Debug)]
pub struct Network<T: Scalar = f32> {
    layers: Vec<Layer<T>>,
    /// Weight-version stamp; see [`fresh_version`]. Clones share the
    /// stamp (identical weights) until either side mutates.
    version: u64,
}

/// Cached activations from a forward pass.
///
/// `acts[0]` is the input batch; `acts[l]` the output of layer `l-1`;
/// `acts.last()` the logits. Backprop and the R-operator both consume
/// this cache.
#[derive(Clone, Debug)]
pub struct ForwardCache<T: Scalar = f32> {
    /// Per-layer activations, input first, logits last.
    pub acts: Vec<Matrix<T>>,
}

impl<T: Scalar> ForwardCache<T> {
    /// The network output (logits of the final layer).
    pub fn logits(&self) -> &Matrix<T> {
        // pdnn-lint: allow(l3-no-unwrap): forward() seeds acts with the input activation before any layer runs
        self.acts.last().expect("forward cache is never empty")
    }

    /// Retire every activation buffer into `ws` for reuse by the next
    /// forward pass.
    pub fn give_back(self, ws: &mut Workspace<T>) {
        for a in self.acts {
            ws.give_matrix(a);
        }
    }
}

impl<T: Scalar> Network<T> {
    /// Build a network with the given layer widths.
    ///
    /// `dims = [input, h1, h2, ..., output]` needs at least two
    /// entries. Hidden layers use `hidden_act`; weights are
    /// Glorot-uniform from `rng`.
    pub fn new(dims: &[usize], hidden_act: Activation, rng: &mut Prng) -> Self {
        assert!(
            dims.len() >= 2,
            "Network::new needs input and output dims, got {dims:?}"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "Network::new: zero-width layer in {dims:?}"
        );
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                Activation::Identity
            } else {
                hidden_act
            };
            layers.push(Layer::glorot(dims[i], dims[i + 1], act, rng));
        }
        Network {
            layers,
            version: fresh_version(),
        }
    }

    /// Build directly from layers (for tests and surgery).
    ///
    /// # Panics
    /// If consecutive layer shapes do not chain.
    pub fn from_layers(layers: Vec<Layer<T>>) -> Self {
        assert!(!layers.is_empty(), "Network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].outputs(),
                pair[1].inputs(),
                "layer shapes do not chain"
            );
        }
        Network {
            layers,
            version: fresh_version(),
        }
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[Layer<T>] {
        &self.layers
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output (class) dimension.
    pub fn output_dim(&self) -> usize {
        // pdnn-lint: allow(l3-no-unwrap): Network::new asserts at least one layer
        self.layers.last().unwrap().outputs()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Layer widths `[input, h1, ..., output]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.input_dim()];
        dims.extend(self.layers.iter().map(Layer::outputs));
        dims
    }

    /// Weight-version stamp: changes on every parameter mutation
    /// ([`Self::set_flat`], [`Self::axpy_flat`]), never repeats.
    ///
    /// A [`PackedWeights`] sidecar built from this network is valid
    /// exactly while the stamp it recorded still matches.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Forward pass keeping every intermediate activation.
    pub fn forward(&self, ctx: &GemmContext, x: &Matrix<T>) -> ForwardCache<T> {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "input width {} != network input dim {}",
            x.cols(),
            self.input_dim()
        );
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &self.layers {
            // pdnn-lint: allow(l3-no-unwrap): acts is seeded with the input activation before the loop
            let next = layer.forward(ctx, acts.last().unwrap());
            acts.push(next);
        }
        ForwardCache { acts }
    }

    /// Forward pass with arena-recycled activations and optionally
    /// prepacked weights.
    ///
    /// Bitwise identical to [`Self::forward`]: the prepacked driver
    /// replays the exact blocked GEMM, and arena buffers are handed
    /// out zero-filled like `Matrix::zeros`. Pass the returned cache
    /// to [`ForwardCache::give_back`] when done to close the recycle
    /// loop.
    ///
    /// # Panics
    /// If `packs` was built from a different weight version.
    pub fn forward_ws(
        &self,
        ctx: &GemmContext,
        x: &Matrix<T>,
        packs: Option<&PackedWeights<T>>,
        ws: &mut Workspace<T>,
    ) -> ForwardCache<T> {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "input width {} != network input dim {}",
            x.cols(),
            self.input_dim()
        );
        if let Some(p) = packs {
            assert!(
                p.matches(self),
                "forward_ws: stale PackedWeights (pack v{} != net v{})",
                p.version(),
                self.version
            );
        }
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        let mut a0 = ws.take_matrix_scratch(x.rows(), x.cols());
        a0.as_mut_slice().copy_from_slice(x.as_slice());
        acts.push(a0);
        for (l, layer) in self.layers.iter().enumerate() {
            // pdnn-lint: allow(l3-no-unwrap): acts is seeded with the input activation before the loop
            let a_in = acts.last().unwrap();
            // Scratch take: the beta = 0 GEMM overwrites all of z.
            let mut z = ws.take_matrix_scratch(a_in.rows(), layer.outputs());
            match packs {
                Some(p) => GemmOp::packed_b(a_in, Trans::N, p.forward(l)).run(ctx, &mut z),
                None => GemmOp::ab(a_in, Trans::N, &layer.w, Trans::T).run(ctx, &mut z),
            }
            z.add_row_broadcast(&layer.b);
            layer.act.apply(&mut z);
            acts.push(z);
        }
        ForwardCache { acts }
    }

    /// Logits-only forward with arena-recycled scratch and optionally
    /// prepacked weights (bitwise identical to [`Self::logits`]).
    ///
    /// The returned matrix is arena-backed; give it back to `ws` when
    /// done to keep the steady state allocation-free.
    pub fn logits_ws(
        &self,
        ctx: &GemmContext,
        x: &Matrix<T>,
        packs: Option<&PackedWeights<T>>,
        ws: &mut Workspace<T>,
    ) -> Matrix<T> {
        if let Some(p) = packs {
            assert!(
                p.matches(self),
                "logits_ws: stale PackedWeights (pack v{} != net v{})",
                p.version(),
                self.version
            );
        }
        let mut a: Option<Matrix<T>> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            // pdnn-lint: allow(l3-no-unwrap): a is assigned on iteration 0 and only read from iteration 1 on
            let input = if i == 0 { x } else { a.as_ref().unwrap() };
            // Scratch take: the beta = 0 GEMM overwrites all of z.
            let mut z = ws.take_matrix_scratch(input.rows(), layer.outputs());
            match packs {
                Some(p) => GemmOp::packed_b(input, Trans::N, p.forward(i)).run(ctx, &mut z),
                None => GemmOp::ab(input, Trans::N, &layer.w, Trans::T).run(ctx, &mut z),
            }
            z.add_row_broadcast(&layer.b);
            layer.act.apply(&mut z);
            if let Some(prev) = a.take() {
                ws.give_matrix(prev);
            }
            a = Some(z);
        }
        // pdnn-lint: allow(l3-no-unwrap): Network::new asserts at least one layer, so the loop assigns a
        a.expect("network has at least one layer")
    }

    /// Forward pass returning only the logits (no cache).
    pub fn logits(&self, ctx: &GemmContext, x: &Matrix<T>) -> Matrix<T> {
        let mut a = None;
        for (i, layer) in self.layers.iter().enumerate() {
            // pdnn-lint: allow(l3-no-unwrap): a is assigned on iteration 0 and only read from iteration 1 on
            let input = if i == 0 { x } else { a.as_ref().unwrap() };
            a = Some(layer.forward(ctx, input));
        }
        // pdnn-lint: allow(l3-no-unwrap): Network::new asserts at least one layer, so the loop assigns a
        a.expect("network has at least one layer")
    }

    // ---- flat parameter-vector view -------------------------------

    /// Copy all parameters into `out` (layout: per layer, W row-major
    /// then b).
    pub fn write_flat(&self, out: &mut [T]) {
        assert_eq!(out.len(), self.num_params(), "write_flat length mismatch");
        let mut off = 0;
        for layer in &self.layers {
            let wlen = layer.w.len();
            out[off..off + wlen].copy_from_slice(layer.w.as_slice());
            off += wlen;
            out[off..off + layer.b.len()].copy_from_slice(&layer.b);
            off += layer.b.len();
        }
    }

    /// All parameters as a fresh flat vector.
    pub fn to_flat(&self) -> Vec<T> {
        let mut v = vec![T::ZERO; self.num_params()];
        self.write_flat(&mut v);
        v
    }

    /// Overwrite all parameters from a flat vector.
    pub fn set_flat(&mut self, theta: &[T]) {
        assert_eq!(theta.len(), self.num_params(), "set_flat length mismatch");
        self.version = fresh_version();
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.w.len();
            layer
                .w
                .as_mut_slice()
                .copy_from_slice(&theta[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer.b.copy_from_slice(&theta[off..off + blen]);
            off += blen;
        }
    }

    /// `θ += alpha * d` for a flat direction `d`.
    pub fn axpy_flat(&mut self, alpha: T, d: &[T]) {
        assert_eq!(d.len(), self.num_params(), "axpy_flat length mismatch");
        self.version = fresh_version();
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.w.len();
            pdnn_tensor::blas1::axpy(alpha, &d[off..off + wlen], layer.w.as_mut_slice());
            off += wlen;
            let blen = layer.b.len();
            pdnn_tensor::blas1::axpy(alpha, &d[off..off + blen], &mut layer.b);
            off += blen;
        }
    }

    /// Split a flat vector into per-layer `(W-part, b-part)` slices in
    /// layer order. Used by backprop/R-op to read directions without
    /// copying.
    pub fn split_flat<'v>(&self, v: &'v [T]) -> Vec<(&'v [T], &'v [T])> {
        assert_eq!(v.len(), self.num_params(), "split_flat length mismatch");
        let mut out = Vec::with_capacity(self.layers.len());
        let mut rest = v;
        for layer in &self.layers {
            let (w, r) = rest.split_at(layer.w.len());
            let (b, r) = r.split_at(layer.b.len());
            out.push((w, b));
            rest = r;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network<f32> {
        let mut rng = Prng::new(1);
        Network::new(&[4, 5, 3], Activation::Sigmoid, &mut rng)
    }

    #[test]
    fn shape_wiring() {
        let net = tiny();
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.dims(), vec![4, 5, 3]);
        assert_eq!(net.num_params(), 4 * 5 + 5 + 5 * 3 + 3);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.layers()[0].act, Activation::Sigmoid);
        assert_eq!(net.layers()[1].act, Activation::Identity);
    }

    #[test]
    #[should_panic(expected = "needs input and output dims")]
    fn one_dim_rejected() {
        let mut rng = Prng::new(0);
        let _: Network<f32> = Network::new(&[4], Activation::Tanh, &mut rng);
    }

    #[test]
    #[should_panic(expected = "zero-width layer")]
    fn zero_width_rejected() {
        let mut rng = Prng::new(0);
        let _: Network<f32> = Network::new(&[4, 0, 2], Activation::Tanh, &mut rng);
    }

    #[test]
    fn forward_shapes_and_cache() {
        let net = tiny();
        let ctx = GemmContext::sequential();
        let x: Matrix<f32> = Matrix::filled(7, 4, 0.1);
        let cache = net.forward(&ctx, &x);
        assert_eq!(cache.acts.len(), 3);
        assert_eq!(cache.acts[0].shape(), (7, 4));
        assert_eq!(cache.acts[1].shape(), (7, 5));
        assert_eq!(cache.logits().shape(), (7, 3));
        // logits() agrees with forward().
        let direct = net.logits(&ctx, &x);
        assert_eq!(direct, *cache.logits());
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn forward_checks_input_width() {
        let net = tiny();
        let ctx = GemmContext::sequential();
        let x: Matrix<f32> = Matrix::zeros(2, 3);
        net.forward(&ctx, &x);
    }

    #[test]
    fn flat_roundtrip() {
        let net = tiny();
        let theta = net.to_flat();
        assert_eq!(theta.len(), net.num_params());
        let mut rng = Prng::new(2);
        let mut other: Network<f32> = Network::new(&[4, 5, 3], Activation::Sigmoid, &mut rng);
        assert_ne!(other.to_flat(), theta);
        other.set_flat(&theta);
        assert_eq!(other.to_flat(), theta);
        // Networks with identical parameters produce identical outputs.
        let ctx = GemmContext::sequential();
        let x: Matrix<f32> = Matrix::filled(3, 4, 0.5);
        assert_eq!(net.logits(&ctx, &x), other.logits(&ctx, &x));
    }

    #[test]
    fn axpy_flat_matches_manual_update() {
        let mut net = tiny();
        let theta0 = net.to_flat();
        let d: Vec<f32> = (0..net.num_params())
            .map(|i| (i % 5) as f32 * 0.1)
            .collect();
        net.axpy_flat(2.0, &d);
        let theta1 = net.to_flat();
        for i in 0..theta0.len() {
            assert!((theta1[i] - (theta0[i] + 2.0 * d[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn split_flat_covers_everything() {
        let net = tiny();
        let v: Vec<f32> = (0..net.num_params()).map(|i| i as f32).collect();
        let parts = net.split_flat(&v);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(|(w, b)| w.len() + b.len()).sum();
        assert_eq!(total, net.num_params());
        assert_eq!(parts[0].0[0], 0.0);
        // b of layer 0 follows w of layer 0.
        assert_eq!(parts[0].1[0], (4 * 5) as f32);
    }

    #[test]
    #[should_panic(expected = "layer shapes do not chain")]
    fn from_layers_checks_chaining() {
        let mut rng = Prng::new(0);
        let l1: Layer<f32> = Layer::glorot(3, 4, Activation::Tanh, &mut rng);
        let l2: Layer<f32> = Layer::glorot(5, 2, Activation::Identity, &mut rng);
        Network::from_layers(vec![l1, l2]);
    }

    #[test]
    fn glorot_limits_respected() {
        let mut rng = Prng::new(3);
        let l: Layer<f64> = Layer::glorot(100, 50, Activation::Tanh, &mut rng);
        let limit = (6.0f64 / 150.0).sqrt();
        assert!(l.w.as_slice().iter().all(|&v| v.abs() <= limit));
        assert!(l.b.iter().all(|&v| v == 0.0));
        // Not all tiny: spread should be on the order of the limit.
        let max =
            l.w.as_slice()
                .iter()
                .cloned()
                .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max > limit * 0.8);
    }
}
