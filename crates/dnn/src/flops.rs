//! Analytic FLOP counts for the training phases.
//!
//! The performance model (`pdnn-perfmodel`) converts frame counts into
//! compute time using these formulas, calibrated once against the real
//! kernels. Counts are per frame; multiply by batch size.
//!
//! Conventions: a multiply-add counts as 2 FLOPs; elementwise
//! activation work is ignored (it is O(units), dominated by the
//! O(units²) GEMMs for the layer widths the paper uses).

/// Sum over consecutive layer pairs of `2 * n_l * n_{l+1}`.
fn affine_flops(dims: &[usize]) -> u64 {
    dims.windows(2).map(|w| 2 * (w[0] * w[1]) as u64).sum()
}

/// Total trainable parameters for the given layer widths.
pub fn num_params(dims: &[usize]) -> u64 {
    dims.windows(2).map(|w| (w[0] * w[1] + w[1]) as u64).sum()
}

/// Forward pass: one GEMM per layer.
pub fn forward_flops_per_frame(dims: &[usize]) -> u64 {
    affine_flops(dims)
}

/// Loss + gradient pass: forward, then per layer one `delta^T a`
/// weight-gradient GEMM and one `delta W` propagation GEMM (the last
/// propagation is skipped, a small correction we keep for fidelity).
pub fn gradient_flops_per_frame(dims: &[usize]) -> u64 {
    let fwd = affine_flops(dims);
    let wgrad = affine_flops(dims);
    let prop = affine_flops(&dims[1..]); // no delta propagated to the input
    fwd + wgrad + prop
}

/// Gauss–Newton product: R-forward (two GEMMs per layer) plus the
/// linearized backward (two GEMMs per layer, minus the skipped input
/// propagation). The forward activations are assumed cached by the
/// surrounding CG loop for the first product and recomputed otherwise;
/// `with_forward` selects whether to bill the forward pass too.
pub fn gn_product_flops_per_frame(dims: &[usize], with_forward: bool) -> u64 {
    let aff = affine_flops(dims);
    let r_forward = 2 * aff;
    let backward = aff + affine_flops(&dims[1..]);
    let fwd = if with_forward { aff } else { 0 };
    r_forward + backward + fwd
}

/// Held-out loss evaluation: forward only.
pub fn loss_eval_flops_per_frame(dims: &[usize]) -> u64 {
    affine_flops(dims)
}

/// Sequence (MMI) criterion adds a forward–backward over the
/// denominator graph: O(2 * states^2) multiply-adds per frame for
/// alpha and beta plus the occupancy pass.
pub fn mmi_extra_flops_per_frame(states: usize) -> u64 {
    (4 * states * states + 2 * states) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: &[usize] = &[360, 1024, 1024, 512];

    #[test]
    fn forward_counts_layer_gemms() {
        assert_eq!(
            forward_flops_per_frame(DIMS),
            2 * (360 * 1024 + 1024 * 1024 + 1024 * 512) as u64
        );
    }

    #[test]
    fn num_params_matches_manual() {
        assert_eq!(num_params(&[4, 5, 3]), (4 * 5 + 5 + 5 * 3 + 3) as u64);
    }

    #[test]
    fn gradient_costs_about_3x_forward() {
        let f = forward_flops_per_frame(DIMS) as f64;
        let g = gradient_flops_per_frame(DIMS) as f64;
        assert!(g / f > 2.5 && g / f <= 3.0, "ratio {}", g / f);
    }

    #[test]
    fn gn_costs_about_4x_forward() {
        let f = forward_flops_per_frame(DIMS) as f64;
        let g = gn_product_flops_per_frame(DIMS, false) as f64;
        assert!(g / f > 3.5 && g / f <= 4.0, "ratio {}", g / f);
        let gwf = gn_product_flops_per_frame(DIMS, true) as f64;
        assert!((gwf - g - f).abs() < 1.0);
    }

    #[test]
    fn mmi_extra_scales_quadratically() {
        assert_eq!(mmi_extra_flops_per_frame(10), 420);
        let a = mmi_extra_flops_per_frame(100) as f64;
        let b = mmi_extra_flops_per_frame(200) as f64;
        assert!(b / a > 3.9 && b / a < 4.1);
    }

    #[test]
    fn single_layer_edge_case() {
        let dims = &[10, 4];
        assert_eq!(forward_flops_per_frame(dims), 80);
        // No hidden propagation term.
        assert_eq!(gradient_flops_per_frame(dims), 160);
    }
}
