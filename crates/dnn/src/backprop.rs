//! Error backpropagation: exact gradients of the frame losses.
//!
//! Every heavy operation is a GEMM (`delta^T a` for weight gradients,
//! `delta W` for error propagation), which is what makes DNN training
//! SGEMM-bound — the premise of the paper's Section V.A tuning work.

use crate::loss::{cross_entropy, squared_error, FrameLoss};
use crate::network::{ForwardCache, Network};
use crate::packed::PackedWeights;
use pdnn_tensor::gemm::{GemmContext, GemmOp, Trans};
use pdnn_tensor::{Matrix, Scalar, Workspace};

/// Backpropagate `dlogits` through the network, returning the flat
/// gradient (same layout as [`Network::to_flat`]).
///
/// `cache` must come from a forward pass of `net` on the same batch.
pub fn backprop<T: Scalar>(
    net: &Network<T>,
    ctx: &GemmContext,
    cache: &ForwardCache<T>,
    dlogits: &Matrix<T>,
) -> Vec<T> {
    backprop_ws(net, ctx, cache, dlogits, None, &mut Workspace::new())
}

/// [`backprop`] with arena-recycled scratch and optionally prepacked
/// weights — the training hot path.
///
/// Every intermediate (the delta buffer, per-layer `dW`/`db`, and the
/// returned gradient vector) comes from `ws`; giving the returned
/// vector back to `ws` after accumulation makes the steady state
/// allocation-free. Bitwise identical to the unpacked path:
/// the packed-operand [`GemmOp`] forms replay the exact blocked GEMM.
///
/// # Panics
/// If `packs` was built from a different weight version, or on shape
/// mismatch between `cache`, `dlogits`, and `net`.
pub fn backprop_ws<T: Scalar>(
    net: &Network<T>,
    ctx: &GemmContext,
    cache: &ForwardCache<T>,
    dlogits: &Matrix<T>,
    packs: Option<&PackedWeights<T>>,
    ws: &mut Workspace<T>,
) -> Vec<T> {
    let layers = net.layers();
    assert_eq!(
        cache.acts.len(),
        layers.len() + 1,
        "cache does not match network depth"
    );
    assert_eq!(
        dlogits.shape(),
        cache.logits().shape(),
        "dlogits shape mismatch"
    );
    if let Some(p) = packs {
        assert!(
            p.matches(net),
            "backprop_ws: stale PackedWeights (pack v{} != net v{})",
            p.version(),
            net.version()
        );
    }

    // Scratch take: the layer loop below writes every flat-gradient
    // region exactly once (weights by copy, biases by column_sums_into
    // which zero-fills first).
    let mut grad = ws.take_vec_scratch(net.num_params());
    // Compute per-layer flat offsets once.
    let mut offsets = Vec::with_capacity(layers.len());
    let mut off = 0;
    for layer in layers {
        offsets.push(off);
        off += layer.num_params();
    }

    // Seed the delta buffer from the arena instead of cloning dlogits.
    let mut delta = ws.take_matrix_scratch(dlogits.rows(), dlogits.cols());
    delta.as_mut_slice().copy_from_slice(dlogits.as_slice());
    for l in (0..layers.len()).rev() {
        let layer = &layers[l];
        let a_prev = &cache.acts[l];
        let frames = delta.rows();
        debug_assert_eq!(a_prev.rows(), frames);

        // dW = delta^T * a_prev  (out x in)
        let mut dw = ws.take_matrix_scratch(layer.outputs(), layer.inputs());
        GemmOp::ab(&delta, Trans::T, a_prev, Trans::N).run(ctx, &mut dw);

        let base = offsets[l];
        grad[base..base + dw.len()].copy_from_slice(dw.as_slice());
        delta.column_sums_into(&mut grad[base + dw.len()..base + dw.len() + layer.b.len()]);
        ws.give_matrix(dw);

        if l > 0 {
            // delta_prev = (delta * W) ∘ f'(a_prev)
            let mut dprev = ws.take_matrix_scratch(frames, layer.inputs());
            match packs {
                Some(p) => GemmOp::packed_b(&delta, Trans::N, p.backward(l)).run(ctx, &mut dprev),
                None => GemmOp::ab(&delta, Trans::N, &layer.w, Trans::N).run(ctx, &mut dprev),
            }
            layers[l - 1].act.mask_derivative(&mut dprev, a_prev);
            ws.give_matrix(delta);
            delta = dprev;
        }
    }
    ws.give_matrix(delta);
    grad
}

/// Evaluate `loss_kind` on a batch and return `(summed loss, flat
/// gradient, correct frames)`.
///
/// For [`FrameLoss::CrossEntropy`] `labels` indexes classes per frame;
/// for [`FrameLoss::SquaredError`] `targets` must be the dense target
/// matrix (and `labels` is ignored).
pub fn loss_and_gradient<T: Scalar>(
    net: &Network<T>,
    ctx: &GemmContext,
    x: &Matrix<T>,
    labels: &[u32],
    targets: Option<&Matrix<T>>,
    loss_kind: FrameLoss,
) -> (f64, Vec<T>, usize) {
    let cache = net.forward(ctx, x);
    let out = match loss_kind {
        FrameLoss::CrossEntropy => cross_entropy(cache.logits(), labels),
        FrameLoss::SquaredError => {
            // pdnn-lint: allow(l3-no-unwrap): API contract — the SquaredError loss is only reachable with targets supplied
            let t = targets.expect("SquaredError needs a target matrix");
            squared_error(cache.logits(), t)
        }
    };
    let grad = backprop(net, ctx, &cache, &out.dlogits);
    (out.loss, grad, out.correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::gradcheck;
    use pdnn_util::Prng;

    fn setup(
        dims: &[usize],
        act: Activation,
        frames: usize,
        seed: u64,
    ) -> (Network<f64>, Matrix<f64>, Vec<u32>) {
        let mut rng = Prng::new(seed);
        let net = Network::new(dims, act, &mut rng);
        let x = Matrix::random_normal(frames, dims[0], 1.0, &mut rng);
        let labels: Vec<u32> = (0..frames)
            .map(|_| rng.below(*dims.last().unwrap() as u64) as u32)
            .collect();
        (net, x, labels)
    }

    fn check_ce_gradient(dims: &[usize], act: Activation, frames: usize, seed: u64) {
        let ctx = GemmContext::sequential();
        let (net, x, labels) = setup(dims, act, frames, seed);
        let (_, grad, _) =
            loss_and_gradient(&net, &ctx, &x, &labels, None, FrameLoss::CrossEntropy);

        let theta0 = net.to_flat();
        let f = |theta: &[f64]| {
            let mut n = net.clone();
            n.set_flat(theta);
            let logits = n.logits(&ctx, &x);
            crate::loss::cross_entropy_loss_only(&logits, &labels).0
        };
        let err = gradcheck::max_rel_error(&grad, &gradcheck::fd_gradient(f, &theta0, 1e-5));
        assert!(err < 1e-5, "{dims:?} {act:?}: rel err {err}");
    }

    #[test]
    fn ce_gradient_matches_fd_sigmoid() {
        check_ce_gradient(&[5, 7, 4], Activation::Sigmoid, 6, 1);
    }

    #[test]
    fn ce_gradient_matches_fd_tanh_deep() {
        check_ce_gradient(&[4, 6, 5, 3], Activation::Tanh, 5, 2);
    }

    #[test]
    fn ce_gradient_matches_fd_relu() {
        // ReLU is piecewise linear; FD is exact away from kinks and
        // the random net rarely sits on one.
        check_ce_gradient(&[3, 8, 3], Activation::ReLU, 4, 3);
    }

    #[test]
    fn ce_gradient_matches_fd_single_layer() {
        check_ce_gradient(&[6, 4], Activation::Sigmoid, 8, 4);
    }

    #[test]
    fn mse_gradient_matches_fd() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(9);
        let net: Network<f64> = Network::new(&[4, 5, 2], Activation::Tanh, &mut rng);
        let x = Matrix::random_normal(7, 4, 1.0, &mut rng);
        let targets = Matrix::random_normal(7, 2, 1.0, &mut rng);
        let (_, grad, _) =
            loss_and_gradient(&net, &ctx, &x, &[], Some(&targets), FrameLoss::SquaredError);
        let theta0 = net.to_flat();
        let f = |theta: &[f64]| {
            let mut n = net.clone();
            n.set_flat(theta);
            let logits = n.logits(&ctx, &x);
            crate::loss::squared_error(&logits, &targets).loss
        };
        let err = gradcheck::max_rel_error(&grad, &gradcheck::fd_gradient(f, &theta0, 1e-5));
        assert!(err < 1e-6, "rel err {err}");
    }

    #[test]
    fn gradient_is_additive_over_frames() {
        // grad(batch) == grad(frame0) + grad(frame1): the property
        // data-parallel reduction relies on.
        let ctx = GemmContext::sequential();
        let (net, x, labels) = setup(&[3, 4, 2], Activation::Sigmoid, 2, 7);
        let (_, g_all, _) =
            loss_and_gradient(&net, &ctx, &x, &labels, None, FrameLoss::CrossEntropy);
        let x0 = x.rows_copy(0, 1);
        let x1 = x.rows_copy(1, 2);
        let (_, g0, _) =
            loss_and_gradient(&net, &ctx, &x0, &labels[..1], None, FrameLoss::CrossEntropy);
        let (_, g1, _) =
            loss_and_gradient(&net, &ctx, &x1, &labels[1..], None, FrameLoss::CrossEntropy);
        for i in 0..g_all.len() {
            assert!((g_all[i] - (g0[i] + g1[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn packed_arena_path_bitwise_equals_plain() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(40);
        let net: Network<f32> = Network::new(&[5, 8, 6, 3], Activation::Tanh, &mut rng);
        let packs = crate::packed::PackedWeights::new(&net, &ctx);
        let mut ws = pdnn_tensor::Workspace::new();
        for seed in 70..73 {
            let mut r2 = Prng::new(seed);
            let x: Matrix<f32> = Matrix::random_normal(11, 5, 1.0, &mut r2);
            let dl: Matrix<f32> = Matrix::random_normal(11, 3, 1.0, &mut r2);
            let plain_cache = net.forward(&ctx, &x);
            let plain = backprop(&net, &ctx, &plain_cache, &dl);
            let cache = net.forward_ws(&ctx, &x, Some(&packs), &mut ws);
            let fast = backprop_ws(&net, &ctx, &cache, &dl, Some(&packs), &mut ws);
            assert_eq!(
                plain_cache.acts, cache.acts,
                "forward_ws diverged, seed {seed}"
            );
            assert_eq!(plain, fast, "backprop_ws diverged, seed {seed}");
            cache.give_back(&mut ws);
            ws.give_vec(fast);
        }
        assert!(ws.stats().reuses > 0, "arena never recycled");
    }

    #[test]
    fn logits_ws_bitwise_equals_logits() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(41);
        let net: Network<f32> = Network::new(&[4, 7, 3], Activation::Sigmoid, &mut rng);
        let packs = crate::packed::PackedWeights::new(&net, &ctx);
        let mut ws = pdnn_tensor::Workspace::new();
        let x: Matrix<f32> = Matrix::random_normal(9, 4, 1.0, &mut rng);
        let plain = net.logits(&ctx, &x);
        let fast = net.logits_ws(&ctx, &x, Some(&packs), &mut ws);
        assert_eq!(plain, fast);
        ws.give_matrix(fast);
    }

    #[test]
    fn zero_dlogits_gives_zero_gradient() {
        let ctx = GemmContext::sequential();
        let (net, x, _) = setup(&[3, 4, 2], Activation::Sigmoid, 5, 8);
        let cache = net.forward(&ctx, &x);
        let dlogits = Matrix::zeros(5, 2);
        let grad = backprop(&net, &ctx, &cache, &dlogits);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "dlogits shape mismatch")]
    fn backprop_checks_shapes() {
        let ctx = GemmContext::sequential();
        let (net, x, _) = setup(&[3, 4, 2], Activation::Sigmoid, 5, 8);
        let cache = net.forward(&ctx, &x);
        let bad = Matrix::zeros(4, 2);
        backprop(&net, &ctx, &cache, &bad);
    }
}
