//! Empirical-Fisher diagonal estimation (squared backprop).
//!
//! Martens' Hessian-free preconditioner is
//! `M = (diag(Σ_f ∇L_f ∘ ∇L_f) + λ)^ξ` — the per-parameter sum of
//! squared per-frame gradients. Computing it naively costs one
//! backprop per frame; the standard trick propagates *squared*
//! sensitivities through *squared* weights instead:
//!
//! ```text
//! Δ²_L     = (∂L/∂z_L)²          (elementwise)
//! D[W_l]   = Δ²_l ᵀ (a_{l-1}²)
//! D[b_l]   = Σ_frames Δ²_l
//! Δ²_{l-1} = (Δ²_l W_l²) ∘ f'(a_{l-1})²
//! ```
//!
//! The weight-gradient step is *exact* per layer (a per-frame weight
//! gradient is rank-1, so its square factorizes); the propagation
//! step drops cross terms and is the usual Gauss–Newton-diagonal
//! approximation. The paper's implementation "currently does not use
//! a preconditioner" — this module is that future-work item, consumed
//! by `pdnn-core`'s optimizer (see its `preconditioner` config).

use crate::network::{ForwardCache, Network};
use pdnn_tensor::gemm::{GemmContext, GemmOp, Trans};
use pdnn_tensor::{Matrix, Scalar};

/// Estimate `diag(Σ_frames ∇L_f ∘ ∇L_f)` over the batch in `cache`.
///
/// `dlogits` is the per-frame loss gradient at the logits (as
/// returned by the loss functions); layout of the result matches
/// [`Network::to_flat`].
pub fn empirical_fisher_diagonal<T: Scalar>(
    net: &Network<T>,
    ctx: &GemmContext,
    cache: &ForwardCache<T>,
    dlogits: &Matrix<T>,
) -> Vec<T> {
    let layers = net.layers();
    assert_eq!(
        cache.acts.len(),
        layers.len() + 1,
        "cache does not match network depth"
    );
    assert_eq!(
        dlogits.shape(),
        cache.logits().shape(),
        "dlogits shape mismatch"
    );

    let mut out = vec![T::ZERO; net.num_params()];
    let mut offsets = Vec::with_capacity(layers.len());
    let mut off = 0;
    for layer in layers {
        offsets.push(off);
        off += layer.num_params();
    }

    // Δ² at the output.
    let mut delta2 = dlogits.map(|v| v * v);
    for l in (0..layers.len()).rev() {
        let layer = &layers[l];
        let a_prev = &cache.acts[l];
        let a2 = a_prev.map(|v| v * v);

        let mut dw = Matrix::zeros(layer.outputs(), layer.inputs());
        GemmOp::ab(&delta2, Trans::T, &a2, Trans::N).run(ctx, &mut dw);
        let db = delta2.column_sums();
        let base = offsets[l];
        out[base..base + dw.len()].copy_from_slice(dw.as_slice());
        out[base + dw.len()..base + dw.len() + db.len()].copy_from_slice(&db);

        if l > 0 {
            let w2 = layer.w.map(|v| v * v);
            let mut dprev = Matrix::zeros(delta2.rows(), layer.inputs());
            GemmOp::ab(&delta2, Trans::N, &w2, Trans::N).run(ctx, &mut dprev);
            // ∘ f'(a_prev)²
            for (dv, &av) in dprev
                .as_mut_slice()
                .iter_mut()
                .zip(a_prev.as_slice().iter())
            {
                let fp = layers[l - 1].act.derivative_from_output(av);
                *dv *= fp * fp;
            }
            delta2 = dprev;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::cross_entropy;
    use pdnn_util::Prng;

    /// Brute force: one backprop per frame, square, and sum.
    fn brute_force(
        net: &Network<f64>,
        ctx: &GemmContext,
        x: &Matrix<f64>,
        labels: &[u32],
    ) -> Vec<f64> {
        let mut acc = vec![0.0f64; net.num_params()];
        for f in 0..x.rows() {
            let xf = x.rows_copy(f, f + 1);
            let cache = net.forward(ctx, &xf);
            let out = cross_entropy(cache.logits(), &labels[f..f + 1]);
            let g = crate::backprop::backprop(net, ctx, &cache, &out.dlogits);
            for (a, gi) in acc.iter_mut().zip(g.iter()) {
                *a += gi * gi;
            }
        }
        acc
    }

    #[test]
    fn exact_for_single_layer_networks() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(1);
        let net: Network<f64> = Network::new(&[5, 3], Activation::Sigmoid, &mut rng);
        let x = Matrix::random_normal(7, 5, 1.0, &mut rng);
        let labels: Vec<u32> = (0..7).map(|_| rng.below(3) as u32).collect();

        let cache = net.forward(&ctx, &x);
        let out = cross_entropy(cache.logits(), &labels);
        let fast = empirical_fisher_diagonal(&net, &ctx, &cache, &out.dlogits);
        let slow = brute_force(&net, &ctx, &x, &labels);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn multi_layer_estimate_is_positive_and_correlated() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(2);
        let net: Network<f64> = Network::new(&[4, 6, 3], Activation::Tanh, &mut rng);
        let x = Matrix::random_normal(12, 4, 1.0, &mut rng);
        let labels: Vec<u32> = (0..12).map(|_| rng.below(3) as u32).collect();

        let cache = net.forward(&ctx, &x);
        let out = cross_entropy(cache.logits(), &labels);
        let approx = empirical_fisher_diagonal(&net, &ctx, &cache, &out.dlogits);
        let exact = brute_force(&net, &ctx, &x, &labels);

        assert!(approx.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // Cross terms are dropped below the top layer, so require
        // positive correlation rather than equality.
        let n = approx.len() as f64;
        let ma = approx.iter().sum::<f64>() / n;
        let me = exact.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut ve = 0.0;
        for (a, e) in approx.iter().zip(exact.iter()) {
            cov += (a - ma) * (e - me);
            va += (a - ma) * (a - ma);
            ve += (e - me) * (e - me);
        }
        let corr = cov / (va.sqrt() * ve.sqrt()).max(1e-30);
        assert!(corr > 0.7, "correlation only {corr}");
        // Top layer (stored first? layer order: layer 0 first) — the
        // LAST layer's block is exact; check it.
        let last_base: usize = net
            .layers()
            .iter()
            .take(net.layers().len() - 1)
            .map(|l| l.num_params())
            .sum();
        for i in last_base..approx.len() {
            assert!(
                (approx[i] - exact[i]).abs() < 1e-10 * (1.0 + exact[i].abs()),
                "top layer entry {i} not exact"
            );
        }
    }

    #[test]
    fn zero_gradient_gives_zero_diagonal() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(3);
        let net: Network<f32> = Network::new(&[3, 4, 2], Activation::Sigmoid, &mut rng);
        let x = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let cache = net.forward(&ctx, &x);
        let dlogits = Matrix::zeros(5, 2);
        let d = empirical_fisher_diagonal(&net, &ctx, &cache, &dlogits);
        assert!(d.iter().all(|&v| v == 0.0));
    }
}
