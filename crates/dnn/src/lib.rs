//! # pdnn-dnn — deep feed-forward networks for acoustic modeling
//!
//! The model substrate: multi-layer perceptrons with the losses and
//! derivative operators Hessian-free training needs.
//!
//! * [`network`] — layers, forward pass, and the flat parameter-vector
//!   view the optimizer works in.
//! * [`loss`] — frame criteria: softmax cross-entropy (fused, stable)
//!   and squared error.
//! * [`sequence`] — the utterance-level MMI criterion (the paper's
//!   "sequence" objective), with exact forward–backward over a bigram
//!   denominator graph.
//! * [`backprop`] — exact gradients.
//! * [`gauss_newton`] — curvature matrix–vector products `G(θ)v` via
//!   the Pearlmutter R-operator; `G` is PSD by construction, the
//!   property Hessian-free optimization relies on.
//! * [`gradcheck`] — finite-difference verification helpers.
//! * [`flops`] — analytic per-frame FLOP counts used to calibrate the
//!   Blue Gene/Q performance model.
//!
//! Everything is generic over `f32`/`f64`; training runs in `f32`
//! (SGEMM-bound, as in the paper) while the derivative tests
//! instantiate `f64` for tight finite-difference tolerances.

pub mod activation;
pub mod backprop;
pub mod checkpoint;
pub mod decode;
pub mod fisher;
pub mod flops;
pub mod gauss_newton;
pub mod gradcheck;
pub mod loss;
pub mod network;
pub mod packed;
pub mod sequence;

pub use activation::Activation;
pub use backprop::{backprop as backprop_dlogits, backprop_ws, loss_and_gradient};
pub use checkpoint::{load_network, save_network, CheckpointError};
pub use decode::{state_error_rate, viterbi_decode, viterbi_decode_batch};
pub use fisher::empirical_fisher_diagonal;
pub use gauss_newton::{gn_product, gn_product_ws, Curvature};
pub use loss::{cross_entropy, softmax_rows, FrameLoss, LossOutput};
pub use network::{ForwardCache, Layer, Network};
pub use packed::{PackedActivations, PackedWeights};
pub use sequence::{mmi_batch, mmi_utterance, DenominatorGraph, SequenceLossOutput};
