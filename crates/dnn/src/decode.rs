//! Viterbi decoding and sequence error metrics.
//!
//! The paper reports recognition quality as word-error-rate from an
//! LVCSR decoder; the synthetic task's analogue is the **state error
//! rate** of the maximum-a-posteriori state path through the same
//! bigram graph the MMI criterion uses. Decoding combines the DNN's
//! frame scores with the transition model, so it benefits from
//! temporal smoothing that per-frame argmax cannot exploit — the same
//! relationship WER has to frame accuracy in a real system.

use crate::sequence::DenominatorGraph;
use pdnn_tensor::{Matrix, Scalar};

/// Most probable state path given frame logits and a transition
/// model: `argmax_path [ Σ_t log softmax(logits_t)(s_t) + log π(s_0)
/// + Σ log A(s_{t-1}, s_t) ]`.
///
/// Standard Viterbi in log space; ties resolve to the lower state
/// index (deterministic).
pub fn viterbi_decode<T: Scalar>(logits: &Matrix<T>, graph: &DenominatorGraph) -> Vec<u32> {
    let frames = logits.rows();
    let s = graph.states();
    assert_eq!(logits.cols(), s, "logits width != graph states");
    if frames == 0 {
        return Vec::new();
    }

    // Log-softmax rows in f64.
    let lp = |t: usize, j: usize| -> f64 {
        let row = logits.row(t);
        let mut max = row[0].to_f64();
        for &v in row.iter() {
            max = max.max(v.to_f64());
        }
        let lse: f64 = row
            .iter()
            .map(|&v| (v.to_f64() - max).exp())
            .sum::<f64>()
            .ln()
            + max;
        row[j].to_f64() - lse
    };

    let mut delta: Vec<f64> = (0..s).map(|j| graph.log_prior(j) + lp(0, j)).collect();
    let mut backptr = vec![0u32; frames * s];
    let mut next = vec![0.0f64; s];
    for t in 1..frames {
        for j in 0..s {
            let mut best_i = 0usize;
            let mut best = f64::NEG_INFINITY;
            for (i, &d) in delta.iter().enumerate() {
                let score = d + graph.log_transition(i, j);
                if score > best {
                    best = score;
                    best_i = i;
                }
            }
            next[j] = best + lp(t, j);
            backptr[t * s + j] = best_i as u32;
        }
        delta.copy_from_slice(&next);
    }

    // Backtrace.
    let mut state = delta
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut path = vec![0u32; frames];
    path[frames - 1] = state as u32;
    for t in (1..frames).rev() {
        state = backptr[t * s + state] as usize;
        path[t - 1] = state as u32;
    }
    path
}

/// Decode a batch of stacked utterances; `utt_lens` partitions the
/// rows of `logits`.
pub fn viterbi_decode_batch<T: Scalar>(
    logits: &Matrix<T>,
    utt_lens: &[usize],
    graph: &DenominatorGraph,
) -> Vec<u32> {
    let total: usize = utt_lens.iter().sum();
    assert_eq!(total, logits.rows(), "utterance lengths do not cover batch");
    let mut out = Vec::with_capacity(total);
    let mut start = 0usize;
    for &len in utt_lens {
        let sub = logits.rows_copy(start, start + len);
        out.extend(viterbi_decode(&sub, graph));
        start += len;
    }
    out
}

/// Fraction of frames whose decoded state differs from the reference
/// alignment — the synthetic analogue of word error rate.
pub fn state_error_rate(decoded: &[u32], reference: &[u32]) -> f64 {
    assert_eq!(decoded.len(), reference.len(), "length mismatch");
    if decoded.is_empty() {
        return 0.0;
    }
    let errors = decoded
        .iter()
        .zip(reference.iter())
        .filter(|(a, b)| a != b)
        .count();
    errors as f64 / decoded.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_util::Prng;

    fn chain(states: usize, self_loop: f64) -> DenominatorGraph {
        let other = (1.0 - self_loop) / (states - 1) as f64;
        let mut trans = vec![other; states * states];
        for i in 0..states {
            trans[i * states + i] = self_loop;
        }
        DenominatorGraph::new(&vec![1.0 / states as f64; states], &trans)
    }

    #[test]
    fn strong_evidence_is_decoded_verbatim() {
        let g = chain(4, 0.5);
        let truth = [0u32, 1, 1, 2, 3];
        let mut logits: Matrix<f64> = Matrix::zeros(5, 4);
        for (t, &s) in truth.iter().enumerate() {
            logits[(t, s as usize)] = 20.0;
        }
        assert_eq!(viterbi_decode(&logits, &g), truth);
        assert_eq!(state_error_rate(&viterbi_decode(&logits, &g), &truth), 0.0);
    }

    #[test]
    fn transitions_smooth_out_single_frame_glitches() {
        // Truth is a run of state 0; one frame has (weak) evidence for
        // state 2. With a sticky chain, Viterbi keeps the run while
        // frame argmax flips.
        let g = chain(3, 0.95);
        let mut logits: Matrix<f64> = Matrix::zeros(7, 3);
        for t in 0..7 {
            logits[(t, 0)] = 2.0;
        }
        logits[(3, 2)] = 2.5; // glitch: argmax picks 2 here
        let argmax = logits.row_argmax();
        assert_eq!(argmax[3], 2);
        let path = viterbi_decode(&logits, &g);
        assert_eq!(path, vec![0; 7], "Viterbi should smooth the glitch");
    }

    #[test]
    fn decode_respects_forbidden_transitions() {
        // Strict left-to-right: 0 -> {0,1}, 1 -> {1}. Evidence asks
        // for 1 then 0, which is illegal; the decoder must not emit
        // that order.
        let trans = vec![0.5, 0.5, 0.0, 1.0];
        let g = DenominatorGraph::new(&[1.0, 0.0], &trans);
        let mut logits: Matrix<f64> = Matrix::zeros(2, 2);
        logits[(0, 1)] = 5.0;
        logits[(1, 0)] = 5.0;
        let path = viterbi_decode(&logits, &g);
        for w in path.windows(2) {
            assert!(w[0] <= w[1], "illegal transition in {path:?}");
        }
        assert_eq!(path[0], 0, "prior forbids starting in state 1");
    }

    #[test]
    fn batch_decode_matches_per_utterance() {
        let g = chain(3, 0.7);
        let mut rng = Prng::new(5);
        let logits: Matrix<f64> = Matrix::random_normal(10, 3, 1.0, &mut rng);
        let lens = [4usize, 6];
        let batch = viterbi_decode_batch(&logits, &lens, &g);
        let a = viterbi_decode(&logits.rows_copy(0, 4), &g);
        let b = viterbi_decode(&logits.rows_copy(4, 10), &g);
        assert_eq!(&batch[..4], a.as_slice());
        assert_eq!(&batch[4..], b.as_slice());
    }

    #[test]
    fn viterbi_never_loses_to_argmax_on_chain_data() {
        // On data generated by the same chain, decoding with the chain
        // must match or beat frame-wise argmax on average.
        let g = chain(4, 0.8);
        let mut rng = Prng::new(9);
        // Simulate: true path from the chain, noisy logits.
        let mut truth = Vec::new();
        let mut state = 0usize;
        for _ in 0..400 {
            truth.push(state as u32);
            // sticky walk
            if rng.uniform() > 0.8 {
                state = (state + 1) % 4;
            }
        }
        let mut logits: Matrix<f64> = Matrix::zeros(400, 4);
        for (t, &s) in truth.iter().enumerate() {
            for j in 0..4 {
                logits[(t, j)] = if j == s as usize { 1.0 } else { 0.0 };
                logits[(t, j)] += rng.normal() * 0.8;
            }
        }
        let argmax: Vec<u32> = logits.row_argmax().iter().map(|&v| v as u32).collect();
        let vit = viterbi_decode(&logits, &g);
        let ser_argmax = state_error_rate(&argmax, &truth);
        let ser_vit = state_error_rate(&vit, &truth);
        assert!(
            ser_vit <= ser_argmax,
            "viterbi {ser_vit} worse than argmax {ser_argmax}"
        );
        assert!(ser_vit < 0.4, "decoder failed: SER {ser_vit}");
    }

    #[test]
    fn empty_input_decodes_to_empty() {
        let g = chain(2, 0.5);
        let logits: Matrix<f32> = Matrix::zeros(0, 2);
        assert!(viterbi_decode(&logits, &g).is_empty());
        assert_eq!(state_error_rate(&[], &[]), 0.0);
    }
}
