//! Finite-difference utilities for verifying analytic derivatives.
//!
//! Used throughout the test suites; exposed publicly so downstream
//! crates (and users extending the library) can validate custom loss
//! functions the same way.

/// Central finite-difference gradient of `f` at `theta`.
///
/// O(2n) evaluations of `f`; intended for small test problems.
pub fn fd_gradient(mut f: impl FnMut(&[f64]) -> f64, theta: &[f64], h: f64) -> Vec<f64> {
    assert!(h > 0.0, "fd_gradient: step must be positive");
    let mut grad = Vec::with_capacity(theta.len());
    let mut work = theta.to_vec();
    for i in 0..theta.len() {
        let orig = work[i];
        work[i] = orig + h;
        let plus = f(&work);
        work[i] = orig - h;
        let minus = f(&work);
        work[i] = orig;
        grad.push((plus - minus) / (2.0 * h));
    }
    grad
}

/// Central finite-difference directional derivative of `f` along `v`.
pub fn fd_directional(mut f: impl FnMut(&[f64]) -> f64, theta: &[f64], v: &[f64], h: f64) -> f64 {
    assert_eq!(theta.len(), v.len(), "fd_directional length mismatch");
    let plus: Vec<f64> = theta.iter().zip(v).map(|(&t, &d)| t + h * d).collect();
    let minus: Vec<f64> = theta.iter().zip(v).map(|(&t, &d)| t - h * d).collect();
    (f(&plus) - f(&minus)) / (2.0 * h)
}

/// Largest relative error between two vectors,
/// `max_i |a_i - b_i| / (1 + max(|a_i|, |b_i|))`.
pub fn max_rel_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_rel_error length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs() / (1.0 + x.abs().max(y.abs())))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_gradient_of_quadratic() {
        // f(x) = x0^2 + 3 x1 → grad = (2 x0, 3)
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = fd_gradient(f, &[2.0, -1.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fd_directional_matches_dot_with_gradient() {
        let f = |x: &[f64]| x[0].sin() + x[1] * x[1];
        let theta = [0.7, -0.3];
        let v = [2.0, 1.0];
        let d = fd_directional(f, &theta, &v, 1e-6);
        let expect = 0.7f64.cos() * 2.0 + 2.0 * (-0.3) * 1.0;
        assert!((d - expect).abs() < 1e-6, "{d} vs {expect}");
    }

    #[test]
    fn max_rel_error_zero_for_equal() {
        assert_eq!(max_rel_error(&[1.0, -2.0], &[1.0, -2.0]), 0.0);
    }

    #[test]
    fn max_rel_error_detects_outlier() {
        let e = max_rel_error(&[1.0, 1.0], &[1.0, 3.0]);
        assert!((e - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn fd_gradient_rejects_zero_step() {
        fd_gradient(|_| 0.0, &[1.0], 0.0);
    }
}
