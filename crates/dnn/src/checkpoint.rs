//! Network checkpointing.
//!
//! A production training run of "a few hours" on thousands of nodes
//! needs restartable state. The format is a small, versioned binary
//! layout — no external serialization dependency:
//!
//! ```text
//! magic    b"PDNN"            4 bytes
//! version  u32 LE             currently 1
//! n_dims   u32 LE
//! dims     n_dims x u32 LE    layer widths, input first
//! act      u8                 hidden activation tag
//! params   num_params x f32 LE  (Network::to_flat layout)
//! ```

use crate::activation::Activation;
use crate::network::Network;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PDNN";
const VERSION: u32 = 1;

/// Checkpoint load/store failure.
///
/// An alias for the shared [`pdnn_util::Error`]: I/O failures surface
/// as [`pdnn_util::Error::Io`], malformed files as
/// [`pdnn_util::Error::Format`]. Existing `CheckpointError::Io(..)` /
/// `CheckpointError::Format(..)` patterns keep working through the
/// alias.
pub type CheckpointError = pdnn_util::Error;

fn act_tag(act: Activation) -> u8 {
    match act {
        Activation::Sigmoid => 0,
        Activation::Tanh => 1,
        Activation::ReLU => 2,
        Activation::Identity => 3,
    }
}

fn act_from_tag(tag: u8) -> Result<Activation, CheckpointError> {
    Ok(match tag {
        0 => Activation::Sigmoid,
        1 => Activation::Tanh,
        2 => Activation::ReLU,
        3 => Activation::Identity,
        other => {
            return Err(CheckpointError::Format(format!(
                "unknown activation tag {other}"
            )))
        }
    })
}

/// Write a checkpoint of `net` to `path` atomically.
///
/// The bytes are written to a sibling `<path>.tmp` file, fsynced, and
/// renamed into place — a rename within one directory is atomic on
/// POSIX filesystems, so a crash at *any* point leaves either the old
/// complete checkpoint or the new complete checkpoint at `path`,
/// never a torn file. This is the property the fault-tolerant
/// trainer's checkpoint-restart path depends on: the recovery
/// artifact must always be loadable.
pub fn save_network(net: &Network<f32>, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let tmp_path = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let file = File::create(&tmp_path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let dims = net.dims();
    w.write_all(&(dims.len() as u32).to_le_bytes())?;
    for &d in &dims {
        w.write_all(&(d as u32).to_le_bytes())?;
    }
    // All hidden layers share one activation by construction.
    let hidden_act = net
        .layers()
        .first()
        .map(|l| l.act)
        .unwrap_or(Activation::Identity);
    w.write_all(&[act_tag(hidden_act)])?;
    for &p in &net.to_flat() {
        w.write_all(&p.to_le_bytes())?;
    }
    w.flush()?;
    // Durability before visibility: the data must be on disk before
    // the rename publishes it.
    let file = w
        .into_inner()
        .map_err(|e| CheckpointError::Io(io::Error::other(e.to_string())))?;
    file.sync_all()?;
    std::fs::rename(&tmp_path, path)?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Load a checkpoint written by [`save_network`].
pub fn load_network(path: impl AsRef<Path>) -> Result<Network<f32>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let n_dims = read_u32(&mut r)? as usize;
    if !(2..=64).contains(&n_dims) {
        return Err(CheckpointError::Format(format!(
            "implausible layer count {n_dims}"
        )));
    }
    let mut dims = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        let d = read_u32(&mut r)? as usize;
        if d == 0 || d > 1 << 24 {
            return Err(CheckpointError::Format(format!("implausible width {d}")));
        }
        dims.push(d);
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let act = act_from_tag(tag[0])?;

    let mut rng = pdnn_util::Prng::new(0);
    let mut net: Network<f32> = Network::new(&dims, act, &mut rng);
    let n = net.num_params();
    let mut theta = vec![0.0f32; n];
    let mut buf = [0u8; 4];
    for t in theta.iter_mut() {
        r.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                CheckpointError::Format("truncated parameter section".into())
            } else {
                CheckpointError::Io(e)
            }
        })?;
        *t = f32::from_le_bytes(buf);
    }
    // Trailing garbage is a format error too.
    let mut extra = [0u8; 1];
    match r.read(&mut extra)? {
        0 => {}
        _ => return Err(CheckpointError::Format("trailing bytes".into())),
    }
    net.set_flat(&theta);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_util::Prng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pdnn-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = Prng::new(5);
        let net: Network<f32> = Network::new(&[7, 11, 4], Activation::Tanh, &mut rng);
        let path = tmp("roundtrip");
        save_network(&net, &path).unwrap();
        let loaded = load_network(&path).unwrap();
        assert_eq!(loaded.dims(), net.dims());
        assert_eq!(loaded.to_flat(), net.to_flat());
        assert_eq!(loaded.layers()[0].act, Activation::Tanh);
        assert_eq!(loaded.layers().last().unwrap().act, Activation::Identity);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        match load_network(&path) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("magic"), "{m}"),
            other => panic!("accepted garbage: {other:?}"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_truncation() {
        let mut rng = Prng::new(6);
        let net: Network<f32> = Network::new(&[4, 3], Activation::Sigmoid, &mut rng);
        let path = tmp("trunc");
        save_network(&net, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        match load_network(&path) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("accepted truncated file: {other:?}"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn kill_mid_write_never_tears_the_checkpoint() {
        // Simulate a crash at every possible write boundary: the
        // not-yet-renamed temp file holds the partial bytes, so the
        // published path must still hold the previous complete
        // checkpoint (or nothing). This is exactly what an atomic
        // write-tmp/fsync/rename protocol guarantees.
        let mut rng = Prng::new(8);
        let old: Network<f32> = Network::new(&[5, 4, 2], Activation::Sigmoid, &mut rng);
        let new: Network<f32> = Network::new(&[5, 4, 2], Activation::Sigmoid, &mut rng);
        let path = tmp("killmid");
        save_network(&old, &path).unwrap();
        let old_bytes = std::fs::read(&path).unwrap();

        // Full bytes the new checkpoint would contain.
        let staging = tmp("killmid-staging");
        save_network(&new, &staging).unwrap();
        let new_bytes = std::fs::read(&staging).unwrap();
        std::fs::remove_file(&staging).unwrap();

        let tmp_path = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        for cut in [0, 1, 4, 9, new_bytes.len() / 2, new_bytes.len() - 1] {
            // A crash after writing `cut` bytes of the temp file.
            std::fs::write(&tmp_path, &new_bytes[..cut]).unwrap();
            // The published checkpoint is untouched and loadable.
            assert_eq!(std::fs::read(&path).unwrap(), old_bytes, "cut={cut}");
            let loaded = load_network(&path).unwrap();
            assert_eq!(loaded.to_flat(), old.to_flat(), "cut={cut}");
        }
        // A fresh writer over the leftover temp file completes and
        // atomically replaces the checkpoint.
        save_network(&new, &path).unwrap();
        assert!(!tmp_path.exists(), "rename consumed the temp file");
        let loaded = load_network(&path).unwrap();
        assert_eq!(loaded.to_flat(), new.to_flat());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut rng = Prng::new(7);
        let net: Network<f32> = Network::new(&[4, 3], Activation::Sigmoid, &mut rng);
        let path = tmp("trailing");
        save_network(&net, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xFF);
        std::fs::write(&path, &bytes).unwrap();
        match load_network(&path) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("trailing"), "{m}"),
            other => panic!("accepted trailing bytes: {other:?}"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_network(tmp("never-created")) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }
}
