//! Prepacked-operand sidecars for the training hot path.
//!
//! A network's weights are constant across every GEMM of a batch, and
//! across *every CG iteration* of a Hessian-free solve; the curvature
//! minibatch's activations are likewise constant across all the
//! `gn_product` calls of one solve. Packing those operands once and
//! replaying the packed panels is the paper's central GEMM trick, and
//! these two types carry the packed forms:
//!
//! * [`PackedWeights`] — per-layer panels of `W` in both orientations
//!   the passes need (`W^T` for forward/R-forward, `W` for the
//!   backward delta propagation), stamped with the [`Network`]'s
//!   version so stale packs are detected, never silently used.
//! * [`PackedActivations`] — per-layer panels of the cached
//!   activations in both operand roles the Gauss–Newton product
//!   needs (`PackedA` as the left operand of the R-forward,
//!   `PackedB` as the right operand of the linearized backward).
//!
//! All packing uses the caller's [`GemmContext`] blocking, so the
//! prepacked drivers are bitwise identical to the plain [`gemm`]
//! calls they replace.
//!
//! [`gemm`]: pdnn_tensor::gemm::gemm

use crate::network::{ForwardCache, Network};
use pdnn_tensor::gemm::{GemmContext, PackedA, PackedB, Trans};
use pdnn_tensor::Scalar;

/// Per-layer packed weight panels, valid for one [`Network::version`].
#[derive(Clone, Debug)]
pub struct PackedWeights<T: Scalar> {
    version: u64,
    /// `PackedB(W, Trans::T)` per layer: `z = a_in * W^T`.
    forward: Vec<PackedB<T>>,
    /// `PackedB(W, Trans::N)` per layer: `dprev = delta * W`.
    backward: Vec<PackedB<T>>,
}

impl<T: Scalar> PackedWeights<T> {
    /// Pack every layer of `net` under `ctx`'s blocking.
    pub fn new(net: &Network<T>, ctx: &GemmContext) -> Self {
        let blocking = ctx.blocking();
        let mut forward = Vec::with_capacity(net.layers().len());
        let mut backward = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            forward.push(PackedB::new(&layer.w, Trans::T, blocking));
            backward.push(PackedB::new(&layer.w, Trans::N, blocking));
        }
        PackedWeights {
            version: net.version(),
            forward,
            backward,
        }
    }

    /// Whether this pack still reflects `net`'s current weights.
    pub fn matches(&self, net: &Network<T>) -> bool {
        self.version == net.version()
    }

    /// The [`Network::version`] the pack was built from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Packed `W^T` for layer `l` (forward / R-forward operand).
    pub fn forward(&self, l: usize) -> &PackedB<T> {
        &self.forward[l]
    }

    /// Packed `W` for layer `l` (backward delta-propagation operand).
    pub fn backward(&self, l: usize) -> &PackedB<T> {
        &self.backward[l]
    }

    /// Total packed bytes held.
    pub fn bytes(&self) -> usize {
        self.forward.iter().map(PackedB::bytes).sum::<usize>()
            + self.backward.iter().map(PackedB::bytes).sum::<usize>()
    }
}

/// Packed activations of one cached batch, for repeated `gn_product`
/// calls against the same curvature sample.
#[derive(Clone, Debug)]
pub struct PackedActivations<T: Scalar> {
    /// `PackedA(acts[l], Trans::N)` per layer: left operand of
    /// `rz += a_prev * Vw^T`.
    left: Vec<PackedA<T>>,
    /// `PackedB(acts[l], Trans::N)` per layer: right operand of
    /// `gw = delta^T * a_prev`.
    right: Vec<PackedB<T>>,
}

impl<T: Scalar> PackedActivations<T> {
    /// Pack the input-side activations of `cache` (everything except
    /// the logits) under `ctx`'s blocking.
    pub fn new(cache: &ForwardCache<T>, ctx: &GemmContext) -> Self {
        let blocking = ctx.blocking();
        let n = cache.acts.len() - 1;
        let mut left = Vec::with_capacity(n);
        let mut right = Vec::with_capacity(n);
        for a in &cache.acts[..n] {
            left.push(PackedA::new(a, Trans::N, blocking));
            right.push(PackedB::new(a, Trans::N, blocking));
        }
        PackedActivations { left, right }
    }

    /// Packed left-operand activations for layer `l`.
    pub fn left(&self, l: usize) -> &PackedA<T> {
        &self.left[l]
    }

    /// Packed right-operand activations for layer `l`.
    pub fn right(&self, l: usize) -> &PackedB<T> {
        &self.right[l]
    }

    /// Number of packed layers.
    pub fn layers(&self) -> usize {
        self.left.len()
    }

    /// Total packed bytes held.
    pub fn bytes(&self) -> usize {
        self.left.iter().map(PackedA::bytes).sum::<usize>()
            + self.right.iter().map(PackedB::bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use pdnn_tensor::Matrix;
    use pdnn_util::Prng;

    #[test]
    fn pack_tracks_network_version() {
        let mut rng = Prng::new(1);
        let mut net: Network<f32> = Network::new(&[4, 5, 3], Activation::Sigmoid, &mut rng);
        let ctx = GemmContext::sequential();
        let packs = PackedWeights::new(&net, &ctx);
        assert!(packs.matches(&net));
        assert!(packs.bytes() > 0);
        let theta = net.to_flat();
        net.set_flat(&theta); // same values, but a mutation nonetheless
        assert!(!packs.matches(&net), "set_flat must invalidate packs");
        let repacked = PackedWeights::new(&net, &ctx);
        assert!(repacked.matches(&net));
    }

    #[test]
    fn clone_shares_version_until_mutated() {
        let mut rng = Prng::new(2);
        let net: Network<f32> = Network::new(&[3, 4, 2], Activation::Tanh, &mut rng);
        let ctx = GemmContext::sequential();
        let packs = PackedWeights::new(&net, &ctx);
        let mut twin = net.clone();
        assert!(
            packs.matches(&twin),
            "a clone has identical weights, so the pack is still valid"
        );
        twin.axpy_flat(0.1, &vec![1.0; twin.num_params()]);
        assert!(!packs.matches(&twin));
        assert!(packs.matches(&net), "the original is untouched");
    }

    #[test]
    fn packed_activations_cover_all_input_sides() {
        let mut rng = Prng::new(3);
        let net: Network<f32> = Network::new(&[4, 6, 5, 3], Activation::Sigmoid, &mut rng);
        let ctx = GemmContext::sequential();
        let x: Matrix<f32> = Matrix::random_normal(9, 4, 1.0, &mut rng);
        let cache = net.forward(&ctx, &x);
        let packed = PackedActivations::new(&cache, &ctx);
        assert_eq!(packed.layers(), 3);
        assert_eq!(packed.left(0).m(), 9);
        assert_eq!(packed.left(0).k(), 4);
        assert_eq!(packed.right(2).k(), 9); // delta^T side: frames
        assert_eq!(packed.right(2).n(), 5);
        assert!(packed.bytes() > 0);
    }
}
