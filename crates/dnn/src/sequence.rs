//! Sequence-discriminative training criterion (lattice-free MMI).
//!
//! The paper's second objective (Table I, "Sequence") is a
//! discriminative criterion over whole utterances, trained with
//! distributed Hessian-free optimization [Kingsbury et al. 2012]. The
//! production system used word lattices from an LVCSR decoder; those
//! are proprietary, so — per the substitution rule in DESIGN.md — we
//! implement the *lattice-free* form of maximum mutual information:
//! the denominator is a full bigram graph over HMM states, evaluated
//! exactly with the forward–backward algorithm. This preserves what
//! the evaluation depends on: a genuine utterance-level
//! discriminative objective whose pass costs roughly twice a
//! cross-entropy pass (numerator + denominator accumulation) and
//! whose curvature uses denominator occupancies.
//!
//! For an utterance with frames `t = 0..T`, alignment `a_t`, acoustic
//! scores `lp_t(s) = log softmax(logits_t)(s)`, and a state bigram
//! `(π, A)`:
//!
//! ```text
//! log num = log π(a_0) + Σ_t lp_t(a_t) + Σ_{t>0} log A(a_{t-1}, a_t)
//! log den = logsumexp over all state paths of the same form
//! L = log den − log num ≥ 0
//! ∂L/∂logit_t(s) = γ_t(s) − 1[s = a_t]
//! ```
//!
//! where `γ` are the denominator occupancies from forward–backward.
//! `γ` also plugs into [`crate::gauss_newton::Curvature::Fisher`] as
//! the model distribution for Gauss–Newton products.

use pdnn_tensor::{Matrix, Scalar};

/// Log-sum-exp of a slice (stable; `-inf` for empty).
fn lse(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f64>().ln()
}

/// The denominator graph: a bigram (first-order Markov) model over
/// HMM states.
#[derive(Clone, Debug)]
pub struct DenominatorGraph {
    states: usize,
    /// Initial log-probabilities, length `states`.
    log_prior: Vec<f64>,
    /// Transition log-probabilities, `states x states` row-major
    /// (`log_trans[i * states + j] = log P(j | i)`).
    log_trans: Vec<f64>,
}

impl DenominatorGraph {
    /// Build from probability-space prior and transition matrix.
    ///
    /// # Panics
    /// If dimensions are inconsistent or rows are not (approximately)
    /// normalized.
    pub fn new(prior: &[f64], trans: &[f64]) -> Self {
        let states = prior.len();
        assert!(states > 0, "DenominatorGraph needs at least one state");
        assert_eq!(
            trans.len(),
            states * states,
            "transition matrix must be {states}x{states}"
        );
        let psum: f64 = prior.iter().sum();
        assert!((psum - 1.0).abs() < 1e-6, "prior sums to {psum}");
        for i in 0..states {
            let rsum: f64 = trans[i * states..(i + 1) * states].iter().sum();
            assert!(
                (rsum - 1.0).abs() < 1e-6,
                "transition row {i} sums to {rsum}"
            );
        }
        let eps = 1e-300f64; // avoid log(0); forbidden arcs get ~ -690
        DenominatorGraph {
            states,
            log_prior: prior.iter().map(|&p| (p + eps).ln()).collect(),
            log_trans: trans.iter().map(|&p| (p + eps).ln()).collect(),
        }
    }

    /// Fully-connected uniform graph over `states` states.
    pub fn uniform(states: usize) -> Self {
        let p = 1.0 / states as f64;
        DenominatorGraph::new(&vec![p; states], &vec![p; states * states])
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Initial log-probability of state `j`.
    #[inline]
    pub fn log_prior(&self, j: usize) -> f64 {
        self.log_prior[j]
    }

    /// Transition log-probability `log P(j | i)`.
    #[inline]
    pub fn log_transition(&self, i: usize, j: usize) -> f64 {
        self.log_trans[i * self.states + j]
    }

    #[inline]
    fn lt(&self, i: usize, j: usize) -> f64 {
        self.log_transition(i, j)
    }
}

/// Result of evaluating the MMI criterion on one utterance (or a
/// batch of concatenated utterances).
#[derive(Clone, Debug)]
pub struct SequenceLossOutput<T: Scalar = f32> {
    /// Summed loss `Σ_utt (log den − log num)`; non-negative.
    pub loss: f64,
    /// Gradient with respect to the logits, `frames x states`.
    pub dlogits: Matrix<T>,
    /// Denominator occupancies `γ`, `frames x states` — the model
    /// distribution for Gauss–Newton curvature.
    pub den_posteriors: Matrix<T>,
}

/// Evaluate MMI on a single utterance.
///
/// `logits` is `frames x states`; `alignment` gives the numerator
/// (forced) state per frame.
pub fn mmi_utterance<T: Scalar>(
    logits: &Matrix<T>,
    alignment: &[u32],
    graph: &DenominatorGraph,
) -> SequenceLossOutput<T> {
    let frames = logits.rows();
    let s = graph.states();
    assert_eq!(logits.cols(), s, "logits width != graph states");
    assert_eq!(alignment.len(), frames, "alignment length != frames");
    assert!(frames > 0, "empty utterance");
    assert!(
        alignment.iter().all(|&a| (a as usize) < s),
        "alignment state out of range"
    );

    // Acoustic log-probs lp[t][s] = log softmax(logits[t]).
    let mut lp = vec![0.0f64; frames * s];
    for t in 0..frames {
        let row = logits.row(t);
        let mut max = row[0].to_f64();
        for &v in row.iter() {
            max = max.max(v.to_f64());
        }
        let lsev = max
            + row
                .iter()
                .map(|&v| (v.to_f64() - max).exp())
                .sum::<f64>()
                .ln();
        for j in 0..s {
            lp[t * s + j] = row[j].to_f64() - lsev;
        }
    }

    // Numerator score along the forced path.
    let mut log_num = graph.log_prior[alignment[0] as usize] + lp[alignment[0] as usize];
    for t in 1..frames {
        let (i, j) = (alignment[t - 1] as usize, alignment[t] as usize);
        log_num += graph.lt(i, j) + lp[t * s + j];
    }

    // Denominator forward pass.
    let mut alpha = vec![f64::NEG_INFINITY; frames * s];
    for j in 0..s {
        alpha[j] = graph.log_prior[j] + lp[j];
    }
    let mut scratch = vec![0.0f64; s];
    for t in 1..frames {
        for j in 0..s {
            for (i, slot) in scratch.iter_mut().enumerate() {
                *slot = alpha[(t - 1) * s + i] + graph.lt(i, j);
            }
            alpha[t * s + j] = lse(&scratch) + lp[t * s + j];
        }
    }
    let log_den = lse(&alpha[(frames - 1) * s..frames * s]);

    // Backward pass.
    let mut beta = vec![0.0f64; frames * s];
    for t in (0..frames - 1).rev() {
        for i in 0..s {
            for (j, slot) in scratch.iter_mut().enumerate() {
                *slot = graph.lt(i, j) + lp[(t + 1) * s + j] + beta[(t + 1) * s + j];
            }
            beta[t * s + i] = lse(&scratch);
        }
    }

    // Occupancies and gradient.
    let mut gamma = Matrix::zeros(frames, s);
    let mut dlogits = Matrix::zeros(frames, s);
    for t in 0..frames {
        for j in 0..s {
            let g = (alpha[t * s + j] + beta[t * s + j] - log_den).exp();
            gamma[(t, j)] = T::from_f64(g);
            dlogits[(t, j)] = T::from_f64(g);
        }
        dlogits[(t, alignment[t] as usize)] -= T::ONE;
    }

    SequenceLossOutput {
        loss: log_den - log_num,
        dlogits,
        den_posteriors: gamma,
    }
}

/// Evaluate MMI over several utterances stacked in one logits matrix.
///
/// `utt_lens` partitions the rows of `logits`; `alignment` is the
/// concatenated per-frame state sequence.
pub fn mmi_batch<T: Scalar>(
    logits: &Matrix<T>,
    alignment: &[u32],
    utt_lens: &[usize],
    graph: &DenominatorGraph,
) -> SequenceLossOutput<T> {
    let total: usize = utt_lens.iter().sum();
    assert_eq!(total, logits.rows(), "utterance lengths do not cover batch");
    assert_eq!(alignment.len(), total, "alignment length mismatch");
    let mut loss = 0.0f64;
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    let mut gamma = Matrix::zeros(logits.rows(), logits.cols());
    let mut start = 0usize;
    for &len in utt_lens {
        assert!(len > 0, "zero-length utterance");
        let sub = logits.rows_copy(start, start + len);
        let out = mmi_utterance(&sub, &alignment[start..start + len], graph);
        loss += out.loss;
        for t in 0..len {
            dlogits
                .row_mut(start + t)
                .copy_from_slice(out.dlogits.row(t));
            gamma
                .row_mut(start + t)
                .copy_from_slice(out.den_posteriors.row(t));
        }
        start += len;
    }
    SequenceLossOutput {
        loss,
        dlogits,
        den_posteriors: gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_util::Prng;

    fn random_logits(frames: usize, states: usize, seed: u64) -> Matrix<f64> {
        let mut rng = Prng::new(seed);
        Matrix::random_normal(frames, states, 1.0, &mut rng)
    }

    fn chain_graph(states: usize, self_loop: f64) -> DenominatorGraph {
        // Left-to-right-ish: strong self-loop, rest uniform.
        let other = (1.0 - self_loop) / (states - 1) as f64;
        let mut trans = vec![other; states * states];
        for i in 0..states {
            trans[i * states + i] = self_loop;
        }
        DenominatorGraph::new(&vec![1.0 / states as f64; states], &trans)
    }

    #[test]
    fn loss_is_nonnegative() {
        let g = chain_graph(5, 0.6);
        for seed in 0..10 {
            let logits = random_logits(12, 5, seed);
            let mut rng = Prng::new(seed + 100);
            let align: Vec<u32> = (0..12).map(|_| rng.below(5) as u32).collect();
            let out = mmi_utterance(&logits, &align, &g);
            assert!(out.loss >= -1e-9, "loss={} seed={seed}", out.loss);
        }
    }

    #[test]
    fn single_state_graph_has_zero_loss() {
        let g = DenominatorGraph::uniform(1);
        let logits: Matrix<f64> = Matrix::zeros(6, 1);
        let out = mmi_utterance(&logits, &[0; 6], &g);
        assert!(out.loss.abs() < 1e-9);
        assert!(out.dlogits.as_slice().iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn single_frame_uniform_graph_equals_cross_entropy() {
        // With T=1 and uniform prior, log den = log(1/S) + lse(lp) =
        // log(1/S) (lp is a log-softmax), log num = log(1/S) + lp[a],
        // so L = -lp[a] — exactly the CE of that frame.
        let g = DenominatorGraph::uniform(4);
        let logits = random_logits(1, 4, 3);
        let out = mmi_utterance(&logits, &[2], &g);
        let logits32 = logits.clone();
        let (ce, _) = crate::loss::cross_entropy_loss_only(&logits32, &[2]);
        assert!((out.loss - ce).abs() < 1e-9, "mmi={} ce={ce}", out.loss);
    }

    #[test]
    fn occupancies_are_distributions() {
        let g = chain_graph(6, 0.5);
        let logits = random_logits(9, 6, 7);
        let align: Vec<u32> = vec![0, 1, 1, 2, 3, 3, 4, 5, 5];
        let out = mmi_utterance(&logits, &align, &g);
        for t in 0..9 {
            let s: f64 = out.den_posteriors.row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-8, "frame {t}: γ sums to {s}");
            assert!(out.den_posteriors.row(t).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let g = chain_graph(4, 0.7);
        let logits = random_logits(8, 4, 11);
        let align = vec![0u32, 0, 1, 1, 2, 2, 3, 3];
        let out = mmi_utterance(&logits, &align, &g);
        for t in 0..8 {
            let s: f64 = out.dlogits.row(t).iter().sum();
            assert!(s.abs() < 1e-8, "frame {t}: grad sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let g = chain_graph(3, 0.5);
        let base = random_logits(4, 3, 13);
        let align = vec![0u32, 1, 2, 1];
        let out = mmi_utterance(&base, &align, &g);
        let h = 1e-6;
        for t in 0..4 {
            for j in 0..3 {
                let mut plus = base.clone();
                plus[(t, j)] += h;
                let mut minus = base.clone();
                minus[(t, j)] -= h;
                let fd = (mmi_utterance(&plus, &align, &g).loss
                    - mmi_utterance(&minus, &align, &g).loss)
                    / (2.0 * h);
                let an = out.dlogits[(t, j)];
                assert!((fd - an).abs() < 1e-5, "({t},{j}): fd={fd} analytic={an}");
            }
        }
    }

    #[test]
    fn perfect_acoustics_drive_loss_down() {
        // Logits strongly favoring the alignment should yield a lower
        // loss than uniform logits.
        let g = chain_graph(4, 0.6);
        let align = vec![0u32, 1, 2, 3, 3, 2];
        let uniform: Matrix<f64> = Matrix::zeros(6, 4);
        let mut strong: Matrix<f64> = Matrix::zeros(6, 4);
        for (t, &a) in align.iter().enumerate() {
            strong[(t, a as usize)] = 10.0;
        }
        let lu = mmi_utterance(&uniform, &align, &g).loss;
        let ls = mmi_utterance(&strong, &align, &g).loss;
        assert!(ls < lu, "strong={ls} uniform={lu}");
    }

    #[test]
    fn batch_sums_utterances() {
        let g = chain_graph(3, 0.5);
        let logits = random_logits(7, 3, 17);
        let align = vec![0u32, 1, 2, 0, 1, 1, 2];
        let lens = [3usize, 4];
        let batch = mmi_batch(&logits, &align, &lens, &g);
        let u1 = mmi_utterance(&logits.rows_copy(0, 3), &align[..3], &g);
        let u2 = mmi_utterance(&logits.rows_copy(3, 7), &align[3..], &g);
        assert!((batch.loss - (u1.loss + u2.loss)).abs() < 1e-10);
        assert_eq!(batch.dlogits.row(0), u1.dlogits.row(0));
        assert_eq!(batch.dlogits.row(5), u2.dlogits.row(2));
    }

    #[test]
    #[should_panic(expected = "do not cover batch")]
    fn batch_checks_partition() {
        let g = DenominatorGraph::uniform(2);
        let logits = random_logits(5, 2, 1);
        mmi_batch(&logits, &[0; 5], &[2, 2], &g);
    }

    #[test]
    #[should_panic(expected = "transition row")]
    fn graph_validates_rows() {
        DenominatorGraph::new(&[0.5, 0.5], &[0.9, 0.3, 0.5, 0.5]);
    }

    #[test]
    fn forbidden_transitions_zero_out_paths() {
        // A strict left-to-right chain: state 1 unreachable as start,
        // transitions only forward. Alignment violating the chain
        // still evaluates (numerator just gets a huge penalty), and
        // the denominator only counts legal paths.
        let trans = vec![
            0.5, 0.5, // 0 -> {0, 1}
            0.0, 1.0, // 1 -> {1}
        ];
        let g = DenominatorGraph::new(&[1.0, 0.0], &trans);
        let logits: Matrix<f64> = Matrix::zeros(3, 2);
        let legal = mmi_utterance(&logits, &[0, 0, 1], &g);
        assert!(legal.loss.is_finite());
        // γ at t=0 must be entirely on state 0 (prior forbids 1).
        assert!((legal.den_posteriors[(0, 0)] - 1.0).abs() < 1e-9);
    }
}
