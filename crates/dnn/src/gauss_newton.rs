//! Gauss–Newton matrix–vector products via the Pearlmutter R-operator.
//!
//! Hessian-free optimization never forms the curvature matrix; CG only
//! needs products `G(θ) v` [Martens 2010, Schraudolph 2002]. The
//! Gauss–Newton matrix is `G = J^T H_L J` where `J` is the Jacobian of
//! the logits with respect to θ and `H_L` the (PSD) Hessian of the
//! loss with respect to the logits. The product is computed in three
//! sweeps, each a batch of GEMMs:
//!
//! 1. **R-forward**: propagate the directional derivative
//!    `Rz_l = R{a_{l-1}} W_l^T + a_{l-1} RW_l^T + Rb_l`,
//!    `Ra_l = f'(z_l) ∘ Rz_l`, with `Ra_0 = 0`. This yields `J v` at
//!    the logits.
//! 2. **Loss Hessian**: `u = H_L (J v)`. For softmax-based losses
//!    `H_L` per frame is `diag(q) - q q^T` with `q` the model
//!    distribution (softmax for CE; denominator posteriors for the
//!    sequence criterion — see `crate::sequence`). For squared error
//!    `H_L = I`.
//! 3. **Linearized backward**: ordinary backprop of `u`, *without* the
//!    second-order activation terms — dropping them is exactly what
//!    makes the result the Gauss–Newton product instead of the
//!    (indefinite) Hessian product.

use crate::network::{ForwardCache, Network};
use crate::packed::{PackedActivations, PackedWeights};
use pdnn_tensor::gemm::{GemmContext, GemmOp, PackedB, Trans, MR as GEMM_MR};
use pdnn_tensor::{Matrix, Scalar, Workspace};

/// Which loss-Hessian `H_L` closes the Gauss–Newton sandwich.
#[derive(Clone, Copy, Debug)]
pub enum Curvature<'a, T: Scalar> {
    /// `H_L = diag(q) - q q^T` per frame, rows of the given matrix.
    ///
    /// Pass the softmax of the logits for cross-entropy, or the
    /// denominator occupancies for the MMI sequence criterion.
    Fisher(&'a Matrix<T>),
    /// `H_L = I` (squared-error loss).
    Identity,
}

/// Compute `G(θ) v` for a flat direction `v` over the batch that
/// produced `cache`.
///
/// Returns the flat product vector (summed over frames, matching the
/// summed-loss convention of `backprop`).
pub fn gn_product<T: Scalar>(
    net: &Network<T>,
    ctx: &GemmContext,
    cache: &ForwardCache<T>,
    curvature: Curvature<'_, T>,
    v: &[T],
) -> Vec<T> {
    gn_product_ws(
        net,
        ctx,
        cache,
        curvature,
        v,
        None,
        None,
        &mut Workspace::new(),
    )
}

/// [`gn_product`] with arena-recycled scratch and optionally prepacked
/// operands — the CG hot path.
///
/// Within one CG solve the weights and the curvature sample are both
/// fixed, so `packs` (weights) and `acts` (sample activations) can be
/// built once and replayed across every iteration; only the small
/// direction matrices `Vw` are packed per call. All scratch comes from
/// `ws`; give the returned vector back after use for an allocation-free
/// steady state. Packed and unpacked paths are bitwise identical (the
/// prepacked drivers replay the exact blocked GEMMs).
///
/// # Panics
/// If `packs` was built from a different weight version, or if `acts`
/// does not cover `net`'s depth.
#[allow(clippy::too_many_arguments)] // hot-path variant: operand caches are separate by design
pub fn gn_product_ws<T: Scalar>(
    net: &Network<T>,
    ctx: &GemmContext,
    cache: &ForwardCache<T>,
    curvature: Curvature<'_, T>,
    v: &[T],
    packs: Option<&PackedWeights<T>>,
    acts: Option<&PackedActivations<T>>,
    ws: &mut Workspace<T>,
) -> Vec<T> {
    let layers = net.layers();
    assert_eq!(
        cache.acts.len(),
        layers.len() + 1,
        "cache does not match network depth"
    );
    if let Some(p) = packs {
        assert!(
            p.matches(net),
            "gn_product_ws: stale PackedWeights (pack v{} != net v{})",
            p.version(),
            net.version()
        );
    }
    if let Some(pa) = acts {
        assert_eq!(
            pa.layers(),
            layers.len(),
            "gn_product_ws: PackedActivations depth mismatch"
        );
    }
    let parts = net.split_flat(v);
    let frames = cache.acts[0].rows();

    // ---- 1. R-forward ---------------------------------------------
    // r = R{a_l}; zero for the input (inputs don't depend on θ), so
    // the layer-0 `r * W^T` term is skipped and the Vw product writes
    // rz directly (beta = 0 overwrite instead of accumulate).
    let mut r: Option<Matrix<T>> = None;
    let mut rz_out: Option<Matrix<T>> = None;
    for (l, layer) in layers.iter().enumerate() {
        let (vw_flat, vb) = parts[l];
        let a_prev = &cache.acts[l];

        // Rz = r * W^T + a_prev * Vw^T + Vb
        let mut rz = ws.take_matrix_scratch(frames, layer.outputs());
        let beta_vw = match &r {
            Some(r_in) => {
                match packs {
                    Some(p) => GemmOp::packed_b(r_in, Trans::N, p.forward(l)).run(ctx, &mut rz),
                    None => GemmOp::ab(r_in, Trans::N, &layer.w, Trans::T).run(ctx, &mut rz),
                }
                T::ONE
            }
            None => T::ZERO,
        };
        match acts {
            Some(pa) => {
                let left = pa.left(l);
                if frames <= 2 * GEMM_MR {
                    // Few frame rows (the strong-scaling per-rank
                    // shard regime): stream Vw's flat region straight
                    // out of the direction vector — op(Vw^T) columns
                    // are Vw rows, already stride-one — and skip the
                    // pack's extra write + reread of a Vw-sized
                    // buffer entirely.
                    GemmOp::packed_a_bt(left, vw_flat)
                        .beta(beta_vw)
                        .run(ctx, &mut rz);
                } else {
                    // Tall frame blocks amortize the register-blocked
                    // packed kernel better: pack Vw once straight from
                    // its flat region (arena scratch; no Vw matrix is
                    // ever materialized) and multiply with both
                    // operands prepacked.
                    let pvw = PackedB::new_in_from_rows(
                        layer.outputs(),
                        layer.inputs(),
                        vw_flat,
                        Trans::T,
                        left.blocking(),
                        ws,
                    );
                    GemmOp::packed_ab(left, &pvw)
                        .beta(beta_vw)
                        .run(ctx, &mut rz);
                    pvw.give_back(ws);
                }
            }
            None => {
                // Unpacked path: the plain GEMM driver wants a Matrix
                // operand, so materialize Vw from its flat region.
                let mut vw = ws.take_matrix_scratch(layer.outputs(), layer.inputs());
                vw.as_mut_slice().copy_from_slice(vw_flat);
                GemmOp::ab(a_prev, Trans::N, &vw, Trans::T)
                    .beta(beta_vw)
                    .run(ctx, &mut rz);
                ws.give_matrix(vw);
            }
        }
        rz.add_row_broadcast(vb);
        if let Some(r_old) = r.take() {
            ws.give_matrix(r_old);
        }

        if l + 1 == layers.len() {
            // Output layer is Identity: R{a_L} = Rz_L = J v.
            rz_out = Some(rz);
        } else {
            // Ra = f'(z) ∘ Rz, with f' read from the stored activation.
            let a_l = &cache.acts[l + 1];
            layer.act.mask_derivative(&mut rz, a_l);
            r = Some(rz);
        }
    }
    // pdnn-lint: allow(l3-no-unwrap): Network::new asserts at least one layer, so the loop above always assigns rz_out
    let jv = rz_out.expect("network has at least one layer");

    // ---- 2. u = H_L (J v) ------------------------------------------
    let mut u = jv;
    match curvature {
        Curvature::Identity => {}
        Curvature::Fisher(q) => {
            assert_eq!(q.shape(), u.shape(), "Fisher distribution shape mismatch");
            for rix in 0..frames {
                let qr = q.row(rix);
                let ur = u.row_mut(rix);
                // dot in f64: q·Rz over up to ~10k classes.
                let mut dot = 0.0f64;
                for (qv, uv) in qr.iter().zip(ur.iter()) {
                    dot += qv.to_f64() * uv.to_f64();
                }
                let dot_t = T::from_f64(dot);
                for (uv, &qv) in ur.iter_mut().zip(qr.iter()) {
                    *uv = qv * (*uv - dot_t);
                }
            }
        }
    }

    // ---- 3. linearized backward -----------------------------------
    // Scratch take: the layer loop below writes every flat-gradient
    // region exactly once (weights by copy, biases by column_sums_into
    // which zero-fills first).
    let mut out = ws.take_vec_scratch(net.num_params());
    let mut offsets = Vec::with_capacity(layers.len());
    let mut off = 0;
    for layer in layers {
        offsets.push(off);
        off += layer.num_params();
    }

    let mut delta = u;
    for l in (0..layers.len()).rev() {
        let layer = &layers[l];
        let a_prev = &cache.acts[l];
        let mut gw = ws.take_matrix_scratch(layer.outputs(), layer.inputs());
        match acts {
            Some(pa) => GemmOp::packed_b(&delta, Trans::T, pa.right(l)).run(ctx, &mut gw),
            None => GemmOp::ab(&delta, Trans::T, a_prev, Trans::N).run(ctx, &mut gw),
        }
        let base = offsets[l];
        out[base..base + gw.len()].copy_from_slice(gw.as_slice());
        delta.column_sums_into(&mut out[base + gw.len()..base + gw.len() + layer.b.len()]);
        ws.give_matrix(gw);

        if l > 0 {
            let mut dprev = ws.take_matrix_scratch(frames, layer.inputs());
            match packs {
                Some(p) => GemmOp::packed_b(&delta, Trans::N, p.backward(l)).run(ctx, &mut dprev),
                None => GemmOp::ab(&delta, Trans::N, &layer.w, Trans::N).run(ctx, &mut dprev),
            }
            layers[l - 1].act.mask_derivative(&mut dprev, a_prev);
            ws.give_matrix(delta);
            delta = dprev;
        }
    }
    ws.give_matrix(delta);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::softmax_rows;
    use pdnn_tensor::blas1;
    use pdnn_util::Prng;

    fn setup(dims: &[usize], frames: usize, seed: u64) -> (Network<f64>, Matrix<f64>) {
        let mut rng = Prng::new(seed);
        let net = Network::new(dims, Activation::Sigmoid, &mut rng);
        let x = Matrix::random_normal(frames, dims[0], 1.0, &mut rng);
        (net, x)
    }

    fn random_dir(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Prng::new(seed);
        (0..n).map(|_| rng.normal()).collect()
    }

    #[test]
    fn gn_is_symmetric() {
        let ctx = GemmContext::sequential();
        let (net, x) = setup(&[4, 6, 3], 5, 1);
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        let v1 = random_dir(net.num_params(), 2);
        let v2 = random_dir(net.num_params(), 3);
        let gv1 = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v1);
        let gv2 = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v2);
        let a = blas1::dot(&v2, &gv1);
        let b = blas1::dot(&v1, &gv2);
        assert!(
            (a - b).abs() < 1e-8 * (1.0 + a.abs()),
            "v2'Gv1={a} v1'Gv2={b}"
        );
    }

    #[test]
    fn gn_is_positive_semidefinite() {
        let ctx = GemmContext::sequential();
        let (net, x) = setup(&[5, 7, 4], 6, 4);
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        for seed in 10..30 {
            let v = random_dir(net.num_params(), seed);
            let gv = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v);
            let quad = blas1::dot(&v, &gv);
            assert!(quad >= -1e-10, "v'Gv = {quad} for seed {seed}");
        }
    }

    #[test]
    fn gn_is_linear_in_v() {
        let ctx = GemmContext::sequential();
        let (net, x) = setup(&[3, 5, 2], 4, 6);
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        let v1 = random_dir(net.num_params(), 7);
        let v2 = random_dir(net.num_params(), 8);
        let combo: Vec<f64> = v1
            .iter()
            .zip(v2.iter())
            .map(|(&a, &b)| 2.0 * a - 0.5 * b)
            .collect();
        let g1 = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v1);
        let g2 = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v2);
        let gc = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &combo);
        for i in 0..gc.len() {
            let want = 2.0 * g1[i] - 0.5 * g2[i];
            assert!((gc[i] - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    /// For a single affine layer the model is linear in θ, so the
    /// Gauss–Newton matrix IS the exact Hessian of the loss. Verify
    /// `G v` against a central finite difference of the gradient.
    #[test]
    fn gn_equals_hessian_for_linear_model_ce() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(11);
        let net: Network<f64> = Network::new(&[4, 3], Activation::Sigmoid, &mut rng);
        let x = Matrix::random_normal(6, 4, 1.0, &mut rng);
        let labels: Vec<u32> = (0..6).map(|_| rng.below(3) as u32).collect();
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        let v = random_dir(net.num_params(), 12);
        let gv = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v);

        let grad_at = |theta: &[f64]| {
            let mut n = net.clone();
            n.set_flat(theta);
            crate::backprop::loss_and_gradient(
                &n,
                &ctx,
                &x,
                &labels,
                None,
                crate::loss::FrameLoss::CrossEntropy,
            )
            .1
        };
        let theta0 = net.to_flat();
        let h = 1e-5;
        let plus: Vec<f64> = theta0
            .iter()
            .zip(v.iter())
            .map(|(&t, &d)| t + h * d)
            .collect();
        let minus: Vec<f64> = theta0
            .iter()
            .zip(v.iter())
            .map(|(&t, &d)| t - h * d)
            .collect();
        let gp = grad_at(&plus);
        let gm = grad_at(&minus);
        for i in 0..gv.len() {
            let fd = (gp[i] - gm[i]) / (2.0 * h);
            assert!(
                (fd - gv[i]).abs() < 1e-5 * (1.0 + fd.abs()),
                "coord {i}: fd={fd} gn={}",
                gv[i]
            );
        }
    }

    /// Same idea with squared error and identity curvature.
    #[test]
    fn gn_equals_hessian_for_linear_model_mse() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(13);
        let net: Network<f64> = Network::new(&[3, 2], Activation::Sigmoid, &mut rng);
        let x = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let targets = Matrix::random_normal(5, 2, 1.0, &mut rng);
        let cache = net.forward(&ctx, &x);
        let v = random_dir(net.num_params(), 14);
        let gv = gn_product(&net, &ctx, &cache, Curvature::Identity, &v);

        let grad_at = |theta: &[f64]| {
            let mut n = net.clone();
            n.set_flat(theta);
            crate::backprop::loss_and_gradient(
                &n,
                &ctx,
                &x,
                &[],
                Some(&targets),
                crate::loss::FrameLoss::SquaredError,
            )
            .1
        };
        let theta0 = net.to_flat();
        let h = 1e-5;
        let plus: Vec<f64> = theta0
            .iter()
            .zip(v.iter())
            .map(|(&t, &d)| t + h * d)
            .collect();
        let minus: Vec<f64> = theta0
            .iter()
            .zip(v.iter())
            .map(|(&t, &d)| t - h * d)
            .collect();
        let gp = grad_at(&plus);
        let gm = grad_at(&minus);
        for i in 0..gv.len() {
            let fd = (gp[i] - gm[i]) / (2.0 * h);
            assert!(
                (fd - gv[i]).abs() < 1e-6 * (1.0 + fd.abs()),
                "coord {i}: fd={fd} gn={}",
                gv[i]
            );
        }
    }

    #[test]
    fn gn_zero_direction_is_zero() {
        let ctx = GemmContext::sequential();
        let (net, x) = setup(&[3, 4, 2], 4, 20);
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        let v = vec![0.0f64; net.num_params()];
        let gv = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v);
        assert!(gv.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn packed_arena_path_bitwise_equals_plain() {
        // The CG-solve invariant: with weights and sample fixed, the
        // prepacked/arena product must be bit-identical to the plain
        // one for every direction — in f32, the training type.
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(30);
        let net: Network<f32> = Network::new(&[6, 9, 7, 4], Activation::Sigmoid, &mut rng);
        let x: Matrix<f32> = Matrix::random_normal(13, 6, 1.0, &mut rng);
        let cache = net.forward(&ctx, &x);
        let q = crate::loss::softmax_rows(cache.logits());
        let packs = PackedWeights::new(&net, &ctx);
        let acts = PackedActivations::new(&cache, &ctx);
        let mut ws = Workspace::new();
        for seed in 60..65 {
            let mut d = Prng::new(seed);
            let v: Vec<f32> = (0..net.num_params()).map(|_| d.normal() as f32).collect();
            let plain = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v);
            let fast = gn_product_ws(
                &net,
                &ctx,
                &cache,
                Curvature::Fisher(&q),
                &v,
                Some(&packs),
                Some(&acts),
                &mut ws,
            );
            assert_eq!(plain, fast, "seed {seed}");
            ws.give_vec(fast);
        }
        // Steady state: every buffer after the first call is recycled.
        assert!(ws.stats().reuses > 0);
    }

    #[test]
    #[should_panic(expected = "stale PackedWeights")]
    fn stale_packs_are_rejected() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(31);
        let mut net: Network<f32> = Network::new(&[3, 4, 2], Activation::Sigmoid, &mut rng);
        let x: Matrix<f32> = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let cache = net.forward(&ctx, &x);
        let packs = PackedWeights::new(&net, &ctx);
        net.axpy_flat(0.01, &vec![1.0; net.num_params()]);
        let v = vec![0.5f32; net.num_params()];
        gn_product_ws(
            &net,
            &ctx,
            &cache,
            Curvature::Identity,
            &v,
            Some(&packs),
            None,
            &mut Workspace::new(),
        );
    }

    #[test]
    fn gn_additive_over_frames() {
        let ctx = GemmContext::sequential();
        let (net, x) = setup(&[3, 4, 2], 2, 21);
        let v = random_dir(net.num_params(), 22);
        let cache = net.forward(&ctx, &x);
        let q = softmax_rows(cache.logits());
        let g_all = gn_product(&net, &ctx, &cache, Curvature::Fisher(&q), &v);

        let mut sum = vec![0.0f64; net.num_params()];
        for f in 0..2 {
            let xf = x.rows_copy(f, f + 1);
            let cf = net.forward(&ctx, &xf);
            let qf = softmax_rows(cf.logits());
            let gf = gn_product(&net, &ctx, &cf, Curvature::Fisher(&qf), &v);
            for i in 0..sum.len() {
                sum[i] += gf[i];
            }
        }
        for i in 0..sum.len() {
            assert!((g_all[i] - sum[i]).abs() < 1e-9 * (1.0 + sum[i].abs()));
        }
    }
}
