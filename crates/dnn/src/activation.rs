//! Hidden-layer activation functions.
//!
//! The era's acoustic models (and Martens' Hessian-free experiments)
//! used saturating nonlinearities; we provide those plus ReLU. Each
//! activation exposes its derivative *as a function of the activation
//! value* — the backward passes then never need the pre-activations,
//! halving the memory kept alive during backprop and the R-pass.

use pdnn_tensor::{Matrix, Scalar};

/// Elementwise nonlinearity applied to a layer's pre-activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + exp(-z))` — the paper-era default.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(0, z)`.
    ReLU,
    /// Identity (used for the output layer; the loss handles softmax).
    Identity,
}

impl Activation {
    /// Apply the activation in place.
    pub fn apply<T: Scalar>(self, z: &mut Matrix<T>) {
        match self {
            Activation::Sigmoid => z.map_inplace(|v| {
                // Numerically stable in both tails.
                if v.to_f64() >= 0.0 {
                    let e = (-v).exp();
                    T::ONE / (T::ONE + e)
                } else {
                    let e = v.exp();
                    e / (T::ONE + e)
                }
            }),
            Activation::Tanh => z.map_inplace(|v| {
                let e2 = (v + v).exp();
                (e2 - T::ONE) / (e2 + T::ONE)
            }),
            Activation::ReLU => z.map_inplace(|v| v.max(T::ZERO)),
            Activation::Identity => {}
        }
    }

    /// Derivative `f'(z)` expressed in terms of the activation `a = f(z)`.
    #[inline]
    pub fn derivative_from_output<T: Scalar>(self, a: T) -> T {
        match self {
            Activation::Sigmoid => a * (T::ONE - a),
            Activation::Tanh => T::ONE - a * a,
            Activation::ReLU => {
                if a > T::ZERO {
                    T::ONE
                } else {
                    T::ZERO
                }
            }
            Activation::Identity => T::ONE,
        }
    }

    /// Multiply `m` elementwise by `f'` evaluated from the stored
    /// activations `a` (the `delta ∘ f'(z)` step of backprop).
    pub fn mask_derivative<T: Scalar>(self, m: &mut Matrix<T>, a: &Matrix<T>) {
        assert_eq!(m.shape(), a.shape(), "mask_derivative shape mismatch");
        if self == Activation::Identity {
            return;
        }
        for (mv, &av) in m.as_mut_slice().iter_mut().zip(a.as_slice().iter()) {
            *mv *= self.derivative_from_output(av);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_scalar(act: Activation, z: f64) -> f64 {
        let mut m: Matrix<f64> = Matrix::from_vec(1, 1, vec![z]);
        act.apply(&mut m);
        m[(0, 0)]
    }

    #[test]
    fn sigmoid_values() {
        assert!((apply_scalar(Activation::Sigmoid, 0.0) - 0.5).abs() < 1e-12);
        assert!(apply_scalar(Activation::Sigmoid, 10.0) > 0.9999);
        assert!(apply_scalar(Activation::Sigmoid, -10.0) < 0.0001);
    }

    #[test]
    fn sigmoid_is_stable_in_tails() {
        assert!(apply_scalar(Activation::Sigmoid, -1000.0).is_finite());
        assert!(apply_scalar(Activation::Sigmoid, 1000.0).is_finite());
        assert_eq!(apply_scalar(Activation::Sigmoid, -1000.0), 0.0);
        assert_eq!(apply_scalar(Activation::Sigmoid, 1000.0), 1.0);
    }

    #[test]
    fn tanh_matches_std() {
        for z in [-2.0, -0.5, 0.0, 0.3, 1.7] {
            assert!((apply_scalar(Activation::Tanh, z) - z.tanh()).abs() < 1e-12);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(apply_scalar(Activation::ReLU, -3.0), 0.0);
        assert_eq!(apply_scalar(Activation::ReLU, 4.0), 4.0);
    }

    #[test]
    fn identity_is_noop() {
        assert_eq!(apply_scalar(Activation::Identity, 2.5), 2.5);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::ReLU] {
            for z in [-1.5, -0.2, 0.4, 2.0] {
                let a = apply_scalar(act, z);
                let fd = (apply_scalar(act, z + h) - apply_scalar(act, z - h)) / (2.0 * h);
                let an = act.derivative_from_output(a);
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} at z={z}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn mask_derivative_scales_elementwise() {
        let a: Matrix<f64> = Matrix::from_vec(1, 2, vec![0.5, 1.0]);
        let mut m: Matrix<f64> = Matrix::from_vec(1, 2, vec![2.0, 2.0]);
        Activation::Sigmoid.mask_derivative(&mut m, &a);
        assert!((m[(0, 0)] - 2.0 * 0.25).abs() < 1e-12);
        assert!((m[(0, 1)] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn mask_derivative_identity_leaves_input() {
        let a: Matrix<f32> = Matrix::filled(2, 2, 0.3);
        let mut m: Matrix<f32> = Matrix::filled(2, 2, 7.0);
        Activation::Identity.mask_derivative(&mut m, &a);
        assert!(m.as_slice().iter().all(|&v| v == 7.0));
    }
}
