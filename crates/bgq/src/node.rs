//! Node and core model of the Blue Gene/Q compute chip.
//!
//! Paper Section III / V.A: 16 A2 cores at 1.6 GHz, 4 hardware threads
//! per core, in-order dual-pipeline issue (one arithmetic + one
//! load/store per cycle, from *different* threads), 4-wide FMA QPX →
//! 12.8 GFLOP/s per core, 204.8 GFLOP/s per node.
//!
//! The model captures the two effects the paper's Figure 1 study
//! turns on:
//!
//! * **SMT stall hiding** — a single thread per core cannot dual-issue,
//!   so committed-instruction throughput rises steeply from 1 to 4
//!   threads/core ("using more threads per core helps to hide the time
//!   gaps (e.g., stall cycles)").
//! * **Intra-rank thread-scaling overhead** — OpenMP synchronization
//!   and cache-partition pressure grow with threads per rank, which is
//!   why 2 ranks × 32 threads beats 1 rank × 64 threads at equal
//!   hardware utilization.

use pdnn_util::cast;

/// Core clock (Hz).
pub const CLOCK_HZ: f64 = 1.6e9;
/// Cores per node.
pub const CORES_PER_NODE: usize = 16;
/// Hardware threads per core.
pub const THREADS_PER_CORE: usize = 4;
/// Peak FLOPs per core per cycle (4-wide FMA).
pub const FLOPS_PER_CORE_PER_CYCLE: f64 = 8.0;
/// Peak node throughput in FLOP/s (204.8 GF).
// pdnn-lint: allow(l6-lossy-cast): const expression (checked helpers are not const fn); 16 is exact
pub const NODE_PEAK_FLOPS: f64 = CLOCK_HZ * FLOPS_PER_CORE_PER_CYCLE * CORES_PER_NODE as f64;

/// Fraction of peak a tuned SGEMM reaches with perfect threading
/// (everything that is not the GEMM inner loop: packing, edge tiles,
/// activation work, and the paper's "last 5%" effects).
pub const SGEMM_BASE_EFFICIENCY: f64 = 0.62;

/// A `ranks-per-node x threads-per-rank` execution configuration
/// (the paper's `R-rpn-t` notation, e.g. 2048-2-32).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeConfig {
    /// MPI ranks placed on each node.
    pub ranks_per_node: usize,
    /// OpenMP (rayon) threads per rank.
    pub threads_per_rank: usize,
}

impl NodeConfig {
    /// Validate against the hardware limits (≤ 64 threads/node).
    pub fn validated(self) -> NodeConfig {
        assert!(self.ranks_per_node >= 1, "ranks_per_node must be >= 1");
        assert!(self.threads_per_rank >= 1, "threads_per_rank must be >= 1");
        let total = self.ranks_per_node * self.threads_per_rank;
        assert!(
            total <= CORES_PER_NODE * THREADS_PER_CORE,
            "{} threads exceed the node's {} hardware threads",
            total,
            CORES_PER_NODE * THREADS_PER_CORE
        );
        self
    }

    /// Total software threads on the node.
    pub fn threads_per_node(&self) -> usize {
        self.ranks_per_node * self.threads_per_rank
    }

    /// Hardware threads per core actually occupied (may be
    /// fractional when fewer than 16 threads run).
    pub fn threads_per_core(&self) -> f64 {
        cast::exact_f64_usize(self.threads_per_node()) / cast::exact_f64_usize(CORES_PER_NODE)
    }
}

/// Relative instruction throughput of a core running `t` hardware
/// threads (t in [1, 4]), normalized to 1.0 at full SMT.
///
/// Shape: a single in-order thread leaves the second issue port idle
/// and exposes full dependency latency; two threads enable dual issue;
/// four threads hide most remaining stalls. Calibrated to the
/// qualitative Figure 1(a) scaling (16→32→64 threads/node keeps
/// improving, with diminishing returns).
pub fn smt_throughput(threads_per_core: f64) -> f64 {
    let t = threads_per_core.clamp(0.0, cast::exact_f64_usize(THREADS_PER_CORE));
    // Piecewise-linear through (1, 0.52), (2, 0.80), (3, 0.93), (4, 1.0).
    const POINTS: [(f64, f64); 5] = [
        (0.0, 0.0),
        (1.0, 0.52),
        (2.0, 0.80),
        (3.0, 0.93),
        (4.0, 1.0),
    ];
    for w in POINTS.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if t <= x1 {
            return y0 + (y1 - y0) * (t - x0) / (x1 - x0);
        }
    }
    1.0
}

/// Intra-rank thread-scaling efficiency: OpenMP/fork-join overheads
/// and shared-cache pressure as one rank spans more cores.
///
/// Calibrated so that, at 64 threads/node, the per-node compute
/// ordering is `2 ranks x 32 ≳ 4 ranks x 16 > 1 rank x 64` once
/// rank-level overheads (below) are included — the Figure 1(a)
/// ordering.
pub fn thread_scaling(threads_per_rank: usize) -> f64 {
    // ~4.5% loss per doubling beyond 8 threads.
    let t = cast::exact_f64_usize(threads_per_rank.max(1));
    let doublings = (t / 8.0).log2().max(0.0);
    (1.0 - 0.045 * doublings).max(0.5)
}

/// Per-node overhead of hosting several MPI ranks (duplicated
/// packing buffers, rank-level synchronization, network-interface
/// sharing).
pub fn rank_packing_overhead(ranks_per_node: usize) -> f64 {
    match ranks_per_node {
        0 | 1 => 1.0,
        2 => 0.995,
        4 => 0.98,
        8 => 0.96,
        n => (1.0 - 0.01 * cast::exact_f64_usize(n).log2()).max(0.9),
    }
}

/// Effective SGEMM-bound FLOP/s of one node under `config`.
pub fn node_effective_flops(config: NodeConfig) -> f64 {
    let config = config.validated();
    NODE_PEAK_FLOPS
        * SGEMM_BASE_EFFICIENCY
        * smt_throughput(config.threads_per_core())
        * thread_scaling(config.threads_per_rank)
        * rank_packing_overhead(config.ranks_per_node)
}

/// Effective FLOP/s available to a single rank.
pub fn rank_effective_flops(config: NodeConfig) -> f64 {
    node_effective_flops(config) / cast::exact_f64_usize(config.ranks_per_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_paper() {
        assert!((NODE_PEAK_FLOPS - 204.8e9).abs() < 1.0);
    }

    #[test]
    fn smt_is_monotone_and_normalized() {
        assert!(smt_throughput(1.0) < smt_throughput(2.0));
        assert!(smt_throughput(2.0) < smt_throughput(4.0));
        assert!((smt_throughput(4.0) - 1.0).abs() < 1e-12);
        // Paper: a lone thread is single-issue — well under half of
        // dual-issue throughput is unrealistic, above ~0.6 too.
        let s1 = smt_throughput(1.0);
        assert!(s1 > 0.4 && s1 < 0.6, "smt(1) = {s1}");
    }

    #[test]
    fn more_threads_per_node_is_faster() {
        // Figure 1(a): 1024-1-16 < 1024-1-32 < 1024-1-64 in speed.
        let f16 = node_effective_flops(NodeConfig {
            ranks_per_node: 1,
            threads_per_rank: 16,
        });
        let f32_ = node_effective_flops(NodeConfig {
            ranks_per_node: 1,
            threads_per_rank: 32,
        });
        let f64_ = node_effective_flops(NodeConfig {
            ranks_per_node: 1,
            threads_per_rank: 64,
        });
        assert!(f16 < f32_ && f32_ < f64_, "{f16} {f32_} {f64_}");
    }

    #[test]
    fn sixty_four_thread_configs_order_correctly() {
        // Among full-SMT configs, per-node compute: 2x32 and 4x16
        // beat 1x64 (thread-scaling overhead dominates), and are
        // within a few percent of each other.
        let c1 = node_effective_flops(NodeConfig {
            ranks_per_node: 1,
            threads_per_rank: 64,
        });
        let c2 = node_effective_flops(NodeConfig {
            ranks_per_node: 2,
            threads_per_rank: 32,
        });
        let c4 = node_effective_flops(NodeConfig {
            ranks_per_node: 4,
            threads_per_rank: 16,
        });
        assert!(c2 > c1, "2x32 {c2} should beat 1x64 {c1}");
        assert!(c4 > c1, "4x16 {c4} should beat 1x64 {c1}");
        assert!((c2 - c4).abs() / c2 < 0.06, "2x32 {c2} vs 4x16 {c4}");
    }

    #[test]
    fn effective_rate_is_well_below_peak() {
        let f = node_effective_flops(NodeConfig {
            ranks_per_node: 2,
            threads_per_rank: 32,
        });
        assert!(f < NODE_PEAK_FLOPS * 0.75);
        assert!(f > NODE_PEAK_FLOPS * 0.35);
    }

    #[test]
    fn rank_rate_divides_node_rate() {
        let cfg = NodeConfig {
            ranks_per_node: 4,
            threads_per_rank: 16,
        };
        let node = node_effective_flops(cfg);
        let rank = rank_effective_flops(cfg);
        assert!((node / rank - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceed the node")]
    fn oversubscription_rejected() {
        NodeConfig {
            ranks_per_node: 4,
            threads_per_rank: 32,
        }
        .validated();
    }

    #[test]
    fn thread_scaling_decays_gently() {
        assert_eq!(thread_scaling(1), 1.0);
        assert_eq!(thread_scaling(8), 1.0);
        assert!(thread_scaling(16) < 1.0);
        assert!(thread_scaling(64) < thread_scaling(32));
        assert!(thread_scaling(64) > 0.8);
    }
}
