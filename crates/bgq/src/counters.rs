//! Hardware performance-counter model (cycle categories).
//!
//! The paper's Figures 2 and 3 break each function's cycles into the
//! A2 core's counter categories: *Committed Instructions* (productive
//! work), *IU_Empty* (instruction unit empty — icache/ierat misses),
//! and *AXU/FXU dependency stalls* (floating-point / fixed-point
//! pipeline dependency interlocks). In-order single-issue cores make
//! these fractions a strong function of (a) how many hardware threads
//! share the core and (b) the character of the code (dense FMA kernel
//! vs pointer-chasing coordination vs waiting in MPI).

use crate::node::{smt_throughput, NodeConfig};
use pdnn_obs::SpanKind;

/// What kind of work a phase does — determines its stall profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Dense GEMM-bound compute (gradient, curvature products, loss
    /// evaluation).
    DenseCompute,
    /// Irregular / memory-bound work (data loading, packing,
    /// (de)serialization).
    MemoryBound,
    /// Blocked in MPI (the core spins in the messaging library).
    CommWait,
    /// Scalar coordination logic (master bookkeeping, CG vector ops).
    Scalar,
}

/// Cycle counts per counter category; `total()` is their sum.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CycleBreakdown {
    /// Productive committed instructions.
    pub committed: f64,
    /// Instruction-unit-empty cycles (icache / ierat misses).
    pub iu_empty: f64,
    /// Floating-point (auxiliary execution unit) dependency stalls.
    pub axu_dep_stalls: f64,
    /// Fixed-point unit dependency stalls.
    pub fxu_dep_stalls: f64,
    /// Everything else (mostly idle issue slots / arbitration).
    pub other: f64,
}

impl CycleBreakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.committed + self.iu_empty + self.axu_dep_stalls + self.fxu_dep_stalls + self.other
    }

    /// Add another breakdown.
    pub fn merge(&mut self, o: &CycleBreakdown) {
        self.committed += o.committed;
        self.iu_empty += o.iu_empty;
        self.axu_dep_stalls += o.axu_dep_stalls;
        self.fxu_dep_stalls += o.fxu_dep_stalls;
        self.other += o.other;
    }
}

impl From<SpanKind> for PhaseKind {
    /// Map a telemetry span kind onto its A2 stall profile. All
    /// communication kinds (point-to-point, collective, explicit
    /// waits) land in [`PhaseKind::CommWait`]: the core spins in the
    /// messaging library either way.
    fn from(kind: SpanKind) -> Self {
        match kind {
            SpanKind::DenseCompute => PhaseKind::DenseCompute,
            SpanKind::MemoryBound | SpanKind::Io => PhaseKind::MemoryBound,
            SpanKind::Scalar => PhaseKind::Scalar,
            SpanKind::CommP2p | SpanKind::CommCollective | SpanKind::Wait => PhaseKind::CommWait,
        }
    }
}

/// Base fractions `[committed, iu_empty, axu, fxu, other]` for a phase
/// kind at full SMT (4 threads/core).
fn base_fractions(kind: PhaseKind) -> [f64; 5] {
    match kind {
        PhaseKind::DenseCompute => [0.62, 0.06, 0.16, 0.08, 0.08],
        PhaseKind::MemoryBound => [0.38, 0.12, 0.10, 0.22, 0.18],
        PhaseKind::CommWait => [0.15, 0.20, 0.02, 0.28, 0.35],
        PhaseKind::Scalar => [0.45, 0.15, 0.05, 0.20, 0.15],
    }
}

/// Split `total_cycles` of a phase into counter categories for a node
/// configuration.
///
/// Fewer threads per core expose more dependency stalls: the committed
/// fraction is scaled by the SMT throughput curve and the shortfall is
/// redistributed to the stall categories proportionally.
pub fn classify_cycles(kind: PhaseKind, config: NodeConfig, total_cycles: f64) -> CycleBreakdown {
    assert!(total_cycles >= 0.0, "negative cycle count");
    let base = base_fractions(kind);
    let smt = smt_throughput(config.threads_per_core());
    // Committed share shrinks with poor SMT occupancy.
    let committed = base[0] * smt;
    let shortfall = base[0] - committed;
    // Redistribute the shortfall over the stall buckets by their base
    // weights.
    let stall_total: f64 = base[1] + base[2] + base[3] + base[4];
    let grow = |b: f64| b + shortfall * b / stall_total;
    CycleBreakdown {
        committed: committed * total_cycles,
        iu_empty: grow(base[1]) * total_cycles,
        axu_dep_stalls: grow(base[2]) * total_cycles,
        fxu_dep_stalls: grow(base[3]) * total_cycles,
        other: grow(base[4]) * total_cycles,
    }
}

/// [`classify_cycles`] keyed by a telemetry [`SpanKind`].
///
/// The bridge from `pdnn_obs` spans to the Figure 2–3 counter
/// categories: a span's kind picks the stall profile, the machine
/// model supplies the cycles.
pub fn classify_span(kind: SpanKind, config: NodeConfig, total_cycles: f64) -> CycleBreakdown {
    classify_cycles(PhaseKind::from(kind), config, total_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: NodeConfig = NodeConfig {
        ranks_per_node: 4,
        threads_per_rank: 16,
    };
    const SPARSE: NodeConfig = NodeConfig {
        ranks_per_node: 1,
        threads_per_rank: 16,
    };

    #[test]
    fn categories_sum_to_total() {
        for kind in [
            PhaseKind::DenseCompute,
            PhaseKind::MemoryBound,
            PhaseKind::CommWait,
            PhaseKind::Scalar,
        ] {
            let b = classify_cycles(kind, FULL, 1e9);
            assert!((b.total() - 1e9).abs() < 1.0, "{kind:?}: {}", b.total());
        }
    }

    #[test]
    fn dense_compute_is_mostly_committed_at_full_smt() {
        let b = classify_cycles(PhaseKind::DenseCompute, FULL, 1.0);
        assert!(b.committed > 0.55, "committed {}", b.committed);
        assert!(b.committed > b.axu_dep_stalls);
    }

    #[test]
    fn fewer_threads_expose_more_stalls() {
        let full = classify_cycles(PhaseKind::DenseCompute, FULL, 1.0);
        let sparse = classify_cycles(PhaseKind::DenseCompute, SPARSE, 1.0);
        assert!(sparse.committed < full.committed);
        assert!(sparse.axu_dep_stalls > full.axu_dep_stalls);
    }

    #[test]
    fn comm_wait_commits_little() {
        let b = classify_cycles(PhaseKind::CommWait, FULL, 1.0);
        assert!(b.committed < 0.2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = classify_cycles(PhaseKind::Scalar, FULL, 100.0);
        let b = classify_cycles(PhaseKind::DenseCompute, FULL, 200.0);
        let total_before = a.total();
        a.merge(&b);
        assert!((a.total() - total_before - 200.0).abs() < 1e-9);
    }

    #[test]
    fn span_kinds_map_onto_phase_profiles() {
        assert_eq!(
            PhaseKind::from(SpanKind::DenseCompute),
            PhaseKind::DenseCompute
        );
        assert_eq!(
            PhaseKind::from(SpanKind::MemoryBound),
            PhaseKind::MemoryBound
        );
        assert_eq!(PhaseKind::from(SpanKind::Io), PhaseKind::MemoryBound);
        assert_eq!(PhaseKind::from(SpanKind::Scalar), PhaseKind::Scalar);
        for comm in [SpanKind::CommP2p, SpanKind::CommCollective, SpanKind::Wait] {
            assert_eq!(PhaseKind::from(comm), PhaseKind::CommWait);
        }
        let via_span = classify_span(SpanKind::CommCollective, FULL, 1e6);
        let via_kind = classify_cycles(PhaseKind::CommWait, FULL, 1e6);
        assert_eq!(via_span, via_kind);
    }

    #[test]
    fn base_fractions_are_distributions() {
        for kind in [
            PhaseKind::DenseCompute,
            PhaseKind::MemoryBound,
            PhaseKind::CommWait,
            PhaseKind::Scalar,
        ] {
            let f = base_fractions(kind);
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{kind:?} sums to {sum}");
            assert!(f.iter().all(|&x| x >= 0.0));
        }
    }
}
