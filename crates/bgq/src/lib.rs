//! # pdnn-bgq — a Blue Gene/Q machine model
//!
//! The hardware substitute (DESIGN.md): no BG/Q exists to run on, so
//! the paper's *timing* claims are reproduced over an analytic model
//! of the machine, while the algorithm itself runs functionally on
//! `pdnn-mpisim`.
//!
//! * [`node`] — the A2 compute chip: 16 in-order cores × 4 SMT
//!   threads at 1.6 GHz, 204.8 GF/node peak, with the SMT stall-hiding
//!   and thread-scaling curves that drive the paper's Figure 1
//!   configuration study.
//! * [`torus`] — the 5-D torus: partition shapes, hop distances,
//!   diameters, link bandwidth.
//! * [`comm_model`] — cost models for MPI-on-torus, a commodity
//!   Ethernet cluster (with collision/contention degradation), and
//!   the legacy socket transport the application abandoned
//!   (Section V.B).
//! * [`counters`] — the A2 performance-counter categories
//!   (Committed / IU_Empty / AXU / FXU dependency stalls) used by
//!   Figures 2–3, as a function of phase kind and SMT occupancy.

pub mod comm_model;
pub mod counters;
pub mod node;
pub mod routing;
pub mod torus;

pub use comm_model::{ethernet_1g, socket_1g, Network};
pub use counters::{classify_cycles, classify_span, CycleBreakdown, PhaseKind};
pub use node::{node_effective_flops, rank_effective_flops, NodeConfig, CLOCK_HZ, NODE_PEAK_FLOPS};
pub use routing::{all_to_one, neighbor_shift, Link};
pub use torus::Torus;
