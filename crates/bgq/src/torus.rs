//! The 5-D torus interconnect.
//!
//! Paper Section III: "The compute nodes are connected in a 5-D torus
//! network with a total network bandwidth of 44 GB/s per node." Each
//! node has 10 bidirectional links (2 per torus dimension) at 2 GB/s
//! each direction, plus the I/O link. Standard partition shapes are
//! used for the rack sizes the paper runs (a midplane is
//! 4×4×4×4×2 = 512 nodes; a rack is two midplanes; two racks are
//! 8192 MPI ranks at 4 ranks/node).

/// Per-link bandwidth, bytes/second each direction.
pub const LINK_BANDWIDTH: f64 = 2.0e9;
/// Per-hop router latency, seconds.
pub const HOP_LATENCY: f64 = 40e-9;
/// Torus links per node (5 dimensions × 2 directions).
pub const LINKS_PER_NODE: usize = 10;

/// A 5-dimensional torus shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    /// Extent of each dimension (A, B, C, D, E).
    pub dims: [usize; 5],
}

impl Torus {
    /// Standard BG/Q partition shapes for the node counts the paper
    /// uses; other counts get a balanced factorization.
    pub fn for_nodes(nodes: usize) -> Torus {
        let dims = match nodes {
            32 => [2, 2, 2, 2, 2],
            64 => [4, 2, 2, 2, 2],
            128 => [4, 4, 2, 2, 2],
            256 => [4, 4, 4, 2, 2],
            512 => [4, 4, 4, 4, 2],  // midplane
            1024 => [8, 4, 4, 4, 2], // one rack
            2048 => [8, 8, 4, 4, 2], // two racks
            4096 => [8, 8, 8, 4, 2],
            8192 => [8, 8, 8, 8, 2],
            n => {
                assert!(n >= 1, "torus needs at least one node");
                let mut dims = [1usize; 5];
                let mut rest = n;
                let mut i = 0;
                // Greedy: peel small prime factors round-robin.
                while rest > 1 {
                    let f = smallest_factor(rest);
                    dims[i % 5] *= f;
                    rest /= f;
                    i += 1;
                }
                dims.sort_unstable_by(|a, b| b.cmp(a));
                dims
            }
        };
        let t = Torus { dims };
        assert_eq!(t.nodes(), nodes, "torus shape mismatch");
        t
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of node index `id` (row-major over dims).
    pub fn coords(&self, id: usize) -> [usize; 5] {
        assert!(id < self.nodes(), "node {id} out of range");
        let mut c = [0usize; 5];
        let mut rest = id;
        for d in (0..5).rev() {
            c[d] = rest % self.dims[d];
            rest /= self.dims[d];
        }
        c
    }

    /// Shortest hop count between two nodes (per-dimension wraparound).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..5)
            .map(|d| {
                let ext = self.dims[d];
                let diff = ca[d].abs_diff(cb[d]);
                diff.min(ext - diff)
            })
            .sum()
    }

    /// Network diameter (max shortest-path hops).
    pub fn diameter(&self) -> usize {
        self.dims.iter().map(|&e| e / 2).sum()
    }

    /// Mean hop distance from node 0 (by symmetry, from any node).
    pub fn mean_hops(&self) -> f64 {
        let n = self.nodes();
        if n <= 1 {
            return 0.0;
        }
        let total: usize = (1..n).map(|b| self.hops(0, b)).sum();
        pdnn_util::cast::exact_f64_usize(total) / pdnn_util::cast::exact_f64_usize(n - 1)
    }

    /// Aggregate torus bandwidth per node, bytes/s (the paper's
    /// "44 GB/s" counts the I/O link too; the compute-torus share is
    /// 10 × 2 GB/s × 2 directions = 40 GB/s; we expose the
    /// unidirectional injection bound).
    pub fn injection_bandwidth() -> f64 {
        // pdnn-lint: allow(l6-lossy-cast): LINKS_PER_NODE is the constant 10, exactly representable
        LINKS_PER_NODE as f64 * LINK_BANDWIDTH
    }
}

fn smallest_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut f = 3;
    while f * f <= n {
        if n.is_multiple_of(f) {
            return f;
        }
        f += 2;
    }
    n
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn standard_shapes_have_right_sizes() {
        for nodes in [32usize, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
            assert_eq!(Torus::for_nodes(nodes).nodes(), nodes);
        }
    }

    #[test]
    fn midplane_is_the_canonical_shape() {
        assert_eq!(Torus::for_nodes(512).dims, [4, 4, 4, 4, 2]);
    }

    #[test]
    fn nonstandard_counts_factorize() {
        let t = Torus::for_nodes(96);
        assert_eq!(t.nodes(), 96);
        let t = Torus::for_nodes(7);
        assert_eq!(t.nodes(), 7);
        let t = Torus::for_nodes(1);
        assert_eq!(t.nodes(), 1);
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::for_nodes(1024);
        for id in [0usize, 1, 17, 511, 1023] {
            let c = t.coords(id);
            // Rebuild the index.
            let mut back = 0usize;
            for d in 0..5 {
                back = back * t.dims[d] + c[d];
            }
            assert_eq!(back, id);
        }
    }

    #[test]
    fn hops_are_symmetric_and_zero_on_self() {
        let t = Torus::for_nodes(512);
        assert_eq!(t.hops(5, 5), 0);
        for (a, b) in [(0, 100), (3, 410), (17, 511)] {
            assert_eq!(t.hops(a, b), t.hops(b, a));
            assert!(t.hops(a, b) <= t.diameter());
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        // 1-D view: in a ring of 8, distance 0 -> 7 is 1, not 7.
        let t = Torus {
            dims: [8, 1, 1, 1, 1],
        };
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn diameter_grows_with_partition_size() {
        let d1 = Torus::for_nodes(512).diameter();
        let d2 = Torus::for_nodes(1024).diameter();
        let d4 = Torus::for_nodes(4096).diameter();
        assert!(d1 <= d2 && d2 <= d4);
        // 8192 nodes: 4+4+4+4+1 = 17 hops max.
        assert_eq!(Torus::for_nodes(8192).diameter(), 17);
    }

    #[test]
    fn mean_hops_below_diameter() {
        let t = Torus::for_nodes(512);
        let m = t.mean_hops();
        assert!(m > 1.0 && m < t.diameter() as f64);
    }

    #[test]
    fn injection_bandwidth_is_20_gbps_unidirectional() {
        // 10 links × 2 GB/s per direction; the paper's 44 GB/s counts
        // both directions plus the I/O link.
        assert!((Torus::injection_bandwidth() - 20.0e9).abs() < 1.0);
    }
}
