//! Communication cost models.
//!
//! Three network flavors, matching the systems the paper contrasts:
//!
//! * [`Network::BgqTorus`] — MPI on the 5-D torus with hardware
//!   collective assist (the paper: "The Blue Gene/Q MPI communication
//!   library is heavily optimized"); broadcasts/reductions are
//!   pipelined over the torus, so cost is `α + diameter·hop + m/B`
//!   rather than `log₂(P)` full message times.
//! * [`Network::EthernetCluster`] — a commodity GbE/10GbE cluster with
//!   software tree collectives and a congestion ("collision") term
//!   that grows with the number of processes sharing switches — the
//!   paper's Section VII: "a Linux cluster … will suffer from several
//!   communication bottlenecks (collisions)".
//! * [`Network::SocketBaseline`] — the application's original
//!   socket/file transport (Section V.B): the master contacts workers
//!   one by one, so "collectives" serialize into `P − 1` p2p messages.

use crate::torus::{Torus, HOP_LATENCY, LINK_BANDWIDTH};
use pdnn_util::cast;

/// Network model flavor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Network {
    /// BG/Q 5-D torus with optimized MPI collectives.
    BgqTorus {
        /// Partition shape.
        torus: Torus,
    },
    /// Commodity cluster: per-message latency, link bandwidth,
    /// congestion factor per additional sender.
    EthernetCluster {
        /// Per-message software + switch latency (s).
        latency: f64,
        /// Point-to-point bandwidth (bytes/s).
        bandwidth: f64,
        /// Effective-bandwidth degradation per concurrent sender
        /// (models switch contention / collisions).
        contention: f64,
    },
    /// Socket transport: master loops over peers sequentially.
    SocketBaseline {
        /// Per-connection latency (s).
        latency: f64,
        /// Per-connection bandwidth (bytes/s).
        bandwidth: f64,
    },
}

/// MPI software overhead per operation on BG/Q (PAMI fast path).
pub const BGQ_MPI_LATENCY: f64 = 2.5e-6;
/// Fraction of a single link's bandwidth achieved by the pipelined
/// collective hardware.
pub const BGQ_COLLECTIVE_BW_FRACTION: f64 = 0.9;

/// Typical commodity-cluster parameters circa the paper (GbE).
pub fn ethernet_1g() -> Network {
    Network::EthernetCluster {
        latency: 50e-6,
        bandwidth: 125e6,
        contention: 0.02,
    }
}

/// Socket transport over the same GbE hardware.
pub fn socket_1g() -> Network {
    Network::SocketBaseline {
        latency: 80e-6,
        bandwidth: 110e6,
    }
}

impl Network {
    /// BG/Q partition of `nodes` nodes.
    pub fn bgq(nodes: usize) -> Network {
        Network::BgqTorus {
            torus: Torus::for_nodes(nodes),
        }
    }

    /// Time for one point-to-point message of `bytes` between typical
    /// (mean-distance) endpoints.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        match self {
            Network::BgqTorus { torus } => {
                BGQ_MPI_LATENCY
                    + torus.mean_hops() * HOP_LATENCY
                    + cast::exact_f64(bytes) / LINK_BANDWIDTH
            }
            Network::EthernetCluster {
                latency, bandwidth, ..
            } => latency + cast::exact_f64(bytes) / bandwidth,
            Network::SocketBaseline { latency, bandwidth } => {
                latency + cast::exact_f64(bytes) / bandwidth
            }
        }
    }

    /// Time for a broadcast of `bytes` from one root to `ranks` ranks.
    pub fn bcast_time(&self, bytes: u64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        match self {
            Network::BgqTorus { torus } => {
                // Pipelined over the torus: fill the diameter once,
                // then stream at collective bandwidth.
                BGQ_MPI_LATENCY
                    + cast::exact_f64_usize(torus.diameter()) * HOP_LATENCY
                    + cast::exact_f64(bytes) / (LINK_BANDWIDTH * BGQ_COLLECTIVE_BW_FRACTION)
            }
            Network::EthernetCluster {
                latency,
                bandwidth,
                contention,
            } => {
                // Binomial software tree: log2(P) rounds of the full
                // message, with congestion inflating transfer time.
                let rounds = cast::exact_f64_usize(ranks).log2().ceil();
                let eff_bw = bandwidth / (1.0 + contention * cast::exact_f64_usize(ranks));
                rounds * (latency + cast::exact_f64(bytes) / eff_bw)
            }
            Network::SocketBaseline { latency, bandwidth } => {
                // Sequential fan-out from the master.
                (cast::exact_f64_usize(ranks) - 1.0)
                    * (latency + cast::exact_f64(bytes) / bandwidth)
            }
        }
    }

    /// Time for a sum-reduction of `bytes` from `ranks` ranks to a
    /// root. Modeled with the same shapes as broadcast (reduction
    /// trees mirror broadcast trees; BG/Q has hardware combining).
    pub fn reduce_time(&self, bytes: u64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        match self {
            Network::BgqTorus { torus } => {
                // Hardware-combining pipelined reduction; slightly
                // slower than bcast (combine ALU on the way).
                BGQ_MPI_LATENCY
                    + cast::exact_f64_usize(torus.diameter()) * HOP_LATENCY
                    + 1.15 * cast::exact_f64(bytes) / (LINK_BANDWIDTH * BGQ_COLLECTIVE_BW_FRACTION)
            }
            Network::EthernetCluster { .. } => self.bcast_time(bytes, ranks) * 1.1,
            Network::SocketBaseline { latency, bandwidth } => {
                (cast::exact_f64_usize(ranks) - 1.0)
                    * (latency + cast::exact_f64(bytes) / bandwidth)
            }
        }
    }

    /// Allreduce ≈ reduce + broadcast on all three networks.
    pub fn allreduce_time(&self, bytes: u64, ranks: usize) -> f64 {
        self.reduce_time(bytes, ranks) + self.bcast_time(bytes, ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn bgq_collectives_are_nearly_size_independent_in_ranks() {
        // Pipelined torus collectives: going 1024 -> 8192 nodes should
        // cost only the extra diameter, a tiny additive term.
        let small = Network::bgq(1024).bcast_time(100 * MB, 1024);
        let big = Network::bgq(8192).bcast_time(100 * MB, 8192);
        assert!(big / small < 1.05, "{big} vs {small}");
    }

    #[test]
    fn ethernet_collectives_degrade_with_scale() {
        let net = ethernet_1g();
        let t96 = net.bcast_time(10 * MB, 96);
        let t1024 = net.bcast_time(10 * MB, 1024);
        assert!(t1024 > 3.0 * t96, "{t1024} vs {t96}");
    }

    #[test]
    fn socket_fanout_is_linear_in_ranks() {
        let net = socket_1g();
        let t8 = net.bcast_time(MB, 8);
        let t64 = net.bcast_time(MB, 64);
        let ratio = t64 / t8;
        assert!((ratio - 9.0).abs() < 0.5, "ratio {ratio}"); // (64-1)/(8-1)
    }

    #[test]
    fn bgq_beats_ethernet_beats_socket_at_scale() {
        let bytes = 40 * MB; // a 10M-parameter model
        let ranks = 1024;
        let bgq = Network::bgq(ranks).bcast_time(bytes, ranks);
        let eth = ethernet_1g().bcast_time(bytes, ranks);
        let sock = socket_1g().bcast_time(bytes, ranks);
        assert!(bgq < eth && eth < sock, "bgq={bgq} eth={eth} sock={sock}");
        // The gap is orders of magnitude — the paper's core claim for
        // why a specialized network is needed.
        assert!(sock / bgq > 100.0, "socket/bgq = {}", sock / bgq);
    }

    #[test]
    fn p2p_costs_scale_with_bytes() {
        let net = Network::bgq(512);
        let t1 = net.p2p_time(MB);
        let t10 = net.p2p_time(10 * MB);
        assert!(t10 > 5.0 * t1);
        assert!(net.p2p_time(0) > 0.0); // latency floor
    }

    #[test]
    fn single_rank_collectives_are_free() {
        assert_eq!(Network::bgq(1).bcast_time(MB, 1), 0.0);
        assert_eq!(ethernet_1g().reduce_time(MB, 1), 0.0);
    }

    #[test]
    fn allreduce_is_reduce_plus_bcast() {
        let net = Network::bgq(2048);
        let ar = net.allreduce_time(MB, 2048);
        let sum = net.reduce_time(MB, 2048) + net.bcast_time(MB, 2048);
        assert!((ar - sum).abs() < 1e-12);
    }
}
