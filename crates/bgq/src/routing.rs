//! Dimension-ordered routing and link-contention analysis.
//!
//! BG/Q routes packets dimension by dimension (A, then B, …, then E),
//! taking the shorter way around each ring. Enumerating the links a
//! message crosses lets us count how much traffic each physical link
//! carries under a communication pattern — which is how the
//! master/worker architecture's central weakness shows up in
//! hardware: under all-to-one traffic the links adjacent to the
//! master saturate while the rest of the torus idles. The paper's
//! Section VII contrast ("a Linux cluster … will suffer from several
//! communication bottlenecks (collisions)") is the same phenomenon on
//! a much weaker network.

use crate::torus::Torus;
use std::collections::BTreeMap;

/// A directed physical link: from a node, along a dimension, in a
/// direction.
///
/// Ordered (`Ord`) so traffic maps iterate in a stable node-major
/// order — route enumeration and the reports built on it must be
/// deterministic (pdnn-lint rule `l2-iteration-order`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// Source node id.
    pub from: usize,
    /// Torus dimension (0..5).
    pub dim: usize,
    /// `+1` or `-1` around the ring.
    pub positive: bool,
}

impl Torus {
    /// Node id from coordinates.
    pub fn node_at(&self, coords: [usize; 5]) -> usize {
        let mut id = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[d]);
            id = id * self.dims[d] + c;
        }
        id
    }

    /// The sequence of links a packet from `a` to `b` crosses under
    /// dimension-ordered shortest-way routing.
    pub fn route(&self, a: usize, b: usize) -> Vec<Link> {
        let mut pos = self.coords(a);
        let target = self.coords(b);
        let mut links = Vec::new();
        for d in 0..5 {
            let ext = self.dims[d];
            while pos[d] != target[d] {
                // Shorter way around the ring (ties go positive).
                let fwd = (target[d] + ext - pos[d]) % ext;
                let positive = fwd <= ext - fwd;
                let from = self.node_at(pos);
                pos[d] = if positive {
                    (pos[d] + 1) % ext
                } else {
                    (pos[d] + ext - 1) % ext
                };
                links.push(Link {
                    from,
                    dim: d,
                    positive,
                });
            }
        }
        links
    }

    /// Per-link traffic (in message units) of a communication pattern
    /// given as `(src, dst)` pairs; each pair contributes one unit to
    /// every link on its route.
    pub fn link_traffic(&self, pattern: &[(usize, usize)]) -> BTreeMap<Link, u64> {
        let mut traffic: BTreeMap<Link, u64> = BTreeMap::new();
        for &(src, dst) in pattern {
            for link in self.route(src, dst) {
                *traffic.entry(link).or_insert(0) += 1;
            }
        }
        traffic
    }

    /// Contention factor of a pattern: the busiest link's traffic
    /// divided by the mean over used links. 1.0 = perfectly spread.
    pub fn contention_factor(&self, pattern: &[(usize, usize)]) -> f64 {
        let traffic = self.link_traffic(pattern);
        let Some(max) = traffic.values().max().copied() else {
            return 1.0;
        };
        let mean = pdnn_util::cast::exact_f64(traffic.values().sum::<u64>())
            / pdnn_util::cast::exact_f64_usize(traffic.len());
        pdnn_util::cast::exact_f64(max) / mean
    }
}

/// All-to-one pattern (every node sends to `root`) — the master/worker
/// reduction hotspot.
pub fn all_to_one(torus: &Torus, root: usize) -> Vec<(usize, usize)> {
    (0..torus.nodes())
        .filter(|&n| n != root)
        .map(|n| (n, root))
        .collect()
}

/// Nearest-neighbor shift pattern (every node sends one hop along
/// dimension 0) — the contention-free contrast case.
pub fn neighbor_shift(torus: &Torus) -> Vec<(usize, usize)> {
    (0..torus.nodes())
        .map(|n| {
            let mut c = torus.coords(n);
            c[0] = (c[0] + 1) % torus.dims[0];
            (n, torus.node_at(c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_at_inverts_coords() {
        let t = Torus::for_nodes(512);
        for id in [0usize, 1, 100, 511] {
            assert_eq!(t.node_at(t.coords(id)), id);
        }
    }

    #[test]
    fn route_length_equals_hop_distance() {
        let t = Torus::for_nodes(512);
        for (a, b) in [(0usize, 0usize), (0, 1), (3, 400), (17, 511), (255, 256)] {
            assert_eq!(t.route(a, b).len(), t.hops(a, b), "{a}->{b}");
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let t = Torus::for_nodes(512);
        let route = t.route(0, 511);
        let dims: Vec<usize> = route.iter().map(|l| l.dim).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted, "dimensions visited out of order");
    }

    #[test]
    fn route_takes_the_short_way_around() {
        // Ring of 8 in dim 0: 0 -> 7 goes backwards (1 hop).
        let t = Torus {
            dims: [8, 1, 1, 1, 1],
        };
        let route = t.route(0, 7);
        assert_eq!(route.len(), 1);
        assert!(!route[0].positive);
    }

    #[test]
    fn all_to_one_concentrates_on_the_roots_links() {
        let t = Torus::for_nodes(512);
        let pattern = all_to_one(&t, 0);
        let traffic = t.link_traffic(&pattern);
        // The links delivering into the root carry hundreds of units
        // each (512 sources over ≤ 10 incoming links).
        let into_root: u64 = traffic
            .iter()
            .filter(|(link, _)| {
                // A link whose traversal lands on node 0.
                let mut c = t.coords(link.from);
                let ext = t.dims[link.dim];
                c[link.dim] = if link.positive {
                    (c[link.dim] + 1) % ext
                } else {
                    (c[link.dim] + ext - 1) % ext
                };
                t.node_at(c) == 0
            })
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(into_root, 511, "every message ends at the root");
        let contention = t.contention_factor(&pattern);
        assert!(contention > 10.0, "all-to-one contention only {contention}");
    }

    #[test]
    fn neighbor_shift_is_contention_free() {
        let t = Torus::for_nodes(512);
        let pattern = neighbor_shift(&t);
        let factor = t.contention_factor(&pattern);
        assert!((factor - 1.0).abs() < 1e-9, "shift contention {factor}");
        // And every link used carries exactly one unit.
        let traffic = t.link_traffic(&pattern);
        assert!(traffic.values().all(|&v| v == 1));
    }

    #[test]
    fn all_to_one_scales_worse_than_neighbor_traffic() {
        // The hotspot grows linearly with node count; the shift stays
        // at one unit per link — the quantitative version of "a
        // master/worker design needs a reduction tree, not raw p2p".
        let small = Torus::for_nodes(64);
        let large = Torus::for_nodes(512);
        let hot_small = *small
            .link_traffic(&all_to_one(&small, 0))
            .values()
            .max()
            .unwrap();
        let hot_large = *large
            .link_traffic(&all_to_one(&large, 0))
            .values()
            .max()
            .unwrap();
        assert!(hot_large > hot_small * 4, "{hot_small} -> {hot_large}");
    }

    #[test]
    fn empty_pattern_is_uncontended() {
        let t = Torus::for_nodes(32);
        assert_eq!(t.contention_factor(&[]), 1.0);
    }
}
