//! Machine-readable JSON report, written under `results/`.
//!
//! Hand-rolled serialization (the linter is dependency-free); the
//! shape is stable so CI tooling can diff reports across commits:
//!
//! ```json
//! {
//!   "tool": "pdnn-lint",
//!   "files_scanned": 93,
//!   "rules": [{"id": "...", "summary": "..."}],
//!   "violations": [{"rule": "...", "path": "...", "line": 1, "col": 2, "message": "..."}],
//!   "suppressed": [{"rule": "...", "path": "...", "line": 1, "reason": "..."}],
//!   "meta": [{"path": "...", "line": 1, "message": "..."}]
//! }
//! ```

use crate::{rules, FileOutcome, Finding};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escape a string for embedding in a JSON double-quoted literal.
/// Shared with `pdnn-protocheck`, whose report writer reuses this
/// crate's hand-rolled serialization conventions.
pub fn json_escape(s: &str) -> String {
    esc(s)
}

/// Append a compact JSON array of finding objects
/// (`{"rule":…,"path":…,"line":…,"col":…,"message":…}`). The shared
/// scaffolding for every checker report in the workspace
/// (`pdnn-protocheck`, `pdnn-kernelcheck`, `pdnn-protomc`).
pub fn push_findings(out: &mut String, findings: &[Finding]) {
    out.push('[');
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.message),
        );
    }
    out.push(']');
}

/// Append a compact JSON array of strings.
pub fn push_str_list(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", esc(s));
    }
    out.push(']');
}

/// Append a compact JSON array of suppression objects
/// (`{"rule":…,"path":…,"line":…,"reason":…}`) from the
/// `(finding, reason)` pairs the checkers collect.
pub fn push_suppressions(out: &mut String, suppressed: &[(Finding, String)]) {
    out.push('[');
    for (i, (f, reason)) in suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"reason\":\"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(reason),
        );
    }
    out.push(']');
}

/// Write a rendered report under `<root>/results/<file_name>`,
/// creating the directory if needed — the one place the checkers'
/// acceptance artifacts land.
pub fn write_results(root: &Path, file_name: &str, contents: &str) -> io::Result<()> {
    let dir = root.join("results");
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(file_name), contents)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as a JSON string (trailing newline
/// included). Entries preserve the deterministic path-then-line order
/// the engine produced.
pub fn render(outcomes: &[FileOutcome], files_scanned: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"tool\": \"pdnn-lint\",\n");
    let _ = writeln!(s, "  \"files_scanned\": {files_scanned},");

    s.push_str("  \"rules\": [\n");
    for (i, r) in rules::RULES.iter().enumerate() {
        let comma = if i + 1 < rules::RULES.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"id\": \"{}\", \"summary\": \"{}\"}}{comma}",
            esc(r.id),
            esc(r.summary)
        );
    }
    s.push_str("  ],\n");

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| &o.findings)
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                esc(f.rule),
                esc(&f.path),
                f.line,
                f.col,
                esc(&f.message)
            )
        })
        .collect();
    let _ = writeln!(s, "  \"violations\": [\n{}\n  ],", violations.join(",\n"));
    if violations.is_empty() {
        // Normalize the empty case ("[\n\n]" reads poorly).
        s = s.replace("\"violations\": [\n\n  ]", "\"violations\": []");
    }

    let suppressed: Vec<String> = outcomes
        .iter()
        .flat_map(|o| &o.suppressed)
        .map(|(f, reason)| {
            format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                esc(f.rule),
                esc(&f.path),
                f.line,
                esc(reason)
            )
        })
        .collect();
    let _ = writeln!(s, "  \"suppressed\": [\n{}\n  ],", suppressed.join(",\n"));
    if suppressed.is_empty() {
        s = s.replace("\"suppressed\": [\n\n  ]", "\"suppressed\": []");
    }

    let meta: Vec<String> = outcomes
        .iter()
        .flat_map(|o| &o.meta)
        .map(|m| {
            format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                esc(&m.path),
                m.line,
                esc(&m.message)
            )
        })
        .collect();
    let _ = writeln!(s, "  \"meta\": [\n{}\n  ]", meta.join(",\n"));
    if meta.is_empty() {
        s = s.replace("\"meta\": [\n\n  ]", "\"meta\": []");
    }

    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_text;

    #[test]
    fn clean_report_has_empty_arrays() {
        let r = render(&[], 42);
        assert!(r.contains("\"files_scanned\": 42"));
        assert!(r.contains("\"violations\": []"));
        assert!(r.contains("\"suppressed\": []"));
        assert!(r.contains("\"meta\": []"));
    }

    #[test]
    fn violations_and_escapes_round_trip() {
        let o = lint_text(
            "crates/util/src/x.rs",
            "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        );
        let r = render(&[o], 1);
        assert!(r.contains("\"rule\": \"l3-no-unwrap\""), "{r}");
        assert!(r.contains("\"line\": 2"), "{r}");
        assert!(r.contains("`.unwrap()`"), "{r}");
    }
}
