//! Lexical source model: comment/literal masking, suppression
//! comments, test-region detection, and function extraction.
//!
//! `pdnn-lint` deliberately avoids a full parser (the build
//! environment cannot fetch `syn`); instead every rule runs over a
//! *masked* view of the file in which comment bodies and string/char
//! literal contents are replaced by spaces. Token-level pattern
//! matching on that view cannot be fooled by `"panic!"` inside a
//! string or `HashMap` inside a doc comment, which is all the
//! project-specific rules need.

/// One comment (line or block) with the line it starts on (0-based).
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: usize,
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
    /// True when the comment is the only thing on its line (after
    /// leading whitespace), i.e. it annotates the *next* code line.
    pub standalone: bool,
}

/// A `fn` item found in the masked source.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    pub is_pub: bool,
    /// Byte range of the body (between `{` and `}`) in the masked
    /// text; `None` for bodyless trait-method signatures.
    pub body: Option<std::ops::Range<usize>>,
}

/// Lexical view of one source file.
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Raw text (for diagnostic snippets).
    pub raw: String,
    /// Same length as `raw`; comments and literal interiors blanked.
    pub masked: String,
    pub comments: Vec<Comment>,
    /// Per (0-based) line: inside a `#[cfg(test)]` region or a
    /// `#[test]` function.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    pub fn parse(path: &str, raw: &str) -> SourceFile {
        let (masked, comments) = mask(raw);
        let line_count = raw.lines().count();
        let mut file = SourceFile {
            path: path.to_string(),
            raw: raw.to_string(),
            masked,
            comments,
            test_lines: vec![false; line_count],
        };
        file.mark_test_regions();
        file
    }

    /// 0-based line number of byte `offset` in the masked text.
    pub fn line_of(&self, offset: usize) -> usize {
        self.masked[..offset]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
    }

    /// 1-based column of byte `offset`.
    pub fn col_of(&self, offset: usize) -> usize {
        let start = self.masked[..offset].rfind('\n').map_or(0, |p| p + 1);
        offset - start + 1
    }

    /// The raw text of a (0-based) line, for diagnostics.
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw.lines().nth(line).unwrap_or("")
    }

    /// Iterate over masked lines.
    pub fn masked_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.masked.lines().enumerate()
    }

    fn mark_test_regions(&mut self) {
        let lines: Vec<&str> = self.masked.lines().collect();
        let mut line_starts = Vec::with_capacity(lines.len());
        let mut off = 0;
        for l in self.masked.lines() {
            line_starts.push(off);
            off += l.len() + 1;
        }
        for (i, l) in lines.iter().enumerate() {
            let t = l.trim();
            let is_cfg_test = t.starts_with("#[cfg(") && t.contains("test");
            let is_test_attr = t == "#[test]" || t.starts_with("#[should_panic");
            if !is_cfg_test && !is_test_attr {
                continue;
            }
            // The region is the brace block of the item that follows
            // the attribute. Scan forward from the end of this line
            // for the first `{` and mark until its matching `}`.
            let from = line_starts[i] + l.len();
            if let Some(open) = self.masked[from..].find('{').map(|p| from + p) {
                if let Some(close) = match_brace(&self.masked, open) {
                    let first = self.line_of(open);
                    let last = self.line_of(close);
                    for line in first..=last.min(self.test_lines.len().saturating_sub(1)) {
                        self.test_lines[line] = true;
                    }
                }
            }
        }
    }

    /// Extract every `fn` item with its body range.
    pub fn functions(&self) -> Vec<FnItem> {
        let b = self.masked.as_bytes();
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(pos) = find_word(&self.masked, "fn", i) {
            i = pos + 2;
            // Name follows the keyword.
            let mut j = pos + 2;
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < b.len() && is_ident_char(b[j] as char) {
                j += 1;
            }
            if j == name_start {
                continue; // `fn` inside a type like `fn(..)`.
            }
            let name = self.masked[name_start..j].to_string();
            // Visibility: look back over the signature prefix.
            let sig_start = self.masked[..pos]
                .rfind(['\n', ';', '}'])
                .map_or(0, |p| p + 1);
            let prefix = &self.masked[sig_start..pos];
            let is_pub = prefix.trim_start().starts_with("pub");
            // Body: first `{` at zero paren/angle depth; `;` first
            // means a bodyless signature.
            let mut depth_paren = 0i32;
            let mut depth_angle = 0i32;
            let mut body = None;
            let mut k = j;
            while k < b.len() {
                match b[k] as char {
                    '(' | '[' => depth_paren += 1,
                    ')' | ']' => depth_paren -= 1,
                    '<' => depth_angle += 1,
                    // `->` is not a closing angle.
                    '>' if k == 0 || b[k - 1] as char != '-' => {
                        depth_angle = (depth_angle - 1).max(0);
                    }
                    '{' if depth_paren == 0 && depth_angle <= 0 => {
                        if let Some(close) = match_brace(&self.masked, k) {
                            body = Some(k + 1..close);
                        }
                        break;
                    }
                    ';' if depth_paren == 0 && depth_angle <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            out.push(FnItem {
                name,
                line: self.line_of(pos),
                is_pub,
                body,
            });
        }
        out
    }
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find `word` as a whole identifier at or after `from`.
pub fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let b = text.as_bytes();
    let mut i = from;
    while let Some(p) = text[i..].find(word).map(|p| i + p) {
        let before_ok = p == 0 || !is_ident_char(b[p - 1] as char);
        let end = p + word.len();
        let after_ok = end >= b.len() || !is_ident_char(b[end] as char);
        if before_ok && after_ok {
            return Some(p);
        }
        i = p + 1;
    }
    None
}

/// Byte offset of the `}` matching the `{` at `open`.
pub fn match_brace(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Blank out comment bodies and string/char literal interiors,
/// collecting comments (for suppression directives) along the way.
fn mask(raw: &str) -> (String, Vec<Comment>) {
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 0usize;
    let mut line_had_code = false;
    let mut i = 0;

    // Replace `c` (non-newline) with a space to keep offsets aligned;
    // multi-byte UTF-8 is replaced byte-for-byte.
    fn blank(out: &mut Vec<u8>, c: u8) {
        out.push(if c == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            out.push(b'\n');
            line += 1;
            line_had_code = false;
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start_line = line;
            let standalone = !line_had_code;
            let end = raw[i..].find('\n').map_or(bytes.len(), |p| i + p);
            let text = raw[i + 2..end].trim().to_string();
            comments.push(Comment {
                line: start_line,
                text,
                standalone,
            });
            for &cc in &bytes[i..end] {
                blank(&mut out, cc);
            }
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let standalone = !line_had_code;
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let text = raw[i + 2..j.saturating_sub(2).max(i + 2)]
                .trim()
                .to_string();
            comments.push(Comment {
                line: start_line,
                text,
                standalone,
            });
            for &cc in &bytes[i..j] {
                blank(&mut out, cc);
            }
            i = j;
            continue;
        }
        // Raw string r"..." / r#"..."# (optionally b-prefixed).
        let (raw_prefix, hash_at) = if c == b'r' {
            (true, i + 1)
        } else if c == b'b' && bytes.get(i + 1) == Some(&b'r') {
            (true, i + 2)
        } else {
            (false, 0)
        };
        if raw_prefix {
            let mut hashes = 0;
            let mut j = hash_at;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                // Emit the prefix as code, blank the interior.
                out.extend_from_slice(&bytes[i..=j]);
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let inner_start = j + 1;
                let end = raw[inner_start..]
                    .find(&closer)
                    .map_or(bytes.len(), |p| inner_start + p);
                for &cc in &bytes[inner_start..end] {
                    if cc == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, cc);
                }
                let close_end = (end + closer.len()).min(bytes.len());
                out.extend_from_slice(&bytes[end..close_end]);
                line_had_code = true;
                i = close_end;
                continue;
            }
        }
        // Ordinary string (optionally b-prefixed).
        if c == b'"' || (c == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            let open = if c == b'"' { i } else { i + 1 };
            out.extend_from_slice(&bytes[i..=open]);
            let mut j = open + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => {
                        blank(&mut out, bytes[j]);
                        if j + 1 < bytes.len() {
                            if bytes[j + 1] == b'\n' {
                                line += 1;
                            }
                            blank(&mut out, bytes[j + 1]);
                        }
                        j += 2;
                    }
                    b'"' => break,
                    cc => {
                        if cc == b'\n' {
                            line += 1;
                        }
                        blank(&mut out, cc);
                        j += 1;
                    }
                }
            }
            if j < bytes.len() {
                out.push(b'"');
                j += 1;
            }
            line_had_code = true;
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let is_char = match bytes.get(i + 1) {
                Some(b'\\') => true,
                Some(&n) => bytes.get(i + 2) == Some(&b'\'') && n != b'\'',
                None => false,
            };
            if is_char {
                out.push(b'\'');
                let mut j = i + 1;
                if bytes[j] == b'\\' {
                    blank(&mut out, bytes[j]);
                    j += 1;
                    // Escape payload up to the closing quote.
                    while j < bytes.len() && bytes[j] != b'\'' {
                        blank(&mut out, bytes[j]);
                        j += 1;
                    }
                } else {
                    blank(&mut out, bytes[j]);
                    j += 1;
                }
                if j < bytes.len() {
                    out.push(b'\'');
                    j += 1;
                }
                line_had_code = true;
                i = j;
                continue;
            }
        }
        if !(c as char).is_whitespace() {
            line_had_code = true;
        }
        out.push(c);
        i += 1;
    }
    (
        // pdnn-lint: allow(l3-no-unwrap): mask() only writes ASCII or copies original bytes, so the output stays valid UTF-8
        String::from_utf8(out).expect("masking preserves UTF-8 structure"),
        comments,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let x = \"panic!()\"; // HashMap here\nlet y = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.masked.contains("panic"));
        assert!(!f.masked.contains("HashMap"));
        assert_eq!(f.masked.len(), src.len());
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].text, "HashMap here");
        assert!(!f.comments[0].standalone);
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let s = r#\"Instant::now()\"#;\nlet c = '\\n';\nlet l: &'static str = \"x\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.masked.contains("Instant"));
        assert!(f.masked.contains("'static"), "lifetime survives masking");
        assert_eq!(f.masked.len(), src.len());
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.masked.contains("let z = 3;"));
        assert!(!f.masked.contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        helper();
    }
}
";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.test_lines[0], "library line not in test region");
        assert!(f.test_lines[4], "inside mod tests");
        assert!(f.test_lines[6], "inside test fn");
    }

    #[test]
    fn functions_extracted_with_bodies_and_visibility() {
        let src = "\
pub fn outer(x: usize) -> usize {
    inner(x)
}

fn inner(x: usize) -> usize {
    x + 1
}

pub fn generic<T: Ord>(v: Vec<T>) -> Option<T> {
    v.into_iter().max()
}
";
        let f = SourceFile::parse("t.rs", src);
        let fns = f.functions();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "outer");
        assert!(fns[0].is_pub);
        assert!(!fns[1].is_pub);
        assert_eq!(fns[2].name, "generic");
        let body = &f.masked[fns[0].body.clone().unwrap()];
        assert!(body.contains("inner(x)"));
    }

    #[test]
    fn line_and_column_mapping() {
        let src = "ab\ncdef\n";
        let f = SourceFile::parse("t.rs", src);
        let pos = f.masked.find("de").unwrap();
        assert_eq!(f.line_of(pos), 1);
        assert_eq!(f.col_of(pos), 2);
        assert_eq!(f.raw_line(1), "cdef");
    }
}
