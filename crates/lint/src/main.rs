//! `cargo run -p pdnn-lint` — lint the workspace, print rustc-style
//! diagnostics, write `results/lint_report.json`, and exit nonzero on
//! any violation or suppression problem.
//!
//! Usage: `pdnn-lint [workspace-root]` (default: `CARGO_MANIFEST_DIR`'s
//! grandparent, i.e. the repo root when run via cargo).

use pdnn_lint::{lint_workspace, report, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    // crates/lint -> crates -> repo root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let root = workspace_root();
    let (outcomes, files_scanned) = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pdnn-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut violations = 0usize;
    let mut meta_errors = 0usize;
    let mut suppressed = 0usize;
    for o in &outcomes {
        for f in &o.findings {
            println!("{f}\n");
            violations += 1;
        }
        for m in &o.meta {
            println!("{m}\n");
            meta_errors += 1;
        }
        suppressed += o.suppressed.len();
    }

    let json = report::render(&outcomes, files_scanned);
    let results_dir = root.join("results");
    let report_path = results_dir.join("lint_report.json");
    if let Err(e) =
        std::fs::create_dir_all(&results_dir).and_then(|()| std::fs::write(&report_path, &json))
    {
        eprintln!("pdnn-lint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    println!(
        "pdnn-lint: {files_scanned} files, {} rules, {violations} violation(s), \
         {meta_errors} suppression problem(s), {suppressed} suppressed",
        rules::RULES.len()
    );
    println!("pdnn-lint: report written to {}", report_path.display());

    if violations > 0 || meta_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
