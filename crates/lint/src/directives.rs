//! Shared `// pdnn-lint: allow(...)` directive parsing.
//!
//! The suppression grammar is owned by pdnn-lint but consumed by every
//! static pass in the workspace (the linter itself, `pdnn-protocheck`,
//! `pdnn-kernelcheck`). Each consumer supplies its own known-rule
//! predicate so a directive naming a rule outside that consumer's
//! vocabulary is rejected at parse time rather than silently ignored.

use crate::source::SourceFile;
use std::fmt;

/// A parsed `// pdnn-lint: allow(<rule>): <reason>` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rule: String,
    pub reason: Option<String>,
    /// 1-based line the directive waives.
    pub target_line: usize,
    /// 1-based line the comment itself is on.
    pub comment_line: usize,
}

/// Problems with the suppression comments themselves.
#[derive(Clone, Debug)]
pub struct MetaDiag {
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for MetaDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[meta-suppression]: {}", self.message)?;
        write!(f, "  --> {}:{}", self.path, self.line)
    }
}

const DIRECTIVE: &str = "pdnn-lint:";

/// Extract suppression directives from a file's comments, validating
/// rule names against `known`. Malformed directives become meta
/// diagnostics immediately.
pub fn parse(file: &SourceFile, known: &dyn Fn(&str) -> bool) -> (Vec<Suppression>, Vec<MetaDiag>) {
    let mut sup = Vec::new();
    let mut meta = Vec::new();
    let masked_lines: Vec<&str> = file.masked.lines().collect();
    for c in &file.comments {
        // Directives live in plain `//` comments only; doc comments
        // (`///`, `//!`) routinely *describe* the syntax without
        // meaning it (this file's own docs, RULES.md excerpts).
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find(DIRECTIVE) else {
            continue;
        };
        let rest = c.text[at + DIRECTIVE.len()..].trim();
        let comment_line = c.line + 1;
        let Some(args) = rest.strip_prefix("allow(") else {
            meta.push(MetaDiag {
                path: file.path.clone(),
                line: comment_line,
                message: format!("unrecognized pdnn-lint directive `{rest}`; expected `allow(<rule-id>): <reason>`"),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            meta.push(MetaDiag {
                path: file.path.clone(),
                line: comment_line,
                message: "unclosed `allow(` in pdnn-lint directive".to_string(),
            });
            continue;
        };
        let rule = args[..close].trim().to_string();
        if !known(&rule) {
            meta.push(MetaDiag {
                path: file.path.clone(),
                line: comment_line,
                message: format!("unknown rule `{rule}` in pdnn-lint allow"),
            });
            continue;
        }
        let after = args[close + 1..].trim();
        let reason = after
            .strip_prefix(':')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        if reason.is_none() {
            meta.push(MetaDiag {
                path: file.path.clone(),
                line: comment_line,
                message: format!(
                    "pdnn-lint allow({rule}) without a reason; append `: <why this is safe>`"
                ),
            });
            continue;
        }
        // A standalone comment waives the next line that has code; an
        // end-of-line comment waives its own line.
        let target_line = if c.standalone {
            let mut t = c.line + 1;
            while t < masked_lines.len() && masked_lines[t].trim().is_empty() {
                t += 1;
            }
            t + 1
        } else {
            comment_line
        };
        sup.push(Suppression {
            rule,
            reason,
            target_line,
            comment_line,
        });
    }
    (sup, meta)
}
