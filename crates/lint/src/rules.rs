//! The seven project rules. Each rule takes a [`SourceFile`] and emits
//! findings; scoping (which paths a rule applies to) lives here so
//! RULES.md and the code stay side by side.

use crate::source::{find_word, is_ident_char, SourceFile};
use crate::Finding;

/// Static description of one rule, surfaced in `--help`-style listings
/// and the JSON report.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: L1,
        summary: "simulation crates must not read wall clocks directly; \
                  use the injectable pdnn_util::timing::Clock",
    },
    RuleInfo {
        id: L2,
        summary: "trace/figure/report emission paths must not use \
                  HashMap/HashSet (nondeterministic iteration order)",
    },
    RuleInfo {
        id: L3,
        summary: "no unwrap()/expect()/panic! in non-test library code; \
                  return pdnn_util::Error",
    },
    RuleInfo {
        id: L4,
        summary: "no ==/!= on floating-point values outside the approved \
                  helpers in pdnn_util::float",
    },
    RuleInfo {
        id: L5,
        summary: "public phase-level functions must open a pdnn-obs \
                  Recorder span (directly or via a same-file callee)",
    },
    RuleInfo {
        id: L6,
        summary: "no bare `as` numeric casts in cycle/byte accounting \
                  paths; use try_into or pdnn_util::cast helpers",
    },
    RuleInfo {
        id: L7,
        summary: "`unsafe` is confined to the tensor GEMM kernel backend \
                  modules (explicit SIMD microkernels); everywhere else \
                  needs a reasoned suppression",
    },
    RuleInfo {
        id: L8,
        summary: "every receive in the distributed protocol must use the \
                  timed variant so a dead peer cannot block recovery; \
                  intentional blocking waits need a reasoned suppression",
    },
];

pub const L1: &str = "l1-sim-wall-clock";
pub const L2: &str = "l2-iteration-order";
pub const L3: &str = "l3-no-unwrap";
pub const L4: &str = "l4-float-exact-compare";
pub const L5: &str = "l5-phase-span";
pub const L6: &str = "l6-lossy-cast";
pub const L7: &str = "l7-unsafe-outside-kernel";
pub const L8: &str = "l8-timed-recv";

/// Rule ids owned by `pdnn-protocheck` but registered here so the
/// shared suppression machinery (`pdnn_lint::suppressions`) accepts
/// `// pdnn-lint: allow(p...)` directives. The linter itself never
/// emits these; protocheck validates and consumes them.
pub const PROTOCHECK_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "p1-collective-order",
        summary: "master and worker must issue the same collective \
                  sequence, in the same order, for every command",
    },
    RuleInfo {
        id: "p2-tag-match",
        summary: "every point-to-point send tag must have a matching \
                  recv with a compatible payload type, and vice versa",
    },
    RuleInfo {
        id: "p3-unconsumed-message",
        summary: "no message may be left unconsumed at the shutdown \
                  barrier; send/recv site counts must balance per tag",
    },
    RuleInfo {
        id: "p4-command-space",
        summary: "command opcodes must be unique and handled by both \
                  the master and the worker loop",
    },
];

/// Rule ids owned by `pdnn-kernelcheck`, registered here for the same
/// reason as [`PROTOCHECK_RULES`]: the shared suppression machinery
/// must accept `// pdnn-lint: allow(k...)` directives inside the
/// kernel zone, while kernelcheck itself validates and consumes them.
pub const KERNELCHECK_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "k1-oob-access",
        summary: "every raw-pointer access in a kernel must be provably \
                  in bounds under the declared kernel-contract lengths",
    },
    RuleInfo {
        id: "k2-missing-contract",
        summary: "every unsafe kernel fn and every raw-pointer parameter \
                  must carry a kernel-contract annotation",
    },
    RuleInfo {
        id: "k3-alignment",
        summary: "aligned load/store intrinsics require an align(N) \
                  kernel-contract on the pointer they dereference",
    },
    RuleInfo {
        id: "k4-feature-guard",
        summary: "every SIMD intrinsic must be covered by target_feature, \
                  a runtime detection guard, and a matching dispatch path",
    },
    RuleInfo {
        id: "k5-wrapper-precondition",
        summary: "safe kernel wrappers must establish every declared \
                  contract via kernel_precondition! or slice types",
    },
    RuleInfo {
        id: "k6-driver-guarantee",
        summary: "safe GEMM drivers must slice panels to exactly the \
                  lengths the kernel contracts require",
    },
    RuleInfo {
        id: "k7-noalias",
        summary: "operands annotated noalias must be fed from distinct \
                  sources, with *mut params sourced from &mut slices",
    },
];

/// Rule ids owned by `pdnn-protomc`, the explicit-state model checker:
/// global protocol properties proved by exhaustive exploration of the
/// abstract state machines, not by lexical analysis. Registered here
/// so the shared suppression machinery accepts them; protomc emits
/// findings under these ids when a property fails.
pub const PROTOMC_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "p5-deadlock-free",
        summary: "no reachable global protocol state leaves a live rank \
                  blocked forever, for any interleaving and any single \
                  injected failure",
    },
    RuleInfo {
        id: "p6-no-lost-message",
        summary: "at every terminal protocol state, every abstract send \
                  was consumed or explicitly dropped by a dead-rank mark",
    },
    RuleInfo {
        id: "p7-recovery-termination",
        summary: "from any single-fault state the protocol reaches \
                  training-resumed (or a clean no-survivors abort)",
    },
];

/// Is `id` a rule id the suppression parser should accept?
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
        || PROTOCHECK_RULES.iter().any(|r| r.id == id)
        || KERNELCHECK_RULES.iter().any(|r| r.id == id)
        || PROTOMC_RULES.iter().any(|r| r.id == id)
}

/// Crates whose behaviour (and telemetry) must be a pure function of
/// their inputs: the simulated machine, the trainer that runs on it,
/// the performance model, and the telemetry layer itself.
const SIM_CRATE_PREFIXES: &[&str] = &[
    "crates/mpisim/src/",
    "crates/bgq/src/",
    "crates/perfmodel/src/",
    "crates/core/src/",
    "crates/obs/src/",
];

/// Files that serialize traces, figures, or reports — anywhere output
/// ordering leaks into bytes on disk.
const EMISSION_PATHS: &[&str] = &[
    "crates/obs/src/",
    "crates/mpisim/src/trace.rs",
    "crates/mpisim/src/timeline.rs",
    "crates/perfmodel/src/figures.rs",
    "crates/util/src/report.rs",
    "crates/bgq/src/routing.rs",
    "crates/bgq/src/counters.rs",
];

/// Modules whose public functions are training phases in the paper's
/// sense (Fig. 4–5 breakdown): they must be visible in telemetry.
const PHASE_MODULES: &[&str] = &[
    "crates/core/src/optimizer.rs",
    "crates/core/src/cg.rs",
    "crates/core/src/distributed.rs",
    "crates/mpisim/src/collectives.rs",
];

/// A phase function shorter than this is an accessor/adapter, not a
/// phase; L5 skips it.
const PHASE_MIN_BODY_LINES: usize = 10;

/// Cycle/byte accounting paths where a silently-lossy `as` cast skews
/// the performance model: the BG/Q machine model, the analytic
/// perf-model crate, and the simulator's virtual-time layer.
const ACCOUNTING_PATHS: &[&str] = &[
    "crates/bgq/src/",
    "crates/perfmodel/src/",
    "crates/mpisim/src/vtime.rs",
];

pub fn run_all(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    l1_sim_wall_clock(file, &mut out);
    l2_iteration_order(file, &mut out);
    l3_no_unwrap(file, &mut out);
    l4_float_exact_compare(file, &mut out);
    l5_phase_span(file, &mut out);
    l6_lossy_cast(file, &mut out);
    l7_unsafe_outside_kernel(file, &mut out);
    l8_timed_recv(file, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| path.starts_with(p) || path == p.trim_end_matches('/'))
}

/// Flag every whole-word occurrence of `word` in non-test code.
fn flag_word(file: &SourceFile, word: &str, rule: &'static str, msg: &str, out: &mut Vec<Finding>) {
    let mut from = 0;
    while let Some(pos) = find_word(&file.masked, word, from) {
        from = pos + word.len();
        let line = file.line_of(pos);
        if file.test_lines.get(line).copied().unwrap_or(false) {
            continue;
        }
        out.push(Finding::new(file, rule, pos, msg.to_string()));
    }
}

fn l1_sim_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_any(&file.path, SIM_CRATE_PREFIXES) {
        return;
    }
    for (word, what) in [
        ("Instant", "std::time::Instant"),
        ("SystemTime", "std::time::SystemTime"),
    ] {
        flag_word(
            file,
            word,
            L1,
            &format!(
                "`{what}` read in a simulation crate; route wall-clock access \
                 through an injected `pdnn_util::timing::Clock`"
            ),
            out,
        );
    }
}

fn l2_iteration_order(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_any(&file.path, EMISSION_PATHS) {
        return;
    }
    for word in ["HashMap", "HashSet"] {
        flag_word(
            file,
            word,
            L2,
            &format!(
                "`{word}` in a trace/report emission path; iteration order is \
                 nondeterministic — use `BTreeMap`/`BTreeSet` or sort before emitting"
            ),
            out,
        );
    }
}

/// Paths L3 skips: binaries, benches, and the linter's fixture corpus.
fn l3_applies(path: &str) -> bool {
    let lib_code = path.starts_with("crates/") && path.contains("/src/") || path == "src/lib.rs";
    lib_code && !path.contains("/src/bin/") && !path.ends_with("/main.rs")
}

fn l3_no_unwrap(file: &SourceFile, out: &mut Vec<Finding>) {
    if !l3_applies(&file.path) {
        return;
    }
    let b = file.masked.as_bytes();
    let mut emit = |pos: usize, msg: String| {
        let line = file.line_of(pos);
        if !file.test_lines.get(line).copied().unwrap_or(false) {
            out.push(Finding::new(file, L3, pos, msg));
        }
    };
    let mut from = 0;
    while let Some(pos) = find_word(&file.masked, "unwrap", from) {
        from = pos + 6;
        // Only the method call `.unwrap()` — `unwrap_or*` and fn names
        // like `unwrap` in paths are matched by the word search; require
        // a leading dot and a following `(`.
        let is_method = pos > 0 && b[pos - 1] == b'.';
        let called = file.masked[pos + 6..].trim_start().starts_with('(');
        if is_method && called {
            emit(pos, "`.unwrap()` in library code; propagate a `pdnn_util::Error` (or suppress with a reason if genuinely infallible)".into());
        }
    }
    from = 0;
    while let Some(pos) = find_word(&file.masked, "expect", from) {
        from = pos + 6;
        let is_method = pos > 0 && b[pos - 1] == b'.';
        let called = file.masked[pos + 6..].trim_start().starts_with('(');
        if is_method && called {
            emit(pos, "`.expect()` in library code; propagate a `pdnn_util::Error` (or suppress with a reason if genuinely infallible)".into());
        }
    }
    from = 0;
    while let Some(pos) = find_word(&file.masked, "panic", from) {
        from = pos + 5;
        if file.masked[pos + 5..].starts_with('!') {
            // `assert!`/`debug_assert!` stay allowed; this is the bare
            // macro only. `#[should_panic]` lives in test regions.
            emit(pos, "`panic!` in library code; return a `pdnn_util::Error` (asserts for contract violations are fine)".into());
        }
    }
}

/// Does the token ending at `end` (exclusive) or starting at `start`
/// look like a floating-point operand?
fn floatish(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    // Float literal: `0.0`, `1e-9`, `0f64`, `2.5_f32`.
    let lit = tok.as_bytes()[0].is_ascii_digit()
        && (tok.contains('.')
            || tok.ends_with("f32")
            || tok.ends_with("f64")
            || tok.contains('e') && !tok.contains("0x"));
    // Well-known float-valued constants in generic numeric code.
    let const_like = tok.ends_with("::ZERO")
        || tok.ends_with("::ONE")
        || tok.ends_with("EPSILON")
        || tok.ends_with("NAN")
        || tok.ends_with("INFINITY");
    lit || const_like
}

/// The operand token immediately left of byte `pos` (exclusive).
fn operand_left(masked: &str, pos: usize) -> &str {
    let b = masked.as_bytes();
    let mut i = pos;
    while i > 0 && (b[i - 1] as char).is_whitespace() && b[i - 1] != b'\n' {
        i -= 1;
    }
    let end = i;
    while i > 0 && (is_ident_char(b[i - 1] as char) || b[i - 1] == b'.' || b[i - 1] == b':') {
        i -= 1;
    }
    &masked[i..end]
}

/// The operand token immediately right of byte `pos`.
fn operand_right(masked: &str, pos: usize) -> &str {
    let b = masked.as_bytes();
    let mut i = pos;
    while i < b.len() && (b[i] as char).is_whitespace() && b[i] != b'\n' {
        i += 1;
    }
    let start = i;
    if i < b.len() && (b[i] == b'-' || b[i] == b'+') {
        i += 1;
    }
    while i < b.len() && (is_ident_char(b[i] as char) || b[i] == b'.' || b[i] == b':') {
        i += 1;
    }
    &masked[start..i]
}

fn l4_float_exact_compare(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.path.ends_with(".rs") {
        return;
    }
    let b = file.masked.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let two = &file.masked[i..i + 2];
        if two != "==" && two != "!=" {
            i += 1;
            continue;
        }
        // Skip `===`-like runs, `<=`, `>=`, `=>`, and pattern `..=`.
        let prev = if i > 0 { b[i - 1] } else { b' ' };
        let next = b.get(i + 2).copied().unwrap_or(b' ');
        if prev == b'='
            || prev == b'<'
            || prev == b'>'
            || prev == b'!'
            || next == b'='
            || next == b'>'
        {
            i += 2;
            continue;
        }
        let line = file.line_of(i);
        if file.test_lines.get(line).copied().unwrap_or(false) {
            i += 2;
            continue;
        }
        let lhs = operand_left(&file.masked, i);
        let rhs = operand_right(&file.masked, i + 2);
        let rhs_f = floatish(rhs.trim_start_matches(['-', '+']));
        if floatish(lhs) || rhs_f {
            out.push(Finding::new(
                file,
                L4,
                i,
                format!(
                    "exact float comparison `{} {} {}`; use `pdnn_util::float::{{approx_eq, close, exactly_zero}}`",
                    if lhs.is_empty() { "_" } else { lhs },
                    two,
                    if rhs.is_empty() { "_" } else { rhs },
                ),
            ));
        }
        i += 2;
    }
}

/// The numeric type tokens an `as` cast can target; `as` followed by
/// anything else (`as &str`, `as dyn Trait`, `as Payload`) is not a
/// numeric cast and is out of scope for L6.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn l6_lossy_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_any(&file.path, ACCOUNTING_PATHS) {
        return;
    }
    let mut from = 0;
    while let Some(pos) = find_word(&file.masked, "as", from) {
        from = pos + 2;
        let line = file.line_of(pos);
        if file.test_lines.get(line).copied().unwrap_or(false) {
            continue;
        }
        let target = operand_right(&file.masked, pos + 2);
        let Some(ty) = NUMERIC_TYPES.iter().find(|t| **t == target) else {
            continue;
        };
        out.push(Finding::new(
            file,
            L6,
            pos,
            format!(
                "bare `as {ty}` cast in an accounting path; use `try_into()` or a \
                 `pdnn_util::cast` checked helper (or suppress with the reason the \
                 value provably fits)"
            ),
        ));
    }
}

/// The only modules allowed to contain `unsafe`: the explicit SIMD
/// microkernels behind the `ComputeBackend` seam, where raw-pointer
/// `std::arch` code is the entire point and every entry is a safe
/// wrapper that asserts lengths and runtime CPU features first.
const KERNEL_BACKEND_PATHS: &[&str] = &["crates/tensor/src/gemm/kernel/"];

fn l7_unsafe_outside_kernel(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.path.ends_with(".rs") || in_any(&file.path, KERNEL_BACKEND_PATHS) {
        return;
    }
    flag_word(
        file,
        "unsafe",
        L7,
        "`unsafe` outside the GEMM kernel backend modules \
         (crates/tensor/src/gemm/kernel/); move the code behind the \
         ComputeBackend seam or suppress with the reason the block is \
         unavoidable and sound",
        out,
    );
}

/// Tokens whose presence in a body mean "this function is visible in
/// telemetry".
fn body_opens_span(body: &str) -> bool {
    let mut from = 0;
    while let Some(p) = find_word(body, "span", from) {
        from = p + 4;
        // `.span(` or `recorder.span(` — a call, not the word in an
        // identifier like `span_kind` (word search excludes those).
        if body[p + 4..].trim_start().starts_with('(') {
            return true;
        }
    }
    find_word(body, "with_collective", 0).is_some()
}

/// Names called as `ident(` inside a body.
fn called_names(body: &str) -> Vec<String> {
    let b = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if is_ident_char(b[i] as char) {
            let start = i;
            while i < b.len() && is_ident_char(b[i] as char) {
                i += 1;
            }
            let mut j = i;
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            // `name(` or `name::<T>(`.
            if b.get(j) == Some(&b'(') || body[j..].starts_with("::<") {
                out.push(body[start..i].to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

fn l5_phase_span(file: &SourceFile, out: &mut Vec<Finding>) {
    if !PHASE_MODULES.contains(&file.path.as_str()) {
        return;
    }
    let fns = file.functions();
    // Same-file call graph: does fn `name` (transitively) open a span?
    let bodies: std::collections::BTreeMap<&str, &str> = fns
        .iter()
        .filter_map(|f| f.body.clone().map(|r| (f.name.as_str(), &file.masked[r])))
        .collect();
    fn reaches_span(
        name: &str,
        bodies: &std::collections::BTreeMap<&str, &str>,
        seen: &mut Vec<String>,
    ) -> bool {
        if seen.iter().any(|s| s == name) {
            return false;
        }
        seen.push(name.to_string());
        let Some(body) = bodies.get(name) else {
            return false;
        };
        if body_opens_span(body) {
            return true;
        }
        called_names(body)
            .iter()
            .any(|callee| reaches_span(callee, bodies, seen))
    }
    for f in &fns {
        if !f.is_pub || file.test_lines.get(f.line).copied().unwrap_or(false) {
            continue;
        }
        let Some(range) = f.body.clone() else {
            continue;
        };
        let body = &file.masked[range.clone()];
        let body_lines = body.lines().count();
        if body_lines < PHASE_MIN_BODY_LINES {
            continue;
        }
        let mut seen = Vec::new();
        if !reaches_span(&f.name, &bodies, &mut seen) {
            // Anchor the finding at the `fn` keyword line.
            let pos = range.start;
            let offset = file
                .masked
                .lines()
                .take(f.line)
                .map(|l| l.len() + 1)
                .sum::<usize>();
            let _ = pos;
            out.push(Finding::new(
                file,
                L5,
                offset,
                format!(
                    "public phase function `{}` ({} body lines) never opens a \
                     pdnn-obs Recorder span; phases must be visible in telemetry",
                    f.name, body_lines
                ),
            ));
        }
    }
}

/// The protocol file L8 governs: PR 5 made timed receives the
/// convention in the recovery path; this rule makes it checkable.
const TIMED_RECV_PATH: &str = "crates/core/src/distributed.rs";

fn l8_timed_recv(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.path != TIMED_RECV_PATH {
        return;
    }
    let b = file.masked.as_bytes();
    for word in ["recv", "recv_vec"] {
        let mut from = 0;
        while let Some(pos) = find_word(&file.masked, word, from) {
            from = pos + word.len();
            let line = file.line_of(pos);
            if file.test_lines.get(line).copied().unwrap_or(false) {
                continue;
            }
            // Only method calls `.recv(` / `.recv_vec(`, including the
            // turbofish form `.recv_vec::<T>(`. The timed variants are
            // distinct words (`recv_timeout`, `recv_vec_timeout`) so
            // the word search never matches them here.
            let is_method = pos > 0 && b[pos - 1] == b'.';
            let rest = &file.masked[pos + word.len()..];
            let called = rest.trim_start().starts_with('(') || rest.starts_with("::<");
            if is_method && called {
                out.push(Finding::new(
                    file,
                    L8,
                    pos,
                    format!(
                        "blocking `.{word}()` in the distributed protocol; use \
                         `.{word}_timeout()` with `comm.p2p_timeout()` so a dead \
                         peer cannot block recovery (or suppress with the reason \
                         the blocking wait is intentional)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(path: &str, src: &str) -> Vec<Finding> {
        run_all(&SourceFile::parse(path, src))
    }

    #[test]
    fn l1_flags_instant_in_sim_crate_only() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let hits = findings_for("crates/mpisim/src/x.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == L1).count(), 2);
        let none = findings_for("crates/speech/src/x.rs", src);
        assert!(none.iter().all(|f| f.rule != L1));
    }

    #[test]
    fn l1_ignores_test_code_and_strings() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let i = std::time::Instant::now(); }\n}\nfn f() { let s = \"Instant\"; }\n";
        let hits = findings_for("crates/bgq/src/x.rs", src);
        assert!(hits.iter().all(|f| f.rule != L1), "{hits:?}");
    }

    #[test]
    fn l2_flags_hashmap_in_emission_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(findings_for("crates/obs/src/x.rs", src).len(), 1);
        assert_eq!(findings_for("crates/bgq/src/routing.rs", src).len(), 1);
        assert!(findings_for("crates/bgq/src/torus.rs", src).is_empty());
    }

    #[test]
    fn l3_flags_unwrap_expect_panic_but_not_lookalikes() {
        let src = "\
fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect(\"msg\");
    let c = v.unwrap_or(0);
    let d = v.unwrap_or_else(|| 0);
    if a == 0 { panic!(\"boom\"); }
    assert!(a > 0);
    a + b + c + d
}
";
        let hits = findings_for("crates/util/src/x.rs", src);
        let l3: Vec<_> = hits.iter().filter(|f| f.rule == L3).collect();
        assert_eq!(l3.len(), 3, "{l3:?}");
        assert_eq!(l3[0].line, 2);
        assert_eq!(l3[1].line, 3);
        assert_eq!(l3[2].line, 6);
    }

    #[test]
    fn l3_skips_tests_bins_and_non_library_paths() {
        let src = "fn f(v: Option<u32>) { v.unwrap(); }\n";
        assert!(findings_for("crates/util/src/bin/tool.rs", src).is_empty());
        assert!(findings_for("crates/util/benches/b.rs", src).is_empty());
        assert!(findings_for("crates/util/tests/t.rs", src).is_empty());
        assert_eq!(findings_for("crates/util/src/x.rs", src).len(), 1);
    }

    #[test]
    fn l4_flags_float_literal_and_const_compares() {
        let src = "\
fn f(x: f64, n: u32) -> bool {
    let a = x == 0.0;
    let b = x != 1e-9;
    let c = n == 0;
    let d = x <= 0.0;
    a && b && c && d
}
";
        let hits = findings_for("crates/core/src/x.rs", src);
        let l4: Vec<_> = hits.iter().filter(|f| f.rule == L4).collect();
        assert_eq!(l4.len(), 2, "{l4:?}");
        assert_eq!(l4[0].line, 2);
        assert_eq!(l4[1].line, 3);
    }

    #[test]
    fn l4_flags_generic_zero_one_constants() {
        let src = "fn f<T: PartialEq>(beta: T, zero: T) -> bool { beta == T::ZERO }\n"
            .replace("zero: T", "_z: T");
        let hits = findings_for("crates/tensor/src/x.rs", &src);
        assert_eq!(hits.iter().filter(|f| f.rule == L4).count(), 1);
    }

    #[test]
    fn l5_requires_span_in_long_public_phase_fns() {
        let body_filler = "    let x = 1;\n".repeat(12);
        let src = format!(
            "pub fn no_span() {{\n{body_filler}}}\n\n\
             pub fn has_span(rec: &dyn Recorder) {{\n    let _s = rec.span(\"p\", SpanKind::Scalar);\n{body_filler}}}\n\n\
             pub fn via_helper(rec: &dyn Recorder) {{\n    helper(rec);\n{body_filler}}}\n\n\
             fn helper(rec: &dyn Recorder) {{\n    let _s = rec.span(\"h\", SpanKind::Scalar);\n}}\n"
        );
        let hits = findings_for("crates/core/src/optimizer.rs", &src);
        let l5: Vec<_> = hits.iter().filter(|f| f.rule == L5).collect();
        assert_eq!(l5.len(), 1, "{l5:?}");
        assert!(l5[0].message.contains("no_span"));
    }

    #[test]
    fn l6_flags_numeric_casts_in_accounting_paths_only() {
        let src =
            "fn f(bytes: u64) -> f64 {\n    bytes as f64\n}\nfn g(x: f64) -> u64 { x as u64 }\n";
        let hits = findings_for("crates/bgq/src/torus.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == L6).count(), 2, "{hits:?}");
        let hits = findings_for("crates/mpisim/src/vtime.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == L6).count(), 2);
        // Out of scope: other mpisim modules, core, util.
        assert!(findings_for("crates/mpisim/src/comm.rs", src)
            .iter()
            .all(|f| f.rule != L6));
        assert!(findings_for("crates/util/src/cast.rs", src)
            .iter()
            .all(|f| f.rule != L6));
    }

    #[test]
    fn l6_ignores_non_numeric_casts_and_test_code() {
        let src = "fn f(p: &dyn Payload) { let _ = p as &dyn Payload; }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(b: u64) -> f64 { b as f64 }\n}\n";
        let hits = findings_for("crates/perfmodel/src/model.rs", src);
        assert!(hits.iter().all(|f| f.rule != L6), "{hits:?}");
    }

    #[test]
    fn l7_confines_unsafe_to_kernel_backends() {
        let src = "fn f(p: *mut u8) { unsafe { p.write(0) } }\n";
        // Anywhere else: flagged.
        let hits = findings_for("crates/core/src/x.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == L7).count(), 1);
        let hits = findings_for("src/bin/pdnn-train.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == L7).count(), 1);
        // Inside the kernel backend dir: allowed.
        let hits = findings_for("crates/tensor/src/gemm/kernel/x86.rs", src);
        assert!(hits.iter().all(|f| f.rule != L7), "{hits:?}");
        // Test code and strings don't count.
        let masked = "#[cfg(test)]\nmod tests {\n    fn t(p: *mut u8) { unsafe { p.write(0) } }\n}\nfn f() { let s = \"unsafe\"; }\n";
        let hits = findings_for("crates/core/src/x.rs", masked);
        assert!(hits.iter().all(|f| f.rule != L7), "{hits:?}");
    }

    #[test]
    fn protocheck_rule_ids_are_known() {
        assert!(known_rule("p1-collective-order"));
        assert!(known_rule("p2-tag-match"));
        assert!(known_rule("p3-unconsumed-message"));
        assert!(known_rule("p4-command-space"));
        assert!(known_rule(L6));
        assert!(!known_rule("p9-nonsense"));
    }

    #[test]
    fn protomc_rule_ids_are_known() {
        assert!(known_rule("p5-deadlock-free"));
        assert!(known_rule("p6-no-lost-message"));
        assert!(known_rule("p7-recovery-termination"));
        assert!(!known_rule("p8-nonsense"));
    }

    #[test]
    fn l8_flags_blocking_recvs_in_distributed_only() {
        let src = "\
fn f(comm: &mut Comm) -> Result<(), CommError> {
    let a = comm.recv(Src::Of(0), 17)?;
    let b = comm.recv_vec::<u64>(Src::Of(0), 17)?;
    let c = comm.recv_timeout(Src::Of(0), 17, t)?;
    let d = comm.recv_vec_timeout::<u64>(Src::Of(0), 17, t)?;
    let _ = (a, b, c, d);
    Ok(())
}
";
        let hits = findings_for("crates/core/src/distributed.rs", src);
        let l8: Vec<_> = hits.iter().filter(|f| f.rule == L8).collect();
        assert_eq!(l8.len(), 2, "{l8:?}");
        assert_eq!(l8[0].line, 2);
        assert_eq!(l8[1].line, 3);
        // Other files are out of scope (the collectives implement the
        // untimed variants themselves).
        assert!(findings_for("crates/mpisim/src/collectives.rs", src)
            .iter()
            .all(|f| f.rule != L8));
    }

    #[test]
    fn l8_ignores_non_method_uses_and_tests() {
        let src = "\
fn recv() {}
fn f() { recv(); }
#[cfg(test)]
mod tests {
    fn t(comm: &mut Comm) { let _ = comm.recv(Src::Any, 1); }
}
";
        let hits = findings_for("crates/core/src/distributed.rs", src);
        assert!(hits.iter().all(|f| f.rule != L8), "{hits:?}");
    }

    #[test]
    fn l5_skips_short_fns_and_other_files() {
        let src = "pub fn tiny() { let x = 1; let _ = x; }\n";
        assert!(findings_for("crates/core/src/optimizer.rs", src).is_empty());
        let long = format!("pub fn f() {{\n{}}}\n", "    let x = 1;\n".repeat(12));
        assert!(findings_for("crates/core/src/config.rs", &long).is_empty());
    }
}
