//! # pdnn-lint — workspace static analysis
//!
//! A project-specific lint pass enforcing the invariants the
//! simulation's credibility rests on: injectable clocks in simulation
//! crates (L1), deterministic iteration in emission paths (L2),
//! recoverable errors instead of panics in library code (L3), no
//! exact float comparison outside the approved helpers (L4), and
//! telemetry spans on phase-level functions (L5). See
//! `crates/lint/RULES.md` for the catalog and rationale.
//!
//! The pass is lexical, not syntactic: the build environment has no
//! registry access, so instead of `syn` each file is run through a
//! masking lexer ([`source::SourceFile`]) that blanks comments and
//! literal interiors before token matching. That is precise enough
//! for every rule here and keeps the linter dependency-free.
//!
//! ## Suppressions
//!
//! A finding is waived with a comment on the same line or the line
//! directly above, carrying a mandatory reason:
//!
//! ```text
//! // pdnn-lint: allow(l3-no-unwrap): mutex poisoning implies a prior panic
//! let guard = lock.lock().unwrap();
//! ```
//!
//! A suppression without a reason, or one that matches no finding, is
//! itself an error (`meta-suppression`) so the allow-list can never
//! rot silently.

pub mod directives;
pub mod report;
pub mod rules;
pub mod source;

pub use directives::{MetaDiag, Suppression};

use source::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, before suppression filtering.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    pub message: String,
    /// The raw source line, for rustc-style output.
    pub snippet: String,
}

impl Finding {
    /// Build a finding anchored at byte `offset` of the masked text.
    pub fn new(file: &SourceFile, rule: &'static str, offset: usize, message: String) -> Finding {
        let line0 = file.line_of(offset);
        Finding {
            rule,
            path: file.path.clone(),
            line: line0 + 1,
            col: file.col_of(offset),
            message,
            snippet: file.raw_line(line0).to_string(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        writeln!(f, "   |")?;
        writeln!(f, "{:>3}| {}", self.line, self.snippet)?;
        let caret_pad = " ".repeat(self.col.saturating_sub(1));
        write!(f, "   | {caret_pad}^")
    }
}

/// Extract suppression directives from a file's comments, validating
/// rule names against the full workspace vocabulary (lint, protocheck,
/// and kernelcheck rules). Malformed directives become meta
/// diagnostics immediately. See [`directives::parse`] for a version
/// with a caller-supplied rule predicate.
pub fn suppressions(file: &SourceFile) -> (Vec<Suppression>, Vec<MetaDiag>) {
    directives::parse(file, &rules::known_rule)
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Violations waived by a directive (kept for the JSON report).
    pub suppressed: Vec<(Finding, String)>,
    /// Malformed or unused directives.
    pub meta: Vec<MetaDiag>,
}

/// Lint one file's text.
pub fn lint_text(path: &str, text: &str) -> FileOutcome {
    let file = SourceFile::parse(path, text);
    let raw = rules::run_all(&file);
    let (sups, mut meta) = suppressions(&file);
    let mut used = vec![false; sups.len()];
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        let hit = sups
            .iter()
            .position(|s| s.rule == f.rule && s.target_line == f.line);
        match hit {
            Some(i) => {
                used[i] = true;
                let reason = sups[i].reason.clone().unwrap_or_default();
                suppressed.push((f, reason));
            }
            None => findings.push(f),
        }
    }
    for (i, s) in sups.iter().enumerate() {
        if !used[i] {
            // Protocheck-owned rules (`p*`) and kernelcheck-owned
            // rules (`k*`) are validated and consumed by their own
            // passes, which see the whole model; the per-file pass
            // cannot tell whether they are used.
            if s.rule.starts_with('p') || s.rule.starts_with('k') {
                continue;
            }
            meta.push(MetaDiag {
                path: path.to_string(),
                line: s.comment_line,
                message: format!(
                    "unused suppression: allow({}) matches no finding on line {}",
                    s.rule, s.target_line
                ),
            });
        }
    }
    FileOutcome {
        findings,
        suppressed,
        meta,
    }
}

/// Every `.rs` file the lint pass covers, as (absolute path,
/// repo-relative path) pairs in deterministic order. `third_party/`
/// shims and target dirs are out of scope (vendored stand-in code,
/// not project code).
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if matches!(
                    name,
                    "target" | "third_party" | ".git" | "results" | "fixtures"
                ) {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                let rel = p
                    .strip_prefix(root)
                    .map(|r| r.to_string_lossy().replace('\\', "/"))
                    .unwrap_or_else(|_| p.to_string_lossy().into_owned());
                out.push((p, rel));
            }
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<FileOutcome>, usize)> {
    let files = collect_workspace_files(root)?;
    let count = files.len();
    let mut outcomes = Vec::new();
    for (abs, rel) in files {
        let text = std::fs::read_to_string(&abs)?;
        let outcome = lint_text(&rel, &text);
        if !outcome.findings.is_empty()
            || !outcome.suppressed.is_empty()
            || !outcome.meta.is_empty()
        {
            outcomes.push(outcome);
        }
    }
    Ok((outcomes, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_suppression_waives_and_is_used() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // pdnn-lint: allow(l3-no-unwrap): checked by caller\n}\n";
        let o = lint_text("crates/util/src/x.rs", src);
        assert!(o.findings.is_empty(), "{:?}", o.findings);
        assert_eq!(o.suppressed.len(), 1);
        assert_eq!(o.suppressed[0].1, "checked by caller");
        assert!(o.meta.is_empty(), "{:?}", o.meta);
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    // pdnn-lint: allow(l3-no-unwrap): invariant: always Some here\n\n    v.unwrap()\n}\n";
        let o = lint_text("crates/util/src/x.rs", src);
        assert!(o.findings.is_empty(), "{:?}", o.findings);
        assert_eq!(o.suppressed.len(), 1);
    }

    #[test]
    fn suppression_without_reason_is_an_error() {
        let src =
            "fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // pdnn-lint: allow(l3-no-unwrap)\n}\n";
        let o = lint_text("crates/util/src/x.rs", src);
        assert_eq!(o.findings.len(), 1, "finding survives");
        assert_eq!(o.meta.len(), 1);
        assert!(o.meta[0].message.contains("without a reason"));
    }

    #[test]
    fn unused_suppression_is_an_error() {
        let src = "// pdnn-lint: allow(l1-sim-wall-clock): nothing here uses clocks\nfn f() {}\n";
        let o = lint_text("crates/mpisim/src/x.rs", src);
        assert_eq!(o.meta.len(), 1);
        assert!(o.meta[0].message.contains("unused suppression"));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let src = "fn f() {} // pdnn-lint: allow(l9-nonsense): because\n";
        let o = lint_text("crates/util/src/x.rs", src);
        assert_eq!(o.meta.len(), 1);
        assert!(o.meta[0].message.contains("unknown rule"));
    }

    #[test]
    fn suppression_only_waives_its_own_rule() {
        let src = "fn f(x: f64) -> bool {\n    x == 0.0 // pdnn-lint: allow(l3-no-unwrap): wrong rule\n}\n";
        let o = lint_text("crates/util/src/x.rs", src);
        assert_eq!(o.findings.len(), 1, "l4 finding survives");
        assert_eq!(o.meta.len(), 1, "allow is unused");
    }

    #[test]
    fn every_rule_fires_and_every_rule_is_suppressible() {
        // (path, offending fixture, same fixture with an allow).
        let span_body = "    let x = 1;\n".repeat(12);
        let fixtures: Vec<(&str, &str, String, String)> = vec![
            (
                "l1-sim-wall-clock",
                "crates/mpisim/src/fix.rs",
                "fn f() { let t = std::time::Instant::now(); let _ = t; }\n".into(),
                "// pdnn-lint: allow(l1-sim-wall-clock): fixture\nfn f() { let t = std::time::Instant::now(); let _ = t; }\n".into(),
            ),
            (
                "l2-iteration-order",
                "crates/obs/src/fix.rs",
                "use std::collections::HashMap;\n".into(),
                "use std::collections::HashMap; // pdnn-lint: allow(l2-iteration-order): fixture\n".into(),
            ),
            (
                "l3-no-unwrap",
                "crates/util/src/fix.rs",
                "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n".into(),
                "fn f(v: Option<u32>) -> u32 { v.unwrap() } // pdnn-lint: allow(l3-no-unwrap): fixture\n".into(),
            ),
            (
                "l4-float-exact-compare",
                "crates/core/src/fix.rs",
                "fn f(x: f64) -> bool { x == 0.0 }\n".into(),
                "fn f(x: f64) -> bool { x == 0.0 } // pdnn-lint: allow(l4-float-exact-compare): fixture\n".into(),
            ),
            (
                "l5-phase-span",
                "crates/core/src/optimizer.rs",
                format!("pub fn phase() {{\n{span_body}}}\n"),
                format!("// pdnn-lint: allow(l5-phase-span): fixture\npub fn phase() {{\n{span_body}}}\n"),
            ),
        ];
        for (rule, path, bad, allowed) in fixtures {
            let o = lint_text(path, &bad);
            assert!(
                o.findings.iter().any(|f| f.rule == rule),
                "{rule}: fixture did not fire: {:?}",
                o.findings
            );
            let o = lint_text(path, &allowed);
            assert!(
                o.findings.iter().all(|f| f.rule != rule),
                "{rule}: allow did not suppress: {:?}",
                o.findings
            );
            assert!(
                o.suppressed.iter().any(|(f, _)| f.rule == rule),
                "{rule}: suppression not recorded"
            );
            assert!(o.meta.is_empty(), "{rule}: {:?}", o.meta);
        }
    }

    #[test]
    fn display_is_rustc_shaped() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let o = lint_text("crates/util/src/x.rs", src);
        let text = o.findings[0].to_string();
        assert!(text.starts_with("error[l3-no-unwrap]:"), "{text}");
        assert!(text.contains("--> crates/util/src/x.rs:2:"), "{text}");
        assert!(text.contains("v.unwrap()"), "{text}");
    }
}
