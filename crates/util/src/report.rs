//! Plain-text tables and CSV output for the figure/table generators.
//!
//! The benchmark harness regenerates each of the paper's tables and
//! figures as (a) an aligned text table on stdout and (b) a CSV file
//! under `results/`, so the series can be re-plotted.

use crate::error::Error;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-aligned table builder.
///
/// All cells are strings; numeric formatting is the caller's job so
/// each figure controls its own precision.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                // Right-align everything but the first column.
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering under `dir/name.csv`, creating `dir`.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> Result<PathBuf, Error> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Default output directory for experiment artifacts.
pub fn results_dir() -> PathBuf {
    std::env::var_os("PDNN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["config", "time (s)"]);
        t.row(&["1024-1-64".into(), "9656".into()]);
        t.row(&["2048-2-32".into(), "5479".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("config"));
        let lines: Vec<&str> = r.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Numeric column is right-aligned: both data rows end with digits.
        assert!(lines[3].ends_with("9656"));
        assert!(lines[4].ends_with("5479"));
    }

    #[test]
    fn csv_roundtrip_basics() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("config,time (s)"));
        assert_eq!(lines.next(), Some("1024-1-64,9656"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["one"]);
        t.row(&["a".into(), "b".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join(format!("pdnn-report-test-{}", std::process::id()));
        let path = sample().write_csv(&dir, "fig1a").unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("config,"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_display_formats_items() {
        let mut t = Table::new("", &["n", "x"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_csv().contains("1.5,2.25"));
    }
}
