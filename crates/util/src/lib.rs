//! Shared utilities for the `pdnn` workspace.
//!
//! This crate deliberately has no heavyweight dependencies. It provides:
//!
//! * [`rng`] — a small, fully deterministic xoshiro256++ PRNG with
//!   Gaussian sampling (Box–Muller), stream splitting, and shuffling.
//!   Every stochastic component in the workspace takes an explicit
//!   `u64` seed so experiments are reproducible bit-for-bit.
//! * [`stats`] — descriptive statistics (Welford online moments,
//!   percentiles, histograms) used by the benchmark harness.
//! * [`report`] — plain-text table and CSV emitters used by the
//!   figure/table generators.
//! * [`timing`] — named phase timers used to attribute wall-clock time
//!   to algorithm phases (`gradient_loss`, `sync_weights`, …) the same
//!   way the paper's Figures 2–5 attribute cycles, plus the injectable
//!   [`Clock`] every simulation crate must route wall-clock reads
//!   through (enforced by `pdnn-lint`).
//! * [`float`] — the approved float-comparison helpers (`pdnn-lint`
//!   bans raw `==`/`!=` on floats in library code).
//! * [`sync`] — poison-tolerant locking ([`sync::locked`]), the
//!   sanctioned replacement for `Mutex::lock().unwrap()`.
//! * [`error`] — the workspace-wide [`Error`] type that fallible
//!   operations across crates convert into.
//! * [`cast`] — checked numeric conversions for cycle/byte accounting
//!   paths (`pdnn-lint` rule `l6-lossy-cast` bans bare `as` casts
//!   there).

pub mod cast;
pub mod error;
pub mod float;
pub mod report;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod timing;

pub use error::{Error, Result};
pub use rng::Prng;
pub use stats::OnlineStats;
pub use timing::{Clock, ManualClock, PhaseTimer, WallClock};

/// Format a duration given in seconds as a human-readable string.
///
/// Chooses among `µs`, `ms`, `s`, `min`, and `h` so that figure output
/// stays readable across nine orders of magnitude.
pub fn fmt_seconds(secs: f64) -> String {
    if !secs.is_finite() {
        return format!("{secs}");
    }
    let abs = secs.abs();
    if abs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if abs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else if abs < 120.0 {
        format!("{secs:.2}s")
    } else if abs < 7200.0 {
        format!("{:.1}min", secs / 60.0)
    } else {
        format!("{:.2}h", secs / 3600.0)
    }
}

/// Format a count with thousands separators (`18432000` → `18,432,000`).
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let offset = digits.len() % 3;
    for (i, ch) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_seconds_picks_sensible_units() {
        assert!(fmt_seconds(0.0000005).ends_with("µs"));
        assert!(fmt_seconds(0.005).ends_with("ms"));
        assert!(fmt_seconds(3.0).ends_with('s'));
        assert!(fmt_seconds(600.0).ends_with("min"));
        assert!(fmt_seconds(22_680.0).ends_with('h'));
    }

    #[test]
    fn fmt_seconds_survives_non_finite() {
        assert_eq!(fmt_seconds(f64::NAN), "NaN");
        assert_eq!(fmt_seconds(f64::INFINITY), "inf");
    }

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(18_432_000), "18,432,000");
        assert_eq!(fmt_count(1_234_567_890), "1,234,567,890");
    }
}
