//! The workspace-wide error type.
//!
//! Fallible operations across crate boundaries (CSV emission,
//! checkpoint I/O, config validation, telemetry export, communication
//! failures surfaced to callers) all convert into [`Error`], so a
//! training driver can use one `Result` type end to end instead of
//! per-crate ad-hoc `String` / `io::Error` returns.

use std::io;

/// Shared result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Workspace-wide error.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A file or byte stream is not in the expected format (with a
    /// human-readable reason).
    Format(String),
    /// A configuration value violates an invariant.
    Config(String),
    /// A communication-layer failure (see `pdnn_mpisim::CommError`).
    Comm(String),
    /// Text that should parse (JSONL telemetry, CLI values) did not.
    Parse(String),
    /// Training could not proceed or recover (e.g. a reduction over
    /// zero frames, or a failure with no surviving workers).
    Train(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Format(m) => write!(f, "format error: {m}"),
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::Comm(m) => write!(f, "communication failed: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Train(m) => write!(f, "training failed: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_convert_and_expose_source() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn variants_display_their_payload() {
        assert!(Error::Config("momentum must be in [0, 1)".into())
            .to_string()
            .contains("momentum"));
        assert!(Error::Format("bad magic".into())
            .to_string()
            .contains("magic"));
        assert!(Error::Parse("line 3".into()).to_string().contains("line 3"));
        assert!(Error::Comm("rank 2 disconnected".into())
            .to_string()
            .contains("disconnected"));
        assert!(std::error::Error::source(&Error::Comm("x".into())).is_none());
    }
}
