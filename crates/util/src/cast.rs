//! Checked numeric conversions for cycle/byte accounting paths.
//!
//! The perf-model and simulator crates convert between integer counters
//! (bytes, frames, flops, cycles) and `f64` time/throughput math
//! constantly. A bare `as` cast silently truncates or rounds; above
//! 2^53 a `u64 -> f64` cast is lossy and a negative `f64 -> u64` cast
//! saturates. `pdnn-lint` rule `l6-lossy-cast` bans bare `as` numeric
//! casts in those paths; these helpers are the sanctioned replacement.
//! Each one asserts the conversion is exact (or explicitly documents
//! its rounding), so accounting bugs fail fast instead of silently
//! skewing figures.
//!
//! This module itself lives outside the l6 scope, so the `as` casts
//! below are legal; the assertions ahead of them are what make the
//! helpers trustworthy.

/// Largest integer magnitude `f64` represents exactly (2^53).
pub const F64_EXACT_MAX: u64 = 1 << 53;

/// Convert a `u64` counter to `f64`, asserting the value is exactly
/// representable (≤ 2^53). Counters in this workspace (bytes, frames,
/// flops, cycles) stay far below that bound; crossing it means the
/// accounting itself is broken.
#[inline]
pub fn exact_f64(n: u64) -> f64 {
    assert!(
        n <= F64_EXACT_MAX,
        "u64 value {n} exceeds 2^53; not exactly representable as f64"
    );
    n as f64
}

/// Convert a `usize` count to `f64`, asserting exact representability.
#[inline]
pub fn exact_f64_usize(n: usize) -> f64 {
    exact_f64(n as u64)
}

/// Convert an `i64` to `f64`, asserting exact representability
/// (|value| ≤ 2^53).
#[inline]
pub fn exact_f64_i64(n: i64) -> f64 {
    assert!(
        n.unsigned_abs() <= F64_EXACT_MAX,
        "i64 value {n} exceeds 2^53 in magnitude; not exactly representable as f64"
    );
    n as f64
}

/// Convert a non-negative finite `f64` to `u64`, rounding to nearest.
///
/// Asserts the input is finite, non-negative, and ≤ 2^53; used when a
/// modelled time/byte quantity is folded back into an integer counter.
#[inline]
pub fn round_u64(x: f64) -> u64 {
    assert!(
        x.is_finite() && x >= 0.0,
        "cannot convert {x} to u64: not a finite non-negative value"
    );
    let r = x.round();
    assert!(
        r <= F64_EXACT_MAX as f64,
        "f64 value {x} exceeds 2^53; rounding to u64 would be lossy"
    );
    r as u64
}

/// Convert a `u64` to `usize`, asserting it fits the target's pointer
/// width.
#[inline]
pub fn to_usize(n: u64) -> usize {
    let v = usize::try_from(n);
    assert!(
        v.is_ok(),
        "u64 value {n} does not fit in usize on this target"
    );
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_f64_roundtrips_small_counters() {
        for n in [0u64, 1, 4096, 18_432_000, F64_EXACT_MAX] {
            let x = exact_f64(n);
            assert_eq!(x as u64, n);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 2^53")]
    fn exact_f64_rejects_above_2_53() {
        exact_f64(F64_EXACT_MAX + 1);
    }

    #[test]
    fn exact_f64_i64_handles_signs() {
        assert_eq!(exact_f64_i64(-3), -3.0);
        assert_eq!(exact_f64_i64(7), 7.0);
    }

    #[test]
    fn round_u64_rounds_to_nearest() {
        assert_eq!(round_u64(0.0), 0);
        assert_eq!(round_u64(2.4), 2);
        assert_eq!(round_u64(2.6), 3);
        assert_eq!(round_u64(1e9), 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "not a finite non-negative")]
    fn round_u64_rejects_negative() {
        round_u64(-1.0);
    }

    #[test]
    fn to_usize_roundtrips() {
        assert_eq!(to_usize(0), 0);
        assert_eq!(to_usize(123_456), 123_456);
    }
}
