//! Descriptive statistics for benchmark and simulation output.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used to summarize per-rank
/// timings and per-iteration losses without storing every sample.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Percentile of a sample via linear interpolation on sorted data.
///
/// `q` is in `[0, 1]`. Returns `None` for an empty slice.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "percentile q out of range: {q}");
    let mut sorted: Vec<f64> = samples.to_vec();
    // pdnn-lint: allow(l3-no-unwrap): NaN input is a caller bug; the panic message names it, total_cmp would silently misrank
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Load-imbalance factor of a set of per-worker loads: `max / mean`.
///
/// 1.0 means perfectly balanced; the paper's Section V.C argues this
/// factor directly bounds the synchronized step time of the
/// master/worker architecture (everyone waits for the slowest worker).
pub fn imbalance_factor(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let mean = sum / loads.len() as f64;
    if crate::float::exactly_zero(mean) {
        return 1.0;
    }
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max / mean
}

/// Fixed-width histogram over `[lo, hi)` with saturating edge bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "Histogram needs at least one bin");
        assert!(hi > lo, "Histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
        }
    }

    /// Add an observation; values outside the range clamp to edge bins.
    pub fn push(&mut self, x: f64) {
        let nbins = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * nbins as f64).floor() as i64).clamp(0, nbins as i64 - 1) as usize;
        self.bins[idx] += 1;
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 0.5), Some(5.0));
    }

    #[test]
    fn imbalance_factor_balanced_is_one() {
        assert!((imbalance_factor(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn imbalance_factor_detects_skew() {
        // One worker has 2x the mean load.
        let f = imbalance_factor(&[1.0, 1.0, 1.0, 5.0]);
        assert!((f - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 9.9, -3.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.bins()[0], 3); // 0.5, 1.5, -3.0 (clamped)
        assert_eq!(h.bins()[4], 2); // 9.9, 42.0 (clamped)
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
