//! Approved float-comparison helpers.
//!
//! Raw `==`/`!=` on floats is banned in library code by `pdnn-lint`
//! rule `l4-float-exact-compare`: most call sites that write it mean
//! "close enough", and the ones that genuinely mean bit-exact
//! comparison should say so. These helpers are the sanctioned
//! vocabulary for both.

/// True when `x` is exactly `+0.0` or `-0.0`.
///
/// The explicit name marks the intentional exact-zero sentinels
/// (empty-accumulator guards, BLAS-style `beta == 0` overwrite
/// semantics) that a tolerance comparison would get wrong.
#[inline]
pub fn exactly_zero(x: f64) -> bool {
    x == 0.0 // pdnn-lint: allow(l4-float-exact-compare): this helper defines the approved exact comparison
}

/// `f32` variant of [`exactly_zero`].
#[inline]
pub fn exactly_zero_f32(x: f32) -> bool {
    x == 0.0 // pdnn-lint: allow(l4-float-exact-compare): this helper defines the approved exact comparison
}

/// Relative-plus-absolute tolerance equality:
/// `|a - b| <= abs_tol + rel_tol * max(|a|, |b|)`.
///
/// NaN compares unequal to everything, matching IEEE intent.
#[inline]
pub fn approx_eq(a: f64, b: f64, rel_tol: f64, abs_tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= abs_tol + rel_tol * scale
}

/// [`approx_eq`] with the workspace default tolerances
/// (`rel 1e-9`, `abs 1e-12`), the right call for f64 quantities that
/// went through a handful of arithmetic operations.
#[inline]
pub fn close(a: f64, b: f64) -> bool {
    approx_eq(a, b, 1e-9, 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_matches_both_signed_zeros_only() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f64::MIN_POSITIVE));
        assert!(!exactly_zero(f64::NAN));
        assert!(exactly_zero_f32(0.0));
        assert!(!exactly_zero_f32(1e-30));
    }

    #[test]
    fn approx_eq_blends_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(approx_eq(0.0, 1e-13, 0.0, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-12));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0, 1.0));
        assert!(close(3.0, 3.0 + 1e-10));
        assert!(!close(3.0, 3.001));
    }
}
