//! Deterministic pseudo-random number generation.
//!
//! The workspace needs bit-for-bit reproducible experiments across
//! crate-version bumps, so instead of relying on `rand`'s unspecified
//! `StdRng` algorithm we implement **xoshiro256++** (Blackman &
//! Vigna), seeded through SplitMix64 as its authors recommend.
//!
//! [`Prng`] additionally offers Gaussian deviates via the polar
//! Box–Muller transform, Fisher–Yates shuffling, and *stream
//! splitting*: deriving statistically independent child generators so
//! distributed workers can draw from per-rank streams that do not
//! depend on the number of ranks.

/// SplitMix64 step; used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Cloning a `Prng` yields an identical stream; use [`Prng::split`]
/// for independent streams.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
    /// Cached second Gaussian deviate from the last Box–Muller draw.
    spare_normal: Option<f64>,
}

impl Prng {
    /// Create a generator from a 64-bit seed.
    ///
    /// Any seed is valid, including zero (SplitMix64 expansion never
    /// produces the all-zero xoshiro state).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator for `stream`.
    ///
    /// The mapping `(seed, stream) -> child state` is injective in
    /// practice: the child is seeded from a hash of the parent state
    /// and the stream index, so `split(0)`, `split(1)`, … are
    /// decorrelated and stable regardless of how much the parent has
    /// been used before splitting.
    pub fn split(&self, stream: u64) -> Prng {
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is
    /// unbiased and avoids the modulo.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Prng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal deviate (mean 0, stddev 1) via polar Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.normal()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (order unspecified but
    /// deterministic). Panics if `k > n`.
    ///
    /// Uses Floyd's algorithm: O(k) expected work regardless of `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }

    /// Fill a slice with standard-normal `f32` values scaled by `scale`.
    pub fn fill_normal_f32(&mut self, out: &mut [f32], scale: f32) {
        for v in out.iter_mut() {
            *v = self.normal() as f32 * scale;
        }
    }

    /// Fill a slice with uniform `f32` values in `[lo, hi)`.
    pub fn fill_uniform_f32(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = lo + (hi - lo) * self.uniform_f32();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Prng::new(0);
        let mut seen_nonzero = false;
        for _ in 0..16 {
            if r.next_u64() != 0 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let parent = Prng::new(7);
        let mut c0 = parent.split(0);
        let mut c1 = parent.split(1);
        let mut c0_again = parent.split(0);
        assert_eq!(c0.next_u64(), c0_again.next_u64());
        let matches = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Prng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Prng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Prng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "Prng::below(0)")]
    fn below_zero_panics() {
        Prng::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Prng::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut r = Prng::new(6);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_with(3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_lengths() {
        let mut r = Prng::new(8);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42u8];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Prng::new(10);
        for _ in 0..50 {
            let idx = r.sample_indices(100, 13);
            assert_eq!(idx.len(), 13);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), 13);
            assert!(idx.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_indices_full_population() {
        let mut r = Prng::new(10);
        let mut idx = r.sample_indices(8, 8);
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = Prng::new(12);
        for _ in 0..1000 {
            assert!(r.log_normal(1.0, 0.8) > 0.0);
        }
    }

    #[test]
    fn fill_normal_f32_fills_everything() {
        let mut r = Prng::new(13);
        let mut buf = vec![0.0f32; 1024];
        r.fill_normal_f32(&mut buf, 0.1);
        assert!(buf.iter().any(|&x| x != 0.0));
        let rms = (buf.iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / 1024.0).sqrt();
        assert!((rms - 0.1).abs() < 0.02, "rms={rms}");
    }
}
