//! Named phase timers.
//!
//! The paper attributes cycles and MPI time to named functions
//! (`load_data`, `sync_weights_master`, `gradient_loss`,
//! `worker_curvature_product`, …). [`PhaseTimer`] does the same for
//! our functional runs: each phase accumulates wall-clock time and an
//! invocation count, and the result can be rendered or fed to the
//! performance model for calibration.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An injectable time source reporting seconds since its own epoch.
///
/// This is the **only** sanctioned route to wall-clock time in the
/// simulation crates (`pdnn-mpisim`, `pdnn-bgq`, `pdnn-perfmodel`,
/// `pdnn-core`, `pdnn-obs`): components take a `Arc<dyn Clock>` (or
/// construct a [`WallClock`] via this module) instead of calling
/// `std::time::Instant::now()` directly, so simulated runs can swap in
/// a [`ManualClock`] and stay bit-reproducible. Enforced by `pdnn-lint`
/// rule `l1-sim-wall-clock`.
pub trait Clock: Send + Sync {
    /// Seconds elapsed since the clock's epoch. Must be monotonically
    /// non-decreasing.
    fn now(&self) -> f64;
}

/// Real wall-clock time, anchored at construction.
#[derive(Clone, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Clock whose epoch is this call.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// A clock that only moves when told to: the deterministic stand-in
/// for [`WallClock`] in simulated runs and tests.
///
/// Thread-safe; stores seconds as `f64` bits in an atomic so reads
/// never lock.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// Clock frozen at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared clock frozen at `0.0`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Advance by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or NaN (time cannot go backwards).
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "ManualClock::advance: dt must be >= 0, got {dt}");
        // Single compare-exchange loop so concurrent advances compose.
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + dt).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Jump to an absolute time `t >= now()`.
    ///
    /// # Panics
    /// Panics if `t` would move the clock backwards.
    pub fn set(&self, t: f64) {
        let cur = f64::from_bits(self.bits.load(Ordering::Acquire));
        assert!(
            t >= cur,
            "ManualClock::set: cannot rewind from {cur} to {t}"
        );
        self.bits.store(t.to_bits(), Ordering::Release);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

/// Accumulated wall time and call count for one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTotal {
    /// Total seconds spent in the phase.
    pub seconds: f64,
    /// Number of timed invocations.
    pub calls: u64,
}

/// Accumulates wall-clock time per named phase.
///
/// Phases are usually identified by `&'static str` so hot paths do
/// not allocate, but owned names (e.g. phase labels parsed back from
/// a telemetry export) are accepted too. Iteration order is
/// alphabetical (BTreeMap), which keeps reports deterministic.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimer {
    phases: BTreeMap<Cow<'static, str>, PhaseTotal>,
}

impl PhaseTimer {
    /// Empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure and attribute its duration to `phase`.
    pub fn time<R>(&mut self, phase: impl Into<Cow<'static, str>>, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Add `seconds` to `phase` directly (used when the caller already
    /// measured, e.g. simulated time).
    pub fn add(&mut self, phase: impl Into<Cow<'static, str>>, seconds: f64) {
        let entry = self.phases.entry(phase.into()).or_default();
        entry.seconds += seconds;
        entry.calls += 1;
    }

    /// Total for one phase, zero if never recorded.
    pub fn get(&self, phase: &str) -> PhaseTotal {
        self.phases.get(phase).copied().unwrap_or_default()
    }

    /// All phases in alphabetical order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, PhaseTotal)> + '_ {
        self.phases.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// Sum of all phase times.
    pub fn total_seconds(&self) -> f64 {
        self.phases.values().map(|p| p.seconds).sum()
    }

    /// Merge another timer into this one (e.g. across worker threads).
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (name, tot) in other.phases.iter() {
            let entry = self.phases.entry(name.clone()).or_default();
            entry.seconds += tot.seconds;
            entry.calls += tot.calls;
        }
    }

    /// Render a fixed-width report, longest phase first.
    pub fn report(&self) -> String {
        let mut rows: Vec<(&str, PhaseTotal)> =
            self.phases.iter().map(|(k, &v)| (k.as_ref(), v)).collect();
        rows.sort_by(|a, b| b.1.seconds.total_cmp(&a.1.seconds));
        let total = self.total_seconds().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>8} {:>7}\n",
            "phase", "seconds", "calls", "share"
        ));
        for (name, t) in rows {
            out.push_str(&format!(
                "{:<28} {:>12.6} {:>8} {:>6.1}%\n",
                name,
                t.seconds,
                t.calls,
                100.0 * t.seconds / total
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_from_zero() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 0.0 && b >= a);
    }

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
        c.set(10.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn manual_clock_refuses_to_rewind() {
        let c = ManualClock::new();
        c.advance(5.0);
        c.set(1.0);
    }

    #[test]
    fn clocks_are_usable_as_trait_objects() {
        let manual = ManualClock::shared();
        manual.advance(3.0);
        let clock: Arc<dyn Clock> = manual;
        assert!((clock.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_accumulates_and_counts() {
        let mut t = PhaseTimer::new();
        let x = t.time("work", || 21 * 2);
        assert_eq!(x, 42);
        t.time("work", || ());
        let tot = t.get("work");
        assert_eq!(tot.calls, 2);
        assert!(tot.seconds >= 0.0);
    }

    #[test]
    fn add_records_simulated_time() {
        let mut t = PhaseTimer::new();
        t.add("comm", 1.5);
        t.add("comm", 0.5);
        let tot = t.get("comm");
        assert_eq!(tot.calls, 2);
        assert!((tot.seconds - 2.0).abs() < 1e-12);
        assert!((t.total_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_phase_is_zero() {
        let t = PhaseTimer::new();
        assert_eq!(t.get("nope"), PhaseTotal::default());
    }

    #[test]
    fn merge_sums_phase_totals() {
        let mut a = PhaseTimer::new();
        a.add("x", 1.0);
        a.add("y", 2.0);
        let mut b = PhaseTimer::new();
        b.add("y", 3.0);
        b.add("z", 4.0);
        a.merge(&b);
        assert!((a.get("x").seconds - 1.0).abs() < 1e-12);
        assert!((a.get("y").seconds - 5.0).abs() < 1e-12);
        assert_eq!(a.get("y").calls, 2);
        assert!((a.get("z").seconds - 4.0).abs() < 1e-12);
    }

    #[test]
    fn report_lists_phases_by_share() {
        let mut t = PhaseTimer::new();
        t.add("small", 1.0);
        t.add("big", 9.0);
        let rep = t.report();
        let big_pos = rep.find("big").unwrap();
        let small_pos = rep.find("small").unwrap();
        assert!(big_pos < small_pos, "{rep}");
        assert!(rep.contains("90.0%"), "{rep}");
    }

    #[test]
    fn phases_iterates_alphabetically() {
        let mut t = PhaseTimer::new();
        t.add("b", 1.0);
        t.add("a", 1.0);
        let names: Vec<&str> = t.phases().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
