//! Poison-tolerant locking.
//!
//! `Mutex::lock().unwrap()` is the single most common panic site in
//! library code, and the panic it raises is almost never the
//! interesting one: a poisoned mutex means some *other* thread already
//! panicked while holding the guard, and that panic is what the test
//! harness or `run_world` will report. Re-panicking here only buries
//! the original failure under a `PoisonError` backtrace.
//!
//! [`locked`] recovers the guard from a poisoned mutex instead. All
//! state guarded by mutexes in this workspace is telemetry or caches —
//! plain data with no invariants that a mid-update panic could break
//! in a way that matters more than the panic itself.

use std::sync::{Mutex, MutexGuard};

/// Lock `m`, recovering the guard if the mutex is poisoned.
pub fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn locks_a_healthy_mutex() {
        let m = Mutex::new(7);
        *locked(&m) += 1;
        assert_eq!(*locked(&m), 8);
    }

    #[test]
    fn recovers_from_poisoning() {
        let m = Mutex::new(vec![1, 2, 3]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned());
        assert_eq!(locked(&m).len(), 3, "data still reachable");
    }
}
