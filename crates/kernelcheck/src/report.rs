//! Machine-readable report (`results/kernelcheck_report.json`).
//!
//! Hand-rolled JSON, like `pdnn_lint::report` — the workspace has no
//! serde. The coverage section is the acceptance artifact: every
//! `unsafe` site in the kernel zone, the contracts that cover it, and
//! whether verification succeeded.

use crate::check::{CoverageSite, KernelSummary};
use crate::mutate::MutationResult;
use crate::StaticOutcome;
use pdnn_lint::report::{json_escape, push_findings, push_str_list, push_suppressions};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Everything one CLI invocation learned.
pub struct Report<'a> {
    pub static_outcome: Option<&'a StaticOutcome>,
    pub mutation_results: Option<&'a [MutationResult]>,
}

fn push_coverage(out: &mut String, coverage: &[CoverageSite]) {
    let covered = coverage.iter().filter(|c| c.covered).count();
    let _ = write!(
        out,
        "{{\"unsafe_sites\": {}, \"covered\": {covered}, \"sites\": [",
        coverage.len()
    );
    for (i, c) in coverage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"line\":{},\"kind\":\"{}\",\"item\":\"{}\",\"covered\":{},\"via\":",
            json_escape(&c.path),
            c.line,
            c.kind,
            json_escape(&c.item),
            c.covered,
        );
        push_str_list(out, &c.via);
        out.push('}');
    }
    out.push_str("]}");
}

fn push_kernels(out: &mut String, kernels: &[KernelSummary]) {
    out.push('[');
    for (i, k) in kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"name\":\"{}\",\"line\":{},\"unsafe\":{},\"contracts\":{},\
             \"accesses\":{},\"intrinsics\":{},\"preconditions\":{}}}",
            json_escape(&k.path),
            json_escape(&k.name),
            k.line,
            k.is_unsafe,
            k.contracts,
            k.accesses,
            k.intrinsics,
            k.preconditions,
        );
    }
    out.push(']');
}

/// Render the report as a JSON string.
pub fn render(report: &Report<'_>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"pdnn-kernelcheck\",\n");
    out.push_str("  \"static\": ");
    match report.static_outcome {
        Some(o) => {
            let _ = write!(
                out,
                "{{\"findings\": {}, \"suppressed\": {}, \"meta\": {}, \"violations\": ",
                o.findings.len(),
                o.suppressed.len(),
                o.meta.len()
            );
            push_findings(&mut out, &o.findings);
            out.push_str(", \"suppressions\": ");
            push_suppressions(&mut out, &o.suppressed);
            out.push_str(", \"coverage\": ");
            push_coverage(&mut out, &o.coverage);
            out.push_str(", \"kernels\": ");
            push_kernels(&mut out, &o.kernels);
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"mutation_selftest\": ");
    match report.mutation_results {
        Some(results) => {
            let caught = results.iter().filter(|r| r.caught).count();
            let _ = write!(
                out,
                "{{\"mutations\": {}, \"caught\": {caught}, \"results\": [",
                results.len()
            );
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let fired: Vec<String> = r.fired_rules.clone();
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"expected\":\"{}\",\"caught\":{},\"flagged\":{},\
                     \"what\":\"{}\",\"fired\":",
                    json_escape(r.name),
                    json_escape(r.expected_rule),
                    r.caught,
                    r.flagged,
                    json_escape(r.what),
                );
                push_str_list(&mut out, &fired);
                out.push('}');
            }
            out.push_str("]}");
        }
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

/// Write the report under `<root>/results/kernelcheck_report.json`.
pub fn write(root: &Path, report: &Report<'_>) -> io::Result<()> {
    pdnn_lint::report::write_results(root, "kernelcheck_report.json", &render(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_shaped_json_even_when_empty() {
        let r = Report {
            static_outcome: None,
            mutation_results: None,
        };
        let s = render(&r);
        assert!(s.contains("\"static\": null"));
        assert!(s.contains("\"mutation_selftest\": null"));
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
    }
}
