//! CLI: `pdnn-kernelcheck [--static] [--mutations] [root]`.
//!
//! With no pass flags, runs both the static verification and the
//! mutation self-test. Writes `results/kernelcheck_report.json` under
//! the workspace root and exits nonzero when any pass fails: a
//! finding, a meta diagnostic, an uncovered unsafe site, or a missed
//! mutation.

use pdnn_kernelcheck::{mutate, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    run_static: bool,
    run_mutations: bool,
    root: PathBuf,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        run_static: false,
        run_mutations: false,
        root: PathBuf::from("."),
    };
    let mut any_flag = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--static" => {
                cli.run_static = true;
                any_flag = true;
            }
            "--mutations" => {
                cli.run_mutations = true;
                any_flag = true;
            }
            "--help" | "-h" => {
                return Err("usage: pdnn-kernelcheck [--static] [--mutations] [root]".to_string())
            }
            other if !other.starts_with('-') => cli.root = PathBuf::from(other),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !any_flag {
        cli.run_static = true;
        cli.run_mutations = true;
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;

    // The clean tree is also the mutation baseline, so load it for
    // either pass.
    let tree = match pdnn_kernelcheck::Tree::load(&cli.root) {
        Ok(tree) => tree,
        Err(err) => {
            eprintln!(
                "error: cannot read the kernel zone under {:?}: {err}",
                cli.root
            );
            return ExitCode::from(2);
        }
    };
    let outcome = pdnn_kernelcheck::analyze(&tree);

    if cli.run_static {
        for finding in &outcome.findings {
            println!("{finding}\n");
        }
        for diag in &outcome.meta {
            println!("{diag}\n");
        }
        for (finding, reason) in &outcome.suppressed {
            println!(
                "note: suppressed {} at {}:{} ({reason})",
                finding.rule, finding.path, finding.line
            );
        }
        let covered = outcome.coverage.iter().filter(|c| c.covered).count();
        for c in outcome.coverage.iter().filter(|c| !c.covered) {
            println!("UNCOVERED {} `{}` at {}:{}", c.kind, c.item, c.path, c.line);
        }
        println!(
            "kernelcheck static: {} finding(s), {} suppressed, {}/{} unsafe sites covered",
            outcome.findings.len(),
            outcome.suppressed.len(),
            covered,
            outcome.coverage.len()
        );
        if !outcome.is_clean() {
            failed = true;
        }
    }

    let mutation_results = if cli.run_mutations {
        match mutate::run_mutations(&tree, &outcome) {
            Ok(results) => {
                let caught = results.iter().filter(|r| r.caught).count();
                for r in results.iter().filter(|r| !r.caught) {
                    println!(
                        "MISSED {}: expected {} but only {:?} fired",
                        r.name, r.expected_rule, r.fired_rules
                    );
                }
                println!("kernelcheck mutations: {caught}/{} caught", results.len());
                if caught != results.len() {
                    failed = true;
                }
                Some(results)
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
                None
            }
        }
    } else {
        None
    };

    let rep = report::Report {
        static_outcome: Some(&outcome),
        mutation_results: mutation_results.as_deref(),
    };
    if let Err(err) = report::write(&cli.root, &rep) {
        eprintln!("error: cannot write results/kernelcheck_report.json: {err}");
        return ExitCode::from(2);
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
