//! Zone model: lexical extraction of everything the checker reasons
//! about from a kernel-zone source file.
//!
//! Built on the same masking lexer as `pdnn-lint` ([`SourceFile`]):
//! comment bodies and string interiors are blanked, so token scans
//! cannot be fooled by code-shaped text in docs. Contract annotations
//! (`// kernel-contract: ...`) are the one thing read from the *raw*
//! text, because they live inside comments by design — as do the
//! feature names inside `#[target_feature(enable = "...")]` and
//! `is_x86_feature_detected!("...")`, which are string literals.

use pdnn_lint::source::{find_word, is_ident_char, match_brace, SourceFile};
use std::collections::BTreeMap;
use std::ops::Range;

/// How a kernel parameter is passed, as far as the checker cares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    PtrConst,
    PtrMut,
    Usize,
    Other,
}

#[derive(Clone, Debug)]
pub struct Param {
    pub name: String,
    pub kind: ParamKind,
    /// Raw type text, e.g. `&mut [[f32; NR]; MR]` — used to derive
    /// guaranteed element counts for wrapper parameters.
    pub ty: String,
}

/// One `<param> points-to len >= <expr>` contract line.
#[derive(Clone, Debug)]
pub struct LenContract {
    pub param: String,
    /// Bound expression text, e.g. `kc * MR`.
    pub bound: String,
    pub noalias: bool,
    /// Declared alignment in bytes (`align(N)` flag); 0 = none.
    pub align: u32,
    /// 1-based line of the contract comment.
    pub line: usize,
}

/// The `requires target_feature(...)` contract line.
#[derive(Clone, Debug)]
pub struct Requires {
    pub features: Vec<String>,
    pub baseline: Option<String>,
    pub line: usize,
}

/// One raw-memory access: a deref or a load/store intrinsic.
#[derive(Clone, Debug)]
pub struct MemAccess {
    /// Identifier the access goes through (param or local pointer).
    pub base: String,
    /// `.add(..)` / `.offset(..)` argument text, if any.
    pub add_expr: Option<String>,
    /// Elements touched starting at the effective offset.
    pub width: i64,
    /// Alignment in bytes the operation demands; 0 = unaligned-ok.
    pub req_align: u32,
    /// Intrinsic name, or `None` for a plain `*p` deref.
    pub intrinsic: Option<String>,
    /// Byte offset in the masked text (diagnostics + loop scoping).
    pub offset: usize,
}

/// One SIMD intrinsic use (memory-touching or not) for feature checks.
#[derive(Clone, Debug)]
pub struct IntrinsicUse {
    pub name: String,
    pub feature: &'static str,
    pub offset: usize,
}

/// Upper bound of a loop variable.
#[derive(Clone, Debug)]
pub enum LoopMax {
    /// `for v in lo..end` (`inclusive` for `..=`): max is `end`
    /// (inclusive) or `end - 1` (exclusive).
    Expr {
        text: String,
        inclusive: bool,
    },
    /// `for (v, _) in arr.iter..()`: max is `arr.len() - 1`.
    ArrayLen(String),
    Unknown,
}

#[derive(Clone, Debug)]
pub struct LoopInfo {
    pub var: String,
    /// Masked byte range of the loop body.
    pub scope: Range<usize>,
    pub max: LoopMax,
}

/// `let p = base.add(expr);` — a derived pointer.
#[derive(Clone, Debug)]
pub struct PtrLet {
    pub base: String,
    pub add_expr: Option<String>,
    pub offset: usize,
}

/// One `kernel_precondition!(cond, "msg")` in a wrapper body.
#[derive(Clone, Debug)]
pub struct Precondition {
    /// Raw text of the condition argument.
    pub cond: String,
    pub line: usize,
}

/// Everything extracted about one `fn` in the zone.
#[derive(Clone, Debug)]
pub struct KernelFn {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub is_unsafe: bool,
    pub is_pub: bool,
    pub body: Range<usize>,
    pub params: Vec<Param>,
    pub contracts: Vec<LenContract>,
    pub requires: Option<Requires>,
    /// Features from `#[target_feature(enable = "...")]`.
    pub target_features: Vec<String>,
    pub accesses: Vec<MemAccess>,
    pub intrinsics: Vec<IntrinsicUse>,
    pub loops: Vec<LoopInfo>,
    pub ptr_lets: BTreeMap<String, PtrLet>,
    /// Local fixed-size arrays: name -> length expression text.
    pub arrays: BTreeMap<String, String>,
    pub preconditions: Vec<Precondition>,
}

/// An `unsafe { ... }` block outside any `unsafe fn`.
#[derive(Clone, Debug)]
pub struct UnsafeBlock {
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// Name of the enclosing fn, when there is one.
    pub in_fn: Option<String>,
}

/// Parsed model of one zone file.
pub struct ZoneFile {
    pub file: SourceFile,
    pub fns: Vec<KernelFn>,
    pub unsafe_blocks: Vec<UnsafeBlock>,
    /// Malformed contract annotations: (1-based line, message).
    pub malformed: Vec<(usize, String)>,
}

/// A call expression: callee position plus raw argument texts.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub offset: usize,
    pub args: Vec<String>,
}

const CONTRACT_TAG: &str = "kernel-contract:";

/// `pub const NAME: usize = N;` table from a driver file (the
/// micro-tile constants `MR`/`NR` in `gemm/mod.rs`).
pub fn const_table(file: &SourceFile) -> BTreeMap<String, i64> {
    let mut out = BTreeMap::new();
    for (_, line) in file.masked_lines() {
        let t = line.trim();
        let t = t.strip_prefix("pub ").unwrap_or(t);
        let Some(rest) = t.strip_prefix("const ") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once(':') else {
            continue;
        };
        let Some((ty, val)) = rest.split_once('=') else {
            continue;
        };
        if ty.trim() != "usize" {
            continue;
        }
        let val = val.trim().trim_end_matches(';').trim();
        if let Ok(n) = val.parse::<i64>() {
            out.insert(name.trim().to_string(), n);
        }
    }
    out
}

/// Minimum CPU feature implied by an intrinsic name; `None` for
/// identifiers that are not recognized SIMD intrinsics.
pub fn feature_of(name: &str) -> Option<&'static str> {
    if let Some(rest) = name.strip_prefix("_mm512_") {
        // The f32x8 lane-group ops (broadcast/insert/extract) are the
        // AVX512DQ subset; everything else _mm512_ here is AVX512F.
        if rest.contains("f32x8") {
            return Some("avx512dq");
        }
        return Some("avx512f");
    }
    if name.starts_with("_mm256_") {
        return Some("avx");
    }
    if name.starts_with("_mm_") {
        return Some("sse2");
    }
    if name.starts_with('v')
        && name.contains('q')
        && (name.ends_with("_f32") || name.ends_with("_f64"))
    {
        return Some("neon");
    }
    None
}

/// (elements touched, required alignment in bytes) for memory-touching
/// intrinsics. Unaligned variants require nothing; aligned variants
/// require the full vector width.
pub fn mem_intrinsic(name: &str) -> Option<(i64, u32)> {
    Some(match name {
        "_mm256_loadu_ps" | "_mm256_storeu_ps" => (8, 0),
        "_mm256_loadu_pd" | "_mm256_storeu_pd" => (4, 0),
        "_mm512_loadu_ps" | "_mm512_storeu_ps" => (16, 0),
        "_mm512_loadu_pd" | "_mm512_storeu_pd" => (8, 0),
        "_mm256_load_ps" | "_mm256_store_ps" => (8, 32),
        "_mm256_load_pd" | "_mm256_store_pd" => (4, 32),
        "_mm512_load_ps" | "_mm512_store_ps" => (16, 64),
        "_mm512_load_pd" | "_mm512_store_pd" => (8, 64),
        "_mm_loadu_ps" | "_mm_storeu_ps" => (4, 0),
        "_mm_load_ps" | "_mm_store_ps" => (4, 16),
        "vld1q_f32" | "vst1q_f32" => (4, 0),
        "vld1q_f64" | "vst1q_f64" => (2, 0),
        _ => return None,
    })
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn ident_at(text: &str, i: usize) -> Option<(String, usize)> {
    let b = text.as_bytes();
    if i >= b.len() {
        return None;
    }
    let c = b[i] as char;
    if !(c.is_alphabetic() || c == '_') {
        return None;
    }
    let mut j = i;
    while j < b.len() && is_ident_char(b[j] as char) {
        j += 1;
    }
    Some((text[i..j].to_string(), j))
}

/// Byte offset of the `)`/`]` matching the opener at `open`.
pub fn match_delim(text: &str, open: usize) -> Option<usize> {
    let b = text.as_bytes();
    let (op, cl) = match b.get(open) {
        Some(b'(') => (b'(', b')'),
        Some(b'[') => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == op {
            depth += 1;
        } else if c == cl {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Split `text` on commas at zero paren/bracket depth.
pub fn split_top_commas(text: &str) -> Vec<&str> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < text.len() || !out.is_empty() {
        out.push(&text[start..]);
    }
    out
}

/// Parse a pointer expression: `IDENT`, `IDENT.add(EXPR)`, or
/// `IDENT.offset(EXPR)`.
fn parse_ptr_expr(text: &str) -> Option<(String, Option<String>)> {
    let t = text.trim();
    let (base, mut i) = ident_at(t, 0)?;
    if i == t.len() {
        return Some((base, None));
    }
    let b = t.as_bytes();
    if b[i] != b'.' {
        return None;
    }
    i += 1;
    let (method, j) = ident_at(t, i)?;
    if method != "add" && method != "offset" {
        return None;
    }
    let open = skip_ws(b, j);
    if b.get(open) != Some(&b'(') {
        return None;
    }
    let close = match_delim(t, open)?;
    if t[close + 1..].trim() != "" {
        return None;
    }
    Some((base, Some(t[open + 1..close].to_string())))
}

/// Find a call to `callee` inside `range` of `file`'s masked text:
/// the identifier followed (after whitespace) by `(`. Returns the raw
/// argument texts, split at top-level commas.
pub fn find_call_in(file: &SourceFile, range: &Range<usize>, callee: &str) -> Option<CallSite> {
    find_calls_in(file, range, callee).into_iter().next()
}

/// All calls to `callee` inside `range` (masked view; args from raw).
pub fn find_calls_in(file: &SourceFile, range: &Range<usize>, callee: &str) -> Vec<CallSite> {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = range.start;
    while let Some(pos) = find_word(masked, callee, i) {
        if pos >= range.end {
            break;
        }
        i = pos + callee.len();
        let open = skip_ws(b, pos + callee.len());
        if b.get(open) != Some(&b'(') {
            continue;
        }
        let Some(close) = match_delim(masked, open) else {
            continue;
        };
        let args = split_top_commas(&file.raw[open + 1..close])
            .iter()
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        out.push(CallSite { offset: pos, args });
    }
    out
}

/// Parse one zone source file into its checkable model.
pub fn parse_zone_file(path: &str, text: &str) -> ZoneFile {
    let file = SourceFile::parse(path, text);
    let mut fns = Vec::new();
    let mut malformed = Vec::new();
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let masked_lines: Vec<&str> = file.masked.lines().collect();

    for item in file.functions() {
        if file.test_lines.get(item.line).copied().unwrap_or(false) {
            continue;
        }
        let Some(body) = item.body.clone() else {
            continue;
        };
        let fn_line_masked = masked_lines.get(item.line).copied().unwrap_or("");
        let is_unsafe = find_word(fn_line_masked, "unsafe", 0).is_some();
        let params = parse_params(&file, &item.name, item.line);
        let (contracts, requires, target_features, mut bad) =
            parse_annotations(&raw_lines, item.line);
        malformed.append(&mut bad);
        let mut f = KernelFn {
            name: item.name.clone(),
            line: item.line + 1,
            is_unsafe,
            is_pub: item.is_pub,
            body: body.clone(),
            params,
            contracts,
            requires,
            target_features,
            accesses: Vec::new(),
            intrinsics: Vec::new(),
            loops: Vec::new(),
            ptr_lets: BTreeMap::new(),
            arrays: BTreeMap::new(),
            preconditions: Vec::new(),
        };
        scan_lets(&file, &mut f);
        scan_loops(&file, &mut f);
        scan_intrinsics(&file, &mut f);
        scan_derefs(&file, &mut f);
        scan_preconditions(&file, &mut f);
        fns.push(f);
    }

    let unsafe_blocks = scan_unsafe_blocks(&file, &fns);
    ZoneFile {
        file,
        fns,
        unsafe_blocks,
        malformed,
    }
}

/// Parameter list of the fn named `name` whose `fn` keyword is on
/// (0-based) `line`.
fn parse_params(file: &SourceFile, name: &str, line: usize) -> Vec<Param> {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut line_start = 0;
    for (i, l) in masked.lines().enumerate() {
        if i == line {
            break;
        }
        line_start += l.len() + 1;
    }
    let Some(name_pos) = find_word(masked, name, line_start) else {
        return Vec::new();
    };
    let mut i = name_pos + name.len();
    // Skip a generic parameter list `<...>`.
    i = skip_ws(b, i);
    if b.get(i) == Some(&b'<') {
        let mut depth = 0i32;
        while i < b.len() {
            match b[i] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i = skip_ws(b, i);
    }
    if b.get(i) != Some(&b'(') {
        return Vec::new();
    }
    let Some(close) = match_delim(masked, i) else {
        return Vec::new();
    };
    split_top_commas(&masked[i + 1..close])
        .iter()
        .filter_map(|p| {
            let (pname, ty) = p.split_once(':')?;
            let pname = pname.trim().trim_start_matches("mut ").trim();
            let ty = ty.trim();
            let kind = if ty.contains("*const") {
                ParamKind::PtrConst
            } else if ty.contains("*mut") {
                ParamKind::PtrMut
            } else if ty == "usize" {
                ParamKind::Usize
            } else {
                ParamKind::Other
            };
            Some(Param {
                name: pname.to_string(),
                kind,
                ty: ty.to_string(),
            })
        })
        .collect()
}

/// Contract comments and `#[target_feature]` attributes directly above
/// (0-based) line `fn_line`.
#[allow(clippy::type_complexity)]
fn parse_annotations(
    raw_lines: &[&str],
    fn_line: usize,
) -> (
    Vec<LenContract>,
    Option<Requires>,
    Vec<String>,
    Vec<(usize, String)>,
) {
    let mut contracts = Vec::new();
    let mut requires = None;
    let mut features = Vec::new();
    let mut malformed = Vec::new();
    let mut l = fn_line;
    while l > 0 {
        let above = raw_lines[l - 1].trim();
        if !(above.starts_with("#[") || above.starts_with("//")) {
            break;
        }
        l -= 1;
    }
    for (i, line) in raw_lines.iter().enumerate().take(fn_line).skip(l) {
        let t = line.trim();
        let lineno = i + 1;
        if t.starts_with("#[target_feature") {
            if let Some(inner) = t.split("enable = \"").nth(1) {
                if let Some(list) = inner.split('"').next() {
                    features.extend(list.split(',').map(|f| f.trim().to_string()));
                }
            }
            continue;
        }
        let Some(at) = t.find(CONTRACT_TAG) else {
            continue;
        };
        let rest = t[at + CONTRACT_TAG.len()..].trim();
        match parse_contract_line(rest, lineno) {
            Ok(ContractLine::Len(c)) => contracts.push(c),
            Ok(ContractLine::Requires(r)) => requires = Some(r),
            Err(msg) => malformed.push((lineno, msg)),
        }
    }
    (contracts, requires, features, malformed)
}

enum ContractLine {
    Len(LenContract),
    Requires(Requires),
}

fn parse_contract_line(rest: &str, line: usize) -> Result<ContractLine, String> {
    if let Some(args) = rest.strip_prefix("requires target_feature(") {
        let Some(close) = args.find(')') else {
            return Err("unclosed `requires target_feature(`".to_string());
        };
        let features = args[..close]
            .split(',')
            .map(|f| f.trim().to_string())
            .filter(|f| !f.is_empty())
            .collect();
        let tail = args[close + 1..].trim().trim_start_matches(',').trim();
        let baseline = if let Some(b) = tail.strip_prefix("baseline(") {
            let Some(bc) = b.find(')') else {
                return Err("unclosed `baseline(`".to_string());
            };
            Some(b[..bc].trim().to_string())
        } else if tail.is_empty() {
            None
        } else {
            return Err(format!("unrecognized trailing contract text `{tail}`"));
        };
        return Ok(ContractLine::Requires(Requires {
            features,
            baseline,
            line,
        }));
    }
    let Some((param, _)) = ident_at(rest, 0) else {
        return Err(format!("contract must name a parameter: `{rest}`"));
    };
    let after = rest[param.len()..].trim();
    let Some(bound_and_flags) = after.strip_prefix("points-to len >=") else {
        return Err(format!(
            "expected `points-to len >= <expr>` after `{param}`"
        ));
    };
    let mut parts = split_top_commas(bound_and_flags).into_iter();
    let bound = parts.next().map(str::trim).unwrap_or("").to_string();
    if bound.is_empty() {
        return Err(format!("empty length bound for `{param}`"));
    }
    let mut noalias = false;
    let mut align = 0u32;
    for flag in parts {
        let flag = flag.trim();
        if flag == "noalias" {
            noalias = true;
        } else if let Some(a) = flag.strip_prefix("align(") {
            let a = a.trim_end_matches(')');
            align = a.parse().map_err(|_| format!("bad align flag `{flag}`"))?;
        } else {
            return Err(format!("unknown contract flag `{flag}` for `{param}`"));
        }
    }
    Ok(ContractLine::Len(LenContract {
        param,
        bound,
        noalias,
        align,
        line,
    }))
}

/// `let [mut] NAME = <rhs>;` scan: derived pointers and fixed arrays.
fn scan_lets(file: &SourceFile, f: &mut KernelFn) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut i = f.body.start;
    while let Some(pos) = find_word(masked, "let", i) {
        if pos >= f.body.end {
            break;
        }
        i = pos + 3;
        let mut j = skip_ws(b, pos + 3);
        if let Some(after_mut) = masked[j..].strip_prefix("mut ").map(|_| j + 4) {
            j = skip_ws(b, after_mut);
        }
        let Some((name, after_name)) = ident_at(masked, j) else {
            continue;
        };
        let j = skip_ws(b, after_name);
        if b.get(j) != Some(&b'=') {
            continue; // `let (i, ri)` destructuring etc.
        }
        let rhs_start = skip_ws(b, j + 1);
        if b.get(rhs_start) == Some(&b'[') {
            // Fixed-size array: `[ELEM; LEN]`.
            if let Some(close) = match_delim(masked, rhs_start) {
                let inner = &masked[rhs_start + 1..close];
                if let Some(semi) = find_top_semicolon(inner) {
                    f.arrays.insert(name, inner[semi + 1..].trim().to_string());
                }
                i = close;
            }
            continue;
        }
        // Statement end: `;` at zero delimiter depth.
        let mut depth = 0i32;
        let mut k = rhs_start;
        while k < f.body.end {
            match b[k] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some((base, add_expr)) = parse_ptr_expr(&masked[rhs_start..k]) {
            let base_is_ptr = f.ptr_lets.contains_key(&base)
                || f.params.iter().any(|p| {
                    p.name == base && matches!(p.kind, ParamKind::PtrConst | ParamKind::PtrMut)
                });
            if base_is_ptr {
                f.ptr_lets.insert(
                    name,
                    PtrLet {
                        base,
                        add_expr,
                        offset: pos,
                    },
                );
            }
        }
        i = k;
    }
}

fn find_top_semicolon(text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in text.bytes().enumerate() {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b';' if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

fn scan_loops(file: &SourceFile, f: &mut KernelFn) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut i = f.body.start;
    while let Some(pos) = find_word(masked, "for", i) {
        if pos >= f.body.end {
            break;
        }
        i = pos + 3;
        let j = skip_ws(b, pos + 3);
        let (var, max, header_end) = if b.get(j) == Some(&b'(') {
            // `for (v, x) in arr.iter..()` — enumerate index pattern.
            let Some(close) = match_delim(masked, j) else {
                continue;
            };
            let pats = split_top_commas(&masked[j + 1..close]);
            let Some(first) = pats.first().map(|p| p.trim()) else {
                continue;
            };
            let Some((var, _)) = ident_at(first, 0) else {
                continue;
            };
            let after_in = match find_word(masked, "in", close) {
                Some(p) if p < f.body.end => skip_ws(b, p + 2),
                _ => continue,
            };
            let Some((arr, arr_end)) = ident_at(masked, after_in) else {
                continue;
            };
            let max = if masked[arr_end..].starts_with(".iter") {
                LoopMax::ArrayLen(arr)
            } else {
                LoopMax::Unknown
            };
            (var, max, after_in)
        } else {
            let Some((var, var_end)) = ident_at(masked, j) else {
                continue;
            };
            let after_in = match find_word(masked, "in", var_end) {
                Some(p) if p < f.body.end => skip_ws(b, p + 2),
                _ => continue,
            };
            // Range text runs to the body `{` at zero paren depth.
            let mut depth = 0i32;
            let mut k = after_in;
            while k < f.body.end {
                match b[k] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let range_text = masked[after_in..k].trim();
            let max = if let Some((_, end)) = range_text.split_once("..=") {
                LoopMax::Expr {
                    text: end.trim().to_string(),
                    inclusive: true,
                }
            } else if let Some((_, end)) = range_text.split_once("..") {
                LoopMax::Expr {
                    text: end.trim().to_string(),
                    inclusive: false,
                }
            } else {
                LoopMax::Unknown
            };
            (var, max, after_in)
        };
        // Body: first `{` at zero delimiter depth after the header.
        let mut depth = 0i32;
        let mut k = header_end;
        let mut scope = None;
        while k < f.body.end {
            match b[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    if let Some(close) = match_brace(masked, k) {
                        scope = Some(k + 1..close);
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(scope) = scope {
            f.loops.push(LoopInfo { var, scope, max });
        }
    }
}

fn scan_intrinsics(file: &SourceFile, f: &mut KernelFn) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut i = f.body.start;
    while i < f.body.end {
        let c = b[i] as char;
        if !(c.is_alphabetic() || c == '_') {
            i += 1;
            continue;
        }
        if i > 0 && is_ident_char(b[i - 1] as char) {
            i += 1;
            continue;
        }
        let Some((name, end)) = ident_at(masked, i) else {
            i += 1;
            continue;
        };
        let Some(feature) = feature_of(&name) else {
            i = end;
            continue;
        };
        f.intrinsics.push(IntrinsicUse {
            name: name.clone(),
            feature,
            offset: i,
        });
        if let Some((width, req_align)) = mem_intrinsic(&name) {
            // First argument is the pointer. Skip a turbofish
            // (`::<1>`) between name and `(`.
            let mut j = end;
            if masked[j..].starts_with("::<") {
                let mut depth = 0i32;
                while j < f.body.end {
                    match b[j] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let open = skip_ws(b, j);
            if b.get(open) == Some(&b'(') {
                if let Some(close) = match_delim(masked, open) {
                    let args = split_top_commas(&masked[open + 1..close]);
                    let first = args.first().map(|a| a.trim()).unwrap_or("");
                    match parse_ptr_expr(first) {
                        Some((base, add_expr)) => f.accesses.push(MemAccess {
                            base,
                            add_expr,
                            width,
                            req_align,
                            intrinsic: Some(name),
                            offset: i,
                        }),
                        None => f.accesses.push(MemAccess {
                            base: first.to_string(),
                            add_expr: None,
                            width,
                            req_align,
                            intrinsic: Some(name),
                            offset: i,
                        }),
                    }
                }
            }
        }
        i = end;
    }
}

fn scan_derefs(file: &SourceFile, f: &mut KernelFn) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    for i in f.body.clone() {
        if b[i] != b'*' {
            continue;
        }
        // A deref star is glued to its operand (`*p`); a
        // multiplication star always has surrounding spaces under
        // rustfmt, so a star directly followed by an identifier start
        // is a dereference.
        let Some((name, end)) = ident_at(masked, i + 1) else {
            continue;
        };
        let is_ptr = f.ptr_lets.contains_key(&name)
            || f.params.iter().any(|pm| {
                pm.name == name && matches!(pm.kind, ParamKind::PtrConst | ParamKind::PtrMut)
            });
        if !is_ptr {
            continue;
        }
        let add_expr =
            if masked[end..].starts_with(".add(") || masked[end..].starts_with(".offset(") {
                let open = end + masked[end..].find('(').unwrap_or(0);
                match_delim(masked, open).map(|close| masked[open + 1..close].to_string())
            } else {
                None
            };
        f.accesses.push(MemAccess {
            base: name,
            add_expr,
            width: 1,
            req_align: 0,
            intrinsic: None,
            offset: i,
        });
    }
}

fn scan_preconditions(file: &SourceFile, f: &mut KernelFn) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut i = f.body.start;
    while let Some(pos) = find_word(masked, "kernel_precondition", i) {
        if pos >= f.body.end {
            break;
        }
        i = pos + "kernel_precondition".len();
        let mut j = i;
        if b.get(j) == Some(&b'!') {
            j += 1;
        }
        let open = skip_ws(b, j);
        if b.get(open) != Some(&b'(') {
            continue;
        }
        let Some(close) = match_delim(masked, open) else {
            continue;
        };
        // The condition is the first top-level argument; take its raw
        // text (feature names live in string literals).
        let inner_masked = &masked[open + 1..close];
        let parts = split_top_commas(inner_masked);
        let Some(first) = parts.first() else {
            continue;
        };
        let cond_end = open + 1 + first.len();
        let cond = file.raw[open + 1..cond_end].trim().to_string();
        f.preconditions.push(Precondition {
            cond,
            line: file.line_of(pos) + 1,
        });
        i = close;
    }
}

fn scan_unsafe_blocks(file: &SourceFile, fns: &[KernelFn]) -> Vec<UnsafeBlock> {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_word(masked, "unsafe", i) {
        i = pos + 6;
        let line0 = file.line_of(pos);
        if file.test_lines.get(line0).copied().unwrap_or(false) {
            continue;
        }
        let open = skip_ws(b, pos + 6);
        if b.get(open) != Some(&b'{') {
            continue; // `unsafe fn`, handled as a fn.
        }
        let in_fn = fns
            .iter()
            .find(|f| f.body.contains(&pos))
            .map(|f| f.name.clone());
        out.push(UnsafeBlock {
            offset: pos,
            line: line0 + 1,
            in_fn,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
pub const MR: usize = 8;

pub fn acc_f32(kc: usize, ap: &[f32], acc: &mut [[f32; 8]; 8]) {
    kernel_precondition!(ap.len() >= kc * MR, "A panel too short");
    kernel_precondition!(is_x86_feature_detected!("avx2"), "avx2 not available");
    unsafe { acc_f32_imp(kc, ap.as_ptr(), acc.as_flattened_mut().as_mut_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias, align(32)
// kernel-contract: requires target_feature(avx2)
#[target_feature(enable = "avx2")]
unsafe fn acc_f32_imp(kc: usize, ap: *const f32, acc: *mut f32) {
    let mut r = [_mm256_setzero_ps(); MR];
    for kk in 0..kc {
        let a = ap.add(kk * MR);
        for (i, ri) in r.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(i));
            *ri = _mm256_add_ps(av, *ri);
        }
    }
    for (i, ri) in r.iter().enumerate() {
        _mm256_storeu_ps(acc.add(i * 8), *ri);
    }
}
"#;

    #[test]
    fn model_extracts_contracts_params_and_accesses() {
        let z = parse_zone_file("k.rs", SAMPLE);
        assert!(z.malformed.is_empty(), "{:?}", z.malformed);
        assert_eq!(z.fns.len(), 2);
        let wrapper = &z.fns[0];
        assert!(!wrapper.is_unsafe);
        assert_eq!(wrapper.preconditions.len(), 2);
        assert_eq!(wrapper.preconditions[0].cond, "ap.len() >= kc * MR");
        assert!(wrapper.preconditions[1]
            .cond
            .contains("is_x86_feature_detected!(\"avx2\")"));

        let imp = &z.fns[1];
        assert!(imp.is_unsafe);
        assert_eq!(imp.params.len(), 3);
        assert_eq!(imp.params[0].kind, ParamKind::Usize);
        assert_eq!(imp.params[1].kind, ParamKind::PtrConst);
        assert_eq!(imp.params[2].kind, ParamKind::PtrMut);
        assert_eq!(imp.contracts.len(), 2);
        assert_eq!(imp.contracts[0].bound, "kc * MR");
        assert!(imp.contracts[0].noalias);
        assert_eq!(imp.contracts[1].align, 32);
        let req = imp.requires.clone().expect("requires line");
        assert_eq!(req.features, ["avx2"]);
        assert_eq!(imp.target_features, ["avx2"]);
        assert_eq!(imp.arrays.get("r").map(String::as_str), Some("MR"));
        assert_eq!(imp.ptr_lets.get("a").map(|p| p.base.as_str()), Some("ap"));
        // Accesses: deref `*a.add(i)` + store through `acc`.
        assert!(imp
            .accesses
            .iter()
            .any(|a| a.base == "a" && a.width == 1 && a.add_expr.as_deref() == Some("i")));
        assert!(imp.accesses.iter().any(|a| a.base == "acc"
            && a.width == 8
            && a.intrinsic.as_deref() == Some("_mm256_storeu_ps")));
        assert_eq!(z.unsafe_blocks.len(), 1);
        assert_eq!(z.unsafe_blocks[0].in_fn.as_deref(), Some("acc_f32"));
    }

    #[test]
    fn loop_maxima_cover_ranges_and_enumerates() {
        let z = parse_zone_file("k.rs", SAMPLE);
        let imp = &z.fns[1];
        let kk = imp.loops.iter().find(|l| l.var == "kk").expect("kk loop");
        match &kk.max {
            LoopMax::Expr { text, inclusive } => {
                assert_eq!(text, "kc");
                assert!(!inclusive);
            }
            other => panic!("unexpected max {other:?}"),
        }
        let i_loops: Vec<_> = imp.loops.iter().filter(|l| l.var == "i").collect();
        assert_eq!(i_loops.len(), 2);
        assert!(matches!(&i_loops[0].max, LoopMax::ArrayLen(a) if a == "r"));
    }

    #[test]
    fn const_table_reads_micro_tile_constants() {
        let f = SourceFile::parse("m.rs", "pub const MR: usize = 8;\nconst X: usize = 3;\n");
        let t = const_table(&f);
        assert_eq!(t.get("MR"), Some(&8));
        assert_eq!(t.get("X"), Some(&3));
    }
}
