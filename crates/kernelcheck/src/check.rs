//! The seven contract checks (`k1`..`k7`) over the extracted model.
//!
//! Checks run in three scopes:
//!
//! * **inside each unsafe kernel** (`k1` bounds, `k2` contract
//!   presence, `k3` alignment, `k4` feature enablement): every raw
//!   access is resolved to a contract parameter and its worst-case
//!   offset polynomial is compared against the declared bound;
//! * **at the safe wrapper** (`k4` runtime detection, `k5` contract
//!   backing, `k7` aliasing): each declared contract must be implied
//!   by what the wrapper asserts (`kernel_precondition!`) or by the
//!   parameter's own type, and no two `noalias` operands may be fed
//!   from the same place;
//! * **in the drivers** (`k4` backend dispatch, `k6` call-site
//!   guarantees): `backend.rs` may only dispatch kernels whose feature
//!   requirements its ISA variant implies, and every micro-panel slice
//!   passed to `microkernel`/`bt_fn` must have *exactly* the packed
//!   length the kernel contract consumes (`kc * MR` etc. — overlong
//!   panels would mask index-arithmetic bugs, so equality is
//!   enforced, not just sufficiency).

use crate::expr::{self, Poly};
use crate::extract::{
    find_call_in, find_calls_in, CallSite, KernelFn, LenContract, LoopMax, MemAccess, ParamKind,
    ZoneFile,
};
use crate::{K1, K2, K3, K4, K5, K6, K7};
use pdnn_lint::source::{find_word, is_ident_char, match_brace, SourceFile};
use pdnn_lint::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One unsafe site in the zone and whether a verified contract covers
/// it (the acceptance bar: every site covered, zero findings).
#[derive(Clone, Debug)]
pub struct CoverageSite {
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// `"unsafe_fn"` or `"unsafe_block"`.
    pub kind: &'static str,
    pub item: String,
    pub covered: bool,
    /// The contracts that cover the site.
    pub via: Vec<String>,
}

/// Per-kernel statistics for the report.
#[derive(Clone, Debug)]
pub struct KernelSummary {
    pub path: String,
    pub name: String,
    pub line: usize,
    pub is_unsafe: bool,
    pub contracts: usize,
    pub accesses: usize,
    pub intrinsics: usize,
    pub preconditions: usize,
}

/// Which kernel wrappers each backend ISA variant may dispatch.
fn isa_allowed(variant: &str) -> Option<&'static [&'static str]> {
    Some(match variant {
        "Scalar" => &[],
        "Avx2" => &["avx", "avx2", "sse2"],
        "Avx512" => &["avx", "avx2", "sse2", "avx512f", "avx512dq"],
        "Neon" => &["neon"],
        _ => return None,
    })
}

/// Does the enabled-feature list imply `req`? Encodes the x86 subset
/// ladder (avx512 implies avx2 implies avx; sse2 is x86_64 baseline).
fn satisfies(enabled: &[String], req: &str) -> bool {
    match req {
        "sse2" => true,
        "avx" => enabled
            .iter()
            .any(|e| e == "avx" || e == "avx2" || e.starts_with("avx512")),
        "avx2" => enabled
            .iter()
            .any(|e| e == "avx2" || e.starts_with("avx512")),
        _ => enabled.iter().any(|e| e == req),
    }
}

fn offset_of_line(file: &SourceFile, line1: usize) -> usize {
    let mut off = 0;
    for (i, l) in file.masked.lines().enumerate() {
        if i + 1 >= line1 {
            break;
        }
        off += l.len() + 1;
    }
    off.min(file.masked.len().saturating_sub(1))
}

/// Expression evaluation inside one kernel fn: constants fold, usize
/// parameters stay symbolic, loop variables resolve to their maxima.
struct EvalCtx<'a> {
    consts: &'a BTreeMap<String, i64>,
    f: &'a KernelFn,
}

impl EvalCtx<'_> {
    fn eval(&self, text: &str, at: usize, depth: u32) -> Result<Poly, String> {
        if depth > 8 {
            return Err(format!("expression nesting too deep at `{text}`"));
        }
        let resolve = |name: &str| self.resolve_name(name, at, depth);
        expr::parse(text, &resolve)
    }

    fn resolve_name(&self, name: &str, at: usize, depth: u32) -> Option<Poly> {
        if let Some(&c) = self.consts.get(name) {
            return Some(Poly::constant(c));
        }
        if self
            .f
            .params
            .iter()
            .any(|p| p.name == name && p.kind == ParamKind::Usize)
        {
            return Some(Poly::var(name));
        }
        // Innermost enclosing loop binding this name.
        let lp = self
            .f
            .loops
            .iter()
            .rev()
            .find(|l| l.var == name && l.scope.contains(&at))?;
        match &lp.max {
            LoopMax::Expr { text, inclusive } => {
                let end = self.eval(text, lp.scope.start, depth + 1).ok()?;
                Some(if *inclusive {
                    end
                } else {
                    end.sub(&Poly::constant(1))
                })
            }
            LoopMax::ArrayLen(arr) => {
                let len_text = self.f.arrays.get(arr)?;
                let len = self.eval(len_text, lp.scope.start, depth + 1).ok()?;
                Some(len.sub(&Poly::constant(1)))
            }
            LoopMax::Unknown => None,
        }
    }

    /// Lower bounds implied by enclosing exclusive loops actually
    /// executing: `for kk in 0..kc { ... }` running means `kc >= 1`.
    fn mins(&self, at: usize) -> BTreeMap<String, i64> {
        let mut m = BTreeMap::new();
        for l in &self.f.loops {
            if !l.scope.contains(&at) {
                continue;
            }
            if let LoopMax::Expr {
                text,
                inclusive: false,
            } = &l.max
            {
                let is_usize_param = self
                    .f
                    .params
                    .iter()
                    .any(|p| p.name == *text && p.kind == ParamKind::Usize);
                if is_usize_param {
                    m.insert(text.clone(), 1);
                }
            }
        }
        m
    }

    /// Walk an access back through derived-pointer lets to a contract
    /// parameter, accumulating the total offset polynomial.
    fn resolve_access(&self, acc: &MemAccess) -> Result<(String, Poly), String> {
        let mut base = acc.base.clone();
        let mut total = match &acc.add_expr {
            Some(e) => self.eval(e, acc.offset, 0)?,
            None => Poly::constant(0),
        };
        for _ in 0..8 {
            let is_param = self.f.params.iter().any(|p| {
                p.name == base && matches!(p.kind, ParamKind::PtrConst | ParamKind::PtrMut)
            });
            if is_param {
                return Ok((base, total));
            }
            let Some(pl) = self.f.ptr_lets.get(&base) else {
                return Err(format!(
                    "access through `{base}`, which is neither a pointer parameter nor a derived pointer"
                ));
            };
            if let Some(e) = &pl.add_expr {
                total = total.add(&self.eval(e, pl.offset, 0)?);
            }
            base = pl.base.clone();
        }
        Err("pointer derivation chain too deep".to_string())
    }
}

/// k1 + k2 + k3 + k4(a,b): checks local to one unsafe kernel fn.
fn check_kernel_body(
    file: &SourceFile,
    f: &KernelFn,
    consts: &BTreeMap<String, i64>,
    findings: &mut Vec<Finding>,
) {
    let fn_off = offset_of_line(file, f.line);
    let ptr_params: Vec<_> = f
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::PtrConst | ParamKind::PtrMut))
        .collect();

    // k2: contract presence and well-formedness.
    if f.contracts.is_empty() && f.requires.is_none() {
        findings.push(Finding::new(
            file,
            K2,
            fn_off,
            format!(
                "unsafe kernel `{}` has no kernel-contract annotations; declare every \
                 pointer bound and the required target features",
                f.name
            ),
        ));
        return; // Nothing to check accesses against.
    }
    for p in &ptr_params {
        if !f.contracts.iter().any(|c| c.param == p.name) {
            findings.push(Finding::new(
                file,
                K2,
                fn_off,
                format!(
                    "pointer parameter `{}` of `{}` has no `points-to len >=` contract",
                    p.name, f.name
                ),
            ));
        }
    }
    for c in &f.contracts {
        if !f.params.iter().any(|p| p.name == c.param) {
            findings.push(Finding::new(
                file,
                K2,
                offset_of_line(file, c.line),
                format!(
                    "kernel-contract names `{}`, which is not a parameter of `{}`",
                    c.param, f.name
                ),
            ));
        }
    }

    // k4(a): every intrinsic enabled by the target_feature attribute.
    for iu in &f.intrinsics {
        if !satisfies(&f.target_features, iu.feature) {
            findings.push(Finding::new(
                file,
                K4,
                iu.offset,
                format!(
                    "intrinsic `{}` needs target_feature({}), but `{}` only enables [{}]",
                    iu.name,
                    iu.feature,
                    f.name,
                    f.target_features.join(", ")
                ),
            ));
        }
    }
    // k4(b): the requires contract must state exactly the attribute.
    let attr_set: BTreeSet<&str> = f.target_features.iter().map(String::as_str).collect();
    match &f.requires {
        None if !f.target_features.is_empty() => findings.push(Finding::new(
            file,
            K4,
            fn_off,
            format!(
                "`{}` enables target features but declares no `requires target_feature(...)` contract",
                f.name
            ),
        )),
        Some(r) => {
            let req_set: BTreeSet<&str> = r.features.iter().map(String::as_str).collect();
            if req_set != attr_set {
                findings.push(Finding::new(
                    file,
                    K4,
                    offset_of_line(file, r.line),
                    format!(
                        "contract requires target_feature({}) but `{}` enables ({})",
                        r.features.join(", "),
                        f.name,
                        f.target_features.join(", ")
                    ),
                ));
            }
        }
        None => {}
    }

    // k1 + k3: every access in bounds and sufficiently aligned.
    let ctx = EvalCtx { consts, f };
    for acc in &f.accesses {
        let what = acc
            .intrinsic
            .clone()
            .unwrap_or_else(|| format!("*{}", acc.base));
        let (root, off) = match ctx.resolve_access(acc) {
            Ok(v) => v,
            Err(e) => {
                findings.push(Finding::new(
                    file,
                    K1,
                    acc.offset,
                    format!("cannot bound `{what}` in `{}`: {e}", f.name),
                ));
                continue;
            }
        };
        let Some(contract) = f.contracts.iter().find(|c| c.param == root) else {
            continue; // k2 already reported the missing contract.
        };
        let bound = match ctx.eval(&contract.bound, f.body.start, 0) {
            Ok(b) => b,
            Err(e) => {
                findings.push(Finding::new(
                    file,
                    K2,
                    offset_of_line(file, contract.line),
                    format!("unparseable contract bound `{}`: {e}", contract.bound),
                ));
                continue;
            }
        };
        let end = off.add(&Poly::constant(acc.width));
        let slack = bound.sub(&end);
        if !slack.ge_zero(&ctx.mins(acc.offset)) {
            findings.push(Finding::new(
                file,
                K1,
                acc.offset,
                format!(
                    "`{what}` reaches element {end} of `{root}`, but the contract only \
                     guarantees `{root}` holds {bound} elements",
                ),
            ));
        }
        if acc.req_align > contract.align {
            findings.push(Finding::new(
                file,
                K3,
                acc.offset,
                format!(
                    "`{what}` demands {}-byte alignment but the contract for `{root}` declares {}",
                    acc.req_align,
                    if contract.align == 0 {
                        "none".to_string()
                    } else {
                        format!("align({})", contract.align)
                    }
                ),
            ));
        }
    }
}

/// Element count guaranteed by a wrapper parameter's own type, e.g.
/// `&mut [[f32; NR]; MR]` -> MR * NR. `None` for slices (dynamic).
fn type_len(ty: &str, consts: &BTreeMap<String, i64>) -> Option<Poly> {
    let t = ty
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    if !t.starts_with('[') {
        return None;
    }
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    // Top-level `;` splits element type from length.
    let mut depth = 0i32;
    let mut semi = None;
    for (i, c) in inner.bytes().enumerate() {
        match c {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth -= 1,
            b';' if depth == 0 => {
                semi = Some(i);
                break;
            }
            _ => {}
        }
    }
    let semi = semi?; // `[T]` (slice): dynamic length.
    let elem = inner[..semi].trim();
    let len_text = inner[semi + 1..].trim();
    let resolve = |name: &str| consts.get(name).map(|&c| Poly::constant(c));
    let len = expr::parse(len_text, &resolve).ok()?;
    let elem_count = if elem.starts_with('[') {
        type_len(elem, consts)?
    } else {
        Poly::constant(1)
    };
    Some(len.mul(&elem_count))
}

/// Strip an argument expression like `ap.as_ptr()` or
/// `acc.as_flattened_mut().as_mut_ptr()` to its root identifier.
fn arg_root(text: &str) -> Option<String> {
    let t = text.trim();
    let b = t.as_bytes();
    let mut j = 0;
    while j < b.len() && is_ident_char(b[j] as char) {
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let root = t[..j].to_string();
    let mut rest = &t[j..];
    while let Some(r) = rest.strip_prefix('.') {
        let mut k = 0;
        let rb = r.as_bytes();
        while k < rb.len() && is_ident_char(rb[k] as char) {
            k += 1;
        }
        rest = r[k..].strip_prefix("()")?;
    }
    if rest.trim().is_empty() {
        Some(root)
    } else {
        None
    }
}

/// First `<root>.len() >= <expr>` precondition of the wrapper, if any.
fn precondition_bound(f: &KernelFn, root: &str) -> Option<String> {
    for p in &f.preconditions {
        let stripped: String = p.cond.chars().filter(|c| !c.is_whitespace()).collect();
        let prefix = format!("{root}.len()>=");
        if let Some(rest) = stripped.strip_prefix(&prefix) {
            return Some(rest.to_string());
        }
    }
    None
}

/// k4(c) + k5 + k7: each unsafe kernel's safe wrapper must justify
/// every declared contract.
fn check_wrappers(
    file: &SourceFile,
    fns: &[KernelFn],
    consts: &BTreeMap<String, i64>,
    findings: &mut Vec<Finding>,
) {
    for imp in fns.iter().filter(|f| f.is_unsafe) {
        if imp.contracts.is_empty() && imp.requires.is_none() {
            continue; // k2 already fired.
        }
        let wrapper_call: Option<(&KernelFn, CallSite)> = fns
            .iter()
            .filter(|w| !w.is_unsafe)
            .find_map(|w| find_call_in(file, &w.body, &imp.name).map(|c| (w, c)));
        let Some((wrapper, call)) = wrapper_call else {
            findings.push(Finding::new(
                file,
                K5,
                offset_of_line(file, imp.line),
                format!(
                    "unsafe kernel `{}` has no safe wrapper in this file asserting its contracts",
                    imp.name
                ),
            ));
            continue;
        };

        // k4(c): runtime feature detection in the wrapper, unless the
        // feature is baseline for the contract's declared arch.
        if let Some(req) = &imp.requires {
            if req.baseline.is_none() {
                for feat in req.features.iter().filter(|f| *f != "sse2") {
                    let probe = format!("is_x86_feature_detected!(\"{feat}\")");
                    if !wrapper
                        .preconditions
                        .iter()
                        .any(|p| p.cond.contains(&probe))
                    {
                        findings.push(Finding::new(
                            file,
                            K4,
                            offset_of_line(file, wrapper.line),
                            format!(
                                "wrapper `{}` enters `{}` without asserting {probe}",
                                wrapper.name, imp.name
                            ),
                        ));
                    }
                }
            }
        }

        // Positional argument map: imp param -> wrapper argument text.
        if call.args.len() != imp.params.len() {
            findings.push(Finding::new(
                file,
                K5,
                call.offset,
                format!(
                    "call to `{}` passes {} arguments but it declares {} parameters",
                    imp.name,
                    call.args.len(),
                    imp.params.len()
                ),
            ));
            continue;
        }

        // Rename imp usize params to the wrapper identifiers feeding
        // them, so bounds and guarantees share a vocabulary.
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        for (p, a) in imp.params.iter().zip(&call.args) {
            if p.kind == ParamKind::Usize && a.bytes().all(|b| is_ident_char(b as char)) {
                rename.insert(p.name.clone(), a.clone());
            }
        }
        let wrapper_resolve = |name: &str| {
            if let Some(&c) = consts.get(name) {
                return Some(Poly::constant(c));
            }
            Some(Poly::var(name))
        };

        // k5 per len contract; k7 aliasing across noalias operands.
        let mut noalias_roots: BTreeMap<String, String> = BTreeMap::new();
        for contract in &imp.contracts {
            let Some(idx) = imp.params.iter().position(|p| p.name == contract.param) else {
                continue; // k2 already reported the unknown name.
            };
            let arg = &call.args[idx];
            let Some(root) = arg_root(arg) else {
                findings.push(Finding::new(
                    file,
                    K5,
                    call.offset,
                    format!(
                        "cannot relate argument `{arg}` for `{}` of `{}` to a wrapper binding",
                        contract.param, imp.name
                    ),
                ));
                continue;
            };
            if contract.noalias {
                if let Some(other) = noalias_roots.insert(root.clone(), contract.param.clone()) {
                    findings.push(Finding::new(
                        file,
                        K7,
                        call.offset,
                        format!(
                            "noalias operands `{other}` and `{}` of `{}` are both fed from `{root}`",
                            contract.param, imp.name
                        ),
                    ));
                }
            }

            // Guarantee: wrapper parameter type, or an asserted
            // `root.len() >= expr` precondition.
            let wrapper_ty = wrapper
                .params
                .iter()
                .find(|p| p.name == root)
                .map(|p| p.ty.clone())
                .unwrap_or_default();
            let guarantee = if let Some(g) = type_len(&wrapper_ty, consts) {
                Some(g)
            } else {
                precondition_bound(wrapper, &root)
                    .and_then(|b| expr::parse(&b, &wrapper_resolve).ok())
            };
            let Some(guarantee) = guarantee else {
                findings.push(Finding::new(
                    file,
                    K5,
                    offset_of_line(file, contract.line),
                    format!(
                        "contract `{} points-to len >= {}` of `{}` is not backed by wrapper \
                         `{}`: no kernel_precondition! asserts `{root}.len() >= ...` and the \
                         parameter type is not a fixed-size array",
                        contract.param, contract.bound, imp.name, wrapper.name
                    ),
                ));
                continue;
            };
            // Contract bound in wrapper vocabulary.
            let imp_resolve = |name: &str| {
                if let Some(&c) = consts.get(name) {
                    return Some(Poly::constant(c));
                }
                Some(Poly::var(rename.get(name).map_or(name, String::as_str)))
            };
            let bound = match expr::parse(&contract.bound, &imp_resolve) {
                Ok(b) => b,
                Err(e) => {
                    findings.push(Finding::new(
                        file,
                        K2,
                        offset_of_line(file, contract.line),
                        format!("unparseable contract bound `{}`: {e}", contract.bound),
                    ));
                    continue;
                }
            };
            if !guarantee.sub(&bound).ge_zero(&BTreeMap::new()) {
                findings.push(Finding::new(
                    file,
                    K5,
                    offset_of_line(file, contract.line),
                    format!(
                        "wrapper `{}` guarantees `{root}` holds {guarantee} elements but the \
                         contract of `{}` requires {bound}",
                        wrapper.name, imp.name
                    ),
                ));
            }
        }
    }
}

/// k6 part 1: the shared `microkernel` entry must assert the packing
/// invariants every backend kernel's contract consumes.
fn check_microkernel_def(zone: &[ZoneFile], findings: &mut Vec<Finding>) {
    for z in zone {
        for f in &z.fns {
            if f.name != "microkernel" {
                continue;
            }
            let have: Vec<String> = f
                .preconditions
                .iter()
                .map(|p| p.cond.chars().filter(|c| !c.is_whitespace()).collect())
                .collect();
            for (needed, what) in [
                ("ap.len()>=kc*MR", "the packed A panel length"),
                ("bp.len()>=kc*NR", "the packed B panel length"),
                ("mr_eff<=MR&&nr_eff<=NR", "the micro-tile bounds"),
            ] {
                if !have.iter().any(|h| h == needed) {
                    findings.push(Finding::new(
                        &z.file,
                        K6,
                        offset_of_line(&z.file, f.line),
                        format!(
                            "`microkernel` no longer asserts {what} (`{needed}`); backend \
                             kernel contracts assume it"
                        ),
                    ));
                }
            }
        }
    }
}

/// Resolve a driver panel argument (`ap_panel`, `&bp[lo..hi]`) to its
/// symbolic slice length.
fn panel_len(
    file: &SourceFile,
    arg: &str,
    call_offset: usize,
    fn_body: &std::ops::Range<usize>,
    consts: &BTreeMap<String, i64>,
) -> Result<Poly, String> {
    let resolve = |name: &str| {
        Some(match consts.get(name) {
            Some(&c) => Poly::constant(c),
            None => Poly::var(name),
        })
    };
    let t = arg.trim();
    if let Some(rest) = t.strip_prefix('&') {
        let rest = rest.trim_start_matches("mut ").trim();
        let open = rest
            .find('[')
            .ok_or_else(|| format!("`&{rest}` is not a slice expression"))?;
        let inner = rest[open + 1..]
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated slice index in `{t}`"))?;
        let (lo, hi) = inner
            .split_once("..")
            .ok_or_else(|| format!("`{inner}` is not a range index"))?;
        let lo = if lo.trim().is_empty() {
            Poly::constant(0)
        } else {
            expr::parse(lo, &resolve)?
        };
        let hi = expr::parse(hi, &resolve)?;
        return Ok(hi.sub(&lo));
    }
    if t.bytes().all(|b| is_ident_char(b as char)) {
        // Find the last `let <t> = <rhs>;` before the call.
        let masked = &file.masked;
        let mut best: Option<usize> = None;
        let mut i = fn_body.start;
        while let Some(pos) = find_word(masked, t, i) {
            if pos >= call_offset || pos >= fn_body.end {
                break;
            }
            i = pos + t.len();
            let before = masked[..pos].trim_end();
            if before.ends_with("let") {
                best = Some(pos);
            }
        }
        let pos = best.ok_or_else(|| format!("no `let {t} = ...` binding before the call"))?;
        let eq = masked[pos..]
            .find('=')
            .map(|p| pos + p + 1)
            .ok_or_else(|| format!("malformed binding for `{t}`"))?;
        let semi = masked[eq..]
            .find(';')
            .map(|p| eq + p)
            .ok_or_else(|| format!("unterminated binding for `{t}`"))?;
        return panel_len(file, masked[eq..semi].trim(), call_offset, fn_body, consts);
    }
    Err(format!("cannot resolve panel argument `{t}`"))
}

/// k6 part 2: every driver call site passes exactly the panel lengths
/// the kernel contracts consume.
fn check_driver_calls(
    driver: &SourceFile,
    consts: &BTreeMap<String, i64>,
    findings: &mut Vec<Finding>,
) {
    let fns = driver.functions();
    let resolve = |name: &str| {
        Some(match consts.get(name) {
            Some(&c) => Poly::constant(c),
            None => Poly::var(name),
        })
    };
    struct CallSpec {
        callee: &'static str,
        arity: usize,
        kc_idx: usize,
        /// (arg index, per-kc element count, label).
        panels: &'static [(usize, &'static str, &'static str)],
    }
    const SPECS: [CallSpec; 2] = [
        CallSpec {
            callee: "microkernel",
            arity: 11,
            kc_idx: 1,
            panels: &[(3, "MR", "packed A panel"), (4, "NR", "packed B panel")],
        },
        CallSpec {
            callee: "bt_fn",
            arity: 4,
            kc_idx: 0,
            panels: &[(1, "MR", "packed A panel"), (2, "1", "B row segment")],
        },
    ];
    for CallSpec {
        callee,
        arity,
        kc_idx,
        panels,
    } in &SPECS
    {
        let whole = 0..driver.masked.len();
        for call in find_calls_in(driver, &whole, callee) {
            let line0 = driver.line_of(call.offset);
            if driver.test_lines.get(line0).copied().unwrap_or(false) {
                continue;
            }
            let Some(fn_body) = fns
                .iter()
                .filter_map(|f| f.body.clone())
                .find(|b| b.contains(&call.offset))
            else {
                continue;
            };
            if call.args.len() != *arity {
                findings.push(Finding::new(
                    driver,
                    K6,
                    call.offset,
                    format!(
                        "`{callee}` call passes {} arguments, expected {arity}; cannot verify \
                         panel guarantees",
                        call.args.len()
                    ),
                ));
                continue;
            }
            let kc = match expr::parse(&call.args[*kc_idx], &resolve) {
                Ok(p) => p,
                Err(e) => {
                    findings.push(Finding::new(
                        driver,
                        K6,
                        call.offset,
                        format!("cannot resolve kc argument `{}`: {e}", call.args[*kc_idx]),
                    ));
                    continue;
                }
            };
            for (idx, per_kc, label) in *panels {
                let expected = match expr::parse(per_kc, &resolve) {
                    Ok(p) => kc.mul(&p),
                    Err(_) => continue,
                };
                match panel_len(driver, &call.args[*idx], call.offset, &fn_body, consts) {
                    Ok(len) if len == expected => {}
                    Ok(len) => findings.push(Finding::new(
                        driver,
                        K6,
                        call.offset,
                        format!(
                            "{label} passed to `{callee}` has length {len}, but \
                             kc = {kc} requires exactly {expected}"
                        ),
                    )),
                    Err(e) => findings.push(Finding::new(
                        driver,
                        K6,
                        call.offset,
                        format!("cannot verify {label} passed to `{callee}`: {e}"),
                    )),
                }
            }
        }
    }
}

/// k4(d): `backend.rs` ISA variants may only dispatch kernels whose
/// feature requirements the variant's runtime gate implies.
fn check_backend_dispatch(backend: &SourceFile, zone: &[ZoneFile], findings: &mut Vec<Finding>) {
    // wrapper name -> features its unsafe kernel requires.
    let mut wrapper_reqs: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for z in zone {
        for imp in z.fns.iter().filter(|f| f.is_unsafe) {
            let Some(req) = &imp.requires else { continue };
            for w in z.fns.iter().filter(|w| !w.is_unsafe) {
                if find_call_in(&z.file, &w.body, &imp.name).is_some() {
                    wrapper_reqs.insert(w.name.clone(), req.features.clone());
                }
            }
        }
    }
    let masked = &backend.masked;
    let mut i = 0;
    while let Some(pos) = find_word(masked, "impl", i) {
        i = pos + 4;
        let Some(open) = masked[pos..].find('{').map(|p| pos + p) else {
            break;
        };
        let header = &masked[pos..open];
        if !header.contains("ComputeBackend for") {
            continue;
        }
        let Some(close) = match_brace(masked, open) else {
            continue;
        };
        i = open + 1;
        let block = &masked[open..close];
        // ISA variant: first `Isa::X` in the block.
        let Some(isa_at) = block.find("Isa::") else {
            continue;
        };
        let after = &block[isa_at + 5..];
        let variant: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
        let Some(allowed) = isa_allowed(&variant) else {
            continue;
        };
        // Every kernel path `kernel::<module>::<name>` in the block.
        let mut j = 0;
        while let Some(kpos) = find_word(block, "kernel", j) {
            j = kpos + 6;
            let rest = &block[kpos..];
            let Some(rest2) = rest.strip_prefix("kernel::") else {
                continue;
            };
            let module: String = rest2.chars().take_while(|&c| is_ident_char(c)).collect();
            let Some(rest3) = rest2[module.len()..].strip_prefix("::") else {
                continue;
            };
            let name: String = rest3.chars().take_while(|&c| is_ident_char(c)).collect();
            if module == "scalar" {
                continue; // Safe generic reference kernels.
            }
            let Some(reqs) = wrapper_reqs.get(&name) else {
                findings.push(Finding::new(
                    backend,
                    K4,
                    open + isa_at,
                    format!(
                        "backend Isa::{variant} dispatches `kernel::{module}::{name}`, which has \
                         no contract-annotated kernel behind it"
                    ),
                ));
                continue;
            };
            for feat in reqs {
                if !allowed.contains(&feat.as_str()) {
                    findings.push(Finding::new(
                        backend,
                        K4,
                        open + kpos,
                        format!(
                            "backend Isa::{variant} dispatches `{name}`, which requires \
                             target_feature({feat}) — outside what Isa::{variant}::available() \
                             guarantees"
                        ),
                    ));
                }
            }
        }
    }
}

/// Run every check over the model. Returns findings plus the coverage
/// table and per-kernel summaries for the report.
pub fn run(
    zone: &[ZoneFile],
    drivers: &[SourceFile],
    consts: &BTreeMap<String, i64>,
) -> (Vec<Finding>, Vec<CoverageSite>, Vec<KernelSummary>) {
    let mut findings = Vec::new();
    for z in zone {
        for (line, msg) in &z.malformed {
            findings.push(Finding::new(
                &z.file,
                K2,
                offset_of_line(&z.file, *line),
                format!("malformed kernel-contract: {msg}"),
            ));
        }
        for f in z.fns.iter().filter(|f| f.is_unsafe) {
            check_kernel_body(&z.file, f, consts, &mut findings);
        }
        check_wrappers(&z.file, &z.fns, consts, &mut findings);
    }
    check_microkernel_def(zone, &mut findings);
    for d in drivers {
        if d.path.ends_with("backend.rs") {
            check_backend_dispatch(d, zone, &mut findings);
        } else {
            check_driver_calls(d, consts, &mut findings);
        }
    }

    let (coverage, kernels) = build_coverage(zone, &findings);
    (findings, coverage, kernels)
}

fn contract_span(z: &ZoneFile, f: &KernelFn) -> (usize, usize) {
    let start = f
        .contracts
        .iter()
        .map(|c| c.line)
        .chain(f.requires.iter().map(|r| r.line))
        .min()
        .unwrap_or(f.line)
        .min(f.line);
    let end = z
        .file
        .line_of(f.body.end.min(z.file.masked.len().saturating_sub(1)))
        + 1;
    (start, end)
}

fn build_coverage(
    zone: &[ZoneFile],
    findings: &[Finding],
) -> (Vec<CoverageSite>, Vec<KernelSummary>) {
    let mut coverage = Vec::new();
    let mut kernels = Vec::new();
    let dirty = |path: &str, lo: usize, hi: usize| {
        findings
            .iter()
            .any(|fd| fd.path == path && fd.line >= lo && fd.line <= hi)
    };
    for z in zone {
        for f in &z.fns {
            kernels.push(KernelSummary {
                path: z.file.path.clone(),
                name: f.name.clone(),
                line: f.line,
                is_unsafe: f.is_unsafe,
                contracts: f.contracts.len() + usize::from(f.requires.is_some()),
                accesses: f.accesses.len(),
                intrinsics: f.intrinsics.len(),
                preconditions: f.preconditions.len(),
            });
            if !f.is_unsafe {
                continue;
            }
            let (lo, hi) = contract_span(z, f);
            let mut via: Vec<String> = f.contracts.iter().map(contract_text).collect();
            if let Some(r) = &f.requires {
                via.push(format!(
                    "requires target_feature({})",
                    r.features.join(", ")
                ));
            }
            coverage.push(CoverageSite {
                path: z.file.path.clone(),
                line: f.line,
                kind: "unsafe_fn",
                item: f.name.clone(),
                covered: !via.is_empty() && !dirty(&z.file.path, lo, hi),
                via,
            });
        }
        for ub in &z.unsafe_blocks {
            // The kernel entered from this block determines coverage.
            let wrapper = ub
                .in_fn
                .as_ref()
                .and_then(|n| z.fns.iter().find(|f| &f.name == n));
            let imp = wrapper.and_then(|w| {
                z.fns
                    .iter()
                    .filter(|f| f.is_unsafe)
                    .find(|f| find_call_in(&z.file, &w.body, &f.name).is_some())
            });
            let (covered, via) = match (wrapper, imp) {
                (Some(w), Some(imp)) => {
                    let (ilo, ihi) = contract_span(z, imp);
                    let wlo = w.line;
                    let whi = z
                        .file
                        .line_of(w.body.end.min(z.file.masked.len().saturating_sub(1)))
                        + 1;
                    let clean = !dirty(&z.file.path, ilo, ihi) && !dirty(&z.file.path, wlo, whi);
                    let mut via: Vec<String> = imp.contracts.iter().map(contract_text).collect();
                    via.push(format!(
                        "{} preconditions in `{}`",
                        w.preconditions.len(),
                        w.name
                    ));
                    (!imp.contracts.is_empty() && clean, via)
                }
                _ => (false, Vec::new()),
            };
            coverage.push(CoverageSite {
                path: z.file.path.clone(),
                line: ub.line,
                kind: "unsafe_block",
                item: ub
                    .in_fn
                    .clone()
                    .unwrap_or_else(|| "<file scope>".to_string()),
                covered,
                via,
            });
        }
    }
    (coverage, kernels)
}

fn contract_text(c: &LenContract) -> String {
    let mut s = format!("{} points-to len >= {}", c.param, c.bound);
    if c.noalias {
        s.push_str(", noalias");
    }
    if c.align > 0 {
        s.push_str(&format!(", align({})", c.align));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{feature_of, mem_intrinsic};

    /// Every intrinsic in the mem table must also carry a feature
    /// requirement — otherwise k1 would fire without k4 backing.
    fn mem_table_is_feature_covered() -> bool {
        [
            "_mm256_loadu_ps",
            "_mm512_storeu_pd",
            "vld1q_f32",
            "vst1q_f64",
        ]
        .iter()
        .all(|n| feature_of(n).is_some() && mem_intrinsic(n).is_some())
    }

    #[test]
    fn satisfies_encodes_the_feature_ladder() {
        let avx2 = vec!["avx2".to_string()];
        assert!(satisfies(&avx2, "avx"));
        assert!(satisfies(&avx2, "avx2"));
        assert!(satisfies(&avx2, "sse2"));
        assert!(!satisfies(&avx2, "avx512f"));
        let a512 = vec!["avx512f".to_string()];
        assert!(satisfies(&a512, "avx"));
        assert!(satisfies(&a512, "avx2"));
        assert!(!satisfies(&a512, "avx512dq"));
        assert!(!satisfies(&[], "neon"));
    }

    #[test]
    fn type_len_multiplies_nested_arrays() {
        let mut consts = BTreeMap::new();
        consts.insert("MR".to_string(), 8i64);
        consts.insert("NR".to_string(), 8i64);
        let p = type_len("&mut [[f32; NR]; MR]", &consts).expect("nested array");
        assert_eq!(p.as_const(), Some(64));
        let p = type_len("&mut [f64; MR]", &consts).expect("array");
        assert_eq!(p.as_const(), Some(8));
        assert!(type_len("&[f32]", &consts).is_none(), "slice is dynamic");
        assert!(type_len("usize", &consts).is_none());
    }

    #[test]
    fn arg_roots_strip_pointer_conversions() {
        assert_eq!(arg_root("ap.as_ptr()").as_deref(), Some("ap"));
        assert_eq!(
            arg_root("acc.as_flattened_mut().as_mut_ptr()").as_deref(),
            Some("acc")
        );
        assert_eq!(arg_root("kc").as_deref(), Some("kc"));
        assert_eq!(arg_root("a + b"), None);
    }

    #[test]
    fn mem_table_consistency() {
        assert!(mem_table_is_feature_covered());
    }
}
