//! Mutation self-test: prove the checker has teeth.
//!
//! Each [`Mutation`] is a seeded, realistic bug — an off-by-one panel
//! index, a dropped precondition, a widened contract, a stale dispatch
//! table — applied to an in-memory copy of the tree. The static pass
//! must flag every mutated tree with the expected rule, and the clean
//! tree must stay silent; together those two facts are the evidence
//! that a green kernelcheck run means something.

use crate::{analyze, StaticOutcome, Tree, K1, K2, K3, K4, K5, K6, K7};
use std::collections::BTreeSet;

/// One seeded bug: replace the first occurrence of `from` with `to`
/// in `path`, expect `expected_rule` to fire.
pub struct Mutation {
    pub name: &'static str,
    pub path: &'static str,
    pub from: &'static str,
    pub to: &'static str,
    pub expected_rule: &'static str,
    /// What the bug models, for the report.
    pub what: &'static str,
}

/// Result of analyzing one mutated tree.
pub struct MutationResult {
    pub name: &'static str,
    pub expected_rule: &'static str,
    /// The expected rule fired.
    pub caught: bool,
    /// Any rule fired (a consolation if `caught` is false).
    pub flagged: bool,
    /// Distinct rules that fired on the mutated tree.
    pub fired_rules: Vec<String>,
    pub what: &'static str,
}

const X86: &str = "crates/tensor/src/gemm/kernel/x86.rs";
const NEON: &str = "crates/tensor/src/gemm/kernel/neon.rs";
const KMOD: &str = "crates/tensor/src/gemm/kernel/mod.rs";
const PREPACKED: &str = "crates/tensor/src/gemm/prepacked.rs";
const BACKEND: &str = "crates/tensor/src/gemm/backend.rs";

/// The battery. Every entry must be caught for the self-test to pass.
pub fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "m01-bp-off-by-one",
            path: X86,
            from: "let bv = _mm256_loadu_ps(bp.add(kk * NR));",
            to: "let bv = _mm256_loadu_ps(bp.add(kk * NR + 1));",
            expected_rule: K1,
            what: "B-panel load shifted one element past the packed stride",
        },
        Mutation {
            name: "m02-inclusive-k-loop",
            path: X86,
            from: "for kk in 0..kc {",
            to: "for kk in 0..=kc {",
            expected_rule: K1,
            what: "k-loop runs one extra iteration past the panel depth",
        },
        Mutation {
            name: "m03-store-off-by-one",
            path: X86,
            from: "_mm256_storeu_ps(acc.add(i * NR), *ri);",
            to: "_mm256_storeu_ps(acc.add(i * NR + 1), *ri);",
            expected_rule: K1,
            what: "accumulator write-back lands one lane past the tile row",
        },
        Mutation {
            name: "m04-extra-register-row",
            path: X86,
            from: "let mut r = [_mm256_setzero_ps(); MR];",
            to: "let mut r = [_mm256_setzero_ps(); MR + 1];",
            expected_rule: K1,
            what: "register file grows a row, so the enumerate walks off the tile",
        },
        Mutation {
            name: "m05-a-broadcast-off-by-one",
            path: X86,
            from: "let av = _mm256_set1_ps(*a.add(i));",
            to: "let av = _mm256_set1_ps(*a.add(i + 1));",
            expected_rule: K1,
            what: "A-element broadcast reads one past the micro-panel column",
        },
        Mutation {
            name: "m06-aligned-load-on-packed",
            path: X86,
            from: "let bv = _mm256_loadu_ps(",
            to: "let bv = _mm256_load_ps(",
            expected_rule: K3,
            what: "unaligned load swapped for the 32-byte-aligned variant",
        },
        Mutation {
            name: "m07-weakened-target-feature",
            path: X86,
            from: "#[target_feature(enable = \"avx2\")]\nunsafe fn acc_f32_avx2_imp",
            to: "#[target_feature(enable = \"sse2\")]\nunsafe fn acc_f32_avx2_imp",
            expected_rule: K4,
            what: "kernel attribute no longer enables the ISA its intrinsics need",
        },
        Mutation {
            name: "m08-dropped-runtime-detect",
            path: X86,
            from: "    kernel_precondition!(is_x86_feature_detected!(\"avx2\"), \"avx2 not available\");\n",
            to: "",
            expected_rule: K4,
            what: "wrapper stops runtime-checking the CPU before entering the kernel",
        },
        Mutation {
            name: "m09-widened-contract",
            path: X86,
            from: "// kernel-contract: ap points-to len >= kc * MR, noalias",
            to: "// kernel-contract: ap points-to len >= kc * MR * 2, noalias",
            expected_rule: K5,
            what: "contract demands more than the wrapper's precondition establishes",
        },
        Mutation {
            name: "m10-dropped-length-precondition",
            path: X86,
            from: "    kernel_precondition!(ap.len() >= kc * MR, \"acc_f32_avx2: A panel too short\");\n",
            to: "",
            expected_rule: K5,
            what: "wrapper stops asserting the A-panel length the contract relies on",
        },
        Mutation {
            name: "m11-contracts-deleted",
            path: X86,
            from: "// kernel-contract: ap points-to len >= kc * MR, noalias\n// kernel-contract: brow points-to len >= kc, noalias\n// kernel-contract: acc points-to len >= MR, noalias\n// kernel-contract: requires target_feature(avx512f)\n#[target_feature(enable = \"avx512f\")]\nunsafe fn bt_f64_avx512_imp",
            to: "#[target_feature(enable = \"avx512f\")]\nunsafe fn bt_f64_avx512_imp",
            expected_rule: K2,
            what: "an unsafe kernel loses its contract block entirely",
        },
        Mutation {
            name: "m12-contract-names-ghost-param",
            path: X86,
            from: "// kernel-contract: brow points-to len >= kc, noalias",
            to: "// kernel-contract: browz points-to len >= kc, noalias",
            expected_rule: K2,
            what: "contract names a parameter that does not exist (typo drift)",
        },
        Mutation {
            name: "m13-dropped-tile-bound",
            path: KMOD,
            from: "    kernel_precondition!(mr_eff <= MR && nr_eff <= NR, \"microkernel: tile overrun\");\n",
            to: "",
            expected_rule: K6,
            what: "shared microkernel entry stops bounding the effective tile",
        },
        Mutation {
            name: "m14-dropped-panel-bound",
            path: KMOD,
            from: "    kernel_precondition!(ap.len() >= kc * MR, \"microkernel: A panel too short\");\n",
            to: "",
            expected_rule: K6,
            what: "shared microkernel entry stops asserting the A-panel length",
        },
        Mutation {
            name: "m15-overlong-driver-panel",
            path: PREPACKED,
            from: "let ap_panel = &ap[ir * kc_eff * MR..(ir + 1) * kc_eff * MR];",
            to: "let ap_panel = &ap[ir * kc_eff * MR..(ir + 2) * kc_eff * MR];",
            expected_rule: K6,
            what: "driver slices two micro-panels where the kernel consumes one",
        },
        Mutation {
            name: "m16-short-brow-segment",
            path: PREPACKED,
            from: "&brow[pc..pc + kc_eff]",
            to: "&brow[pc..pc + kc_eff - 1]",
            expected_rule: K6,
            what: "streaming-B^T row segment one element shorter than kc",
        },
        Mutation {
            name: "m17-aliased-noalias-operands",
            path: X86,
            from: "            ap.as_ptr(),\n            bp.as_ptr(),",
            to: "            ap.as_ptr(),\n            ap.as_ptr(),",
            expected_rule: K7,
            what: "wrapper feeds the same slice to two noalias pointer operands",
        },
        Mutation {
            name: "m18-stale-dispatch-table",
            path: BACKEND,
            from: "        kernel::x86::acc_f32_avx2\n",
            to: "        kernel::x86::acc_f32_avx512\n",
            expected_rule: K4,
            what: "AVX2 backend dispatches an AVX-512 kernel its gate never checks for",
        },
        Mutation {
            name: "m19-neon-stride-bug",
            path: NEON,
            from: "*rq = vld1q_f64(acc.add(q * 2));",
            to: "*rq = vld1q_f64(acc.add(q * 3));",
            expected_rule: K1,
            what: "NEON accumulator walk uses the wrong stride",
        },
        Mutation {
            name: "m20-brow-off-by-one",
            path: X86,
            from: "let bv = _mm256_set1_ps(*brow.add(kk));",
            to: "let bv = _mm256_set1_ps(*brow.add(kk + 1));",
            expected_rule: K1,
            what: "streaming-B^T broadcast reads one past the row segment",
        },
    ]
}

/// Run the battery. `baseline` must be the clean tree's outcome;
/// refusing to run on a dirty baseline keeps "caught" honest (a
/// pre-existing finding would count as a catch for every mutation).
pub fn run_mutations(tree: &Tree, baseline: &StaticOutcome) -> Result<Vec<MutationResult>, String> {
    if !baseline.findings.is_empty() || !baseline.meta.is_empty() {
        return Err(format!(
            "baseline tree is dirty ({} findings, {} meta); fix those before mutation testing",
            baseline.findings.len(),
            baseline.meta.len()
        ));
    }
    let mut out = Vec::new();
    for m in mutations() {
        let Some(mutated) = tree.with_replacement(m.path, m.from, m.to) else {
            return Err(format!(
                "mutation {} is stale: pattern not found in {}",
                m.name, m.path
            ));
        };
        let outcome = analyze(&mutated);
        let fired: BTreeSet<String> = outcome
            .findings
            .iter()
            .map(|f| f.rule.to_string())
            .collect();
        out.push(MutationResult {
            name: m.name,
            expected_rule: m.expected_rule,
            caught: fired.contains(m.expected_rule),
            flagged: !fired.is_empty(),
            fired_rules: fired.into_iter().collect(),
            what: m.what,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_is_large_and_covers_every_rule() {
        let ms = mutations();
        assert!(ms.len() >= 15, "need >= 15 mutations, have {}", ms.len());
        let names: BTreeSet<_> = ms.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), ms.len(), "mutation names must be unique");
        let rules: BTreeSet<_> = ms.iter().map(|m| m.expected_rule).collect();
        for r in [K1, K2, K3, K4, K5, K6, K7] {
            assert!(rules.contains(r), "no mutation exercises {r}");
        }
    }
}
