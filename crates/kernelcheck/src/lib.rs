//! pdnn-kernelcheck: contract-based safety verifier for the unsafe
//! SIMD kernel zone.
//!
//! The GEMM micro-kernels under `crates/tensor/src/gemm/kernel/` are
//! the only `unsafe` in the math path: raw pointers, hand-indexed
//! panel walks, and `target_feature`-gated intrinsics. Rather than
//! trusting review alone, every kernel entry point carries
//! machine-readable contract annotations:
//!
//! ```text
//! // kernel-contract: ap points-to len >= kc * MR, noalias
//! // kernel-contract: requires target_feature(avx2)
//! ```
//!
//! and this crate verifies, lexically and symbolically, that
//!
//! * every raw access stays inside the declared bounds (`k1`), is
//!   aligned when the intrinsic demands it (`k3`), and every unsafe
//!   kernel declares contracts at all (`k2`);
//! * every intrinsic is enabled, runtime-detected, and dispatched only
//!   by backends whose ISA implies it (`k4`);
//! * the safe wrappers actually establish each declared bound (`k5`)
//!   and never alias `noalias` operands (`k7`);
//! * the safe drivers slice micro-panels to *exactly* the lengths the
//!   contracts consume (`k6`).
//!
//! Like `pdnn-protocheck`, the pass is self-testing: a battery of
//! seeded source mutations must each be caught by the expected rule,
//! proving the checker has teeth, while the clean tree must produce
//! zero findings, proving it has no false positives.
//!
//! Suppressions reuse the workspace-wide `// pdnn-lint: allow(<rule>):
//! <reason>` grammar; unused or malformed directives are reported as
//! meta diagnostics.

pub mod check;
pub mod expr;
pub mod extract;
pub mod mutate;
pub mod report;

use pdnn_lint::source::SourceFile;
use pdnn_lint::{directives, rules, Finding, MetaDiag};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

pub use check::{CoverageSite, KernelSummary};

/// Rule ids, registered in `pdnn_lint::rules::KERNELCHECK_RULES` so
/// the shared suppression machinery recognizes them.
pub const K1: &str = "k1-oob-access";
pub const K2: &str = "k2-missing-contract";
pub const K3: &str = "k3-alignment";
pub const K4: &str = "k4-feature-guard";
pub const K5: &str = "k5-wrapper-precondition";
pub const K6: &str = "k6-driver-guarantee";
pub const K7: &str = "k7-noalias";

/// The unsafe zone: every `.rs` file under this directory is parsed
/// into the kernel model.
pub const ZONE_DIR: &str = "crates/tensor/src/gemm/kernel";

/// Safe drivers whose call-site guarantees (`k6`) and dispatch tables
/// (`k4`) the checker verifies against the zone contracts.
pub const DRIVER_FILES: &[&str] = &[
    "crates/tensor/src/gemm/mod.rs",
    "crates/tensor/src/gemm/prepacked.rs",
    "crates/tensor/src/gemm/backend.rs",
];

/// An in-memory snapshot of the checked sources, so the mutation
/// self-test can analyze perturbed trees without touching disk.
#[derive(Clone)]
pub struct Tree {
    /// (repo-relative path, contents), zone files then drivers.
    pub files: Vec<(String, String)>,
}

impl Tree {
    /// Load the zone and driver files from a repo root.
    pub fn load(root: &Path) -> io::Result<Tree> {
        let mut files = Vec::new();
        let zone = root.join(ZONE_DIR);
        let mut zone_paths: Vec<_> = fs::read_dir(&zone)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        zone_paths.sort();
        for p in zone_paths {
            let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            files.push((format!("{ZONE_DIR}/{name}"), fs::read_to_string(&p)?));
        }
        for d in DRIVER_FILES {
            files.push(((*d).to_string(), fs::read_to_string(root.join(d))?));
        }
        Ok(Tree { files })
    }

    pub fn get(&self, path: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, c)| c.as_str())
    }

    /// A copy of the tree with the first occurrence of `from` in
    /// `path` replaced by `to`; `None` if the file or pattern is
    /// absent (a stale mutation spec, which the self-test treats as a
    /// hard error).
    pub fn with_replacement(&self, path: &str, from: &str, to: &str) -> Option<Tree> {
        let mut out = self.clone();
        let entry = out.files.iter_mut().find(|(p, _)| p == path)?;
        if !entry.1.contains(from) {
            return None;
        }
        entry.1 = entry.1.replacen(from, to, 1);
        Some(out)
    }
}

/// Result of the static pass over one tree.
pub struct StaticOutcome {
    pub findings: Vec<Finding>,
    /// Findings waived by `// pdnn-lint: allow(k...)`, with reasons.
    pub suppressed: Vec<(Finding, String)>,
    /// Problems with the directives themselves (unknown rule, unused
    /// suppression, malformed syntax).
    pub meta: Vec<MetaDiag>,
    pub coverage: Vec<CoverageSite>,
    pub kernels: Vec<KernelSummary>,
}

impl StaticOutcome {
    /// The acceptance bar: no findings, no meta diagnostics, and every
    /// unsafe site covered by a verified contract.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.meta.is_empty() && self.coverage.iter().all(|c| c.covered)
    }
}

/// Run the full static pass over an in-memory tree.
pub fn analyze(tree: &Tree) -> StaticOutcome {
    let mut zone = Vec::new();
    let mut drivers = Vec::new();
    for (path, text) in &tree.files {
        if path.starts_with(ZONE_DIR) {
            zone.push(extract::parse_zone_file(path, text));
        } else {
            drivers.push(SourceFile::parse(path, text));
        }
    }
    // Micro-tile constants (MR/NR) live in the driver `gemm/mod.rs`;
    // zone-local constants fold in on top.
    let mut consts = BTreeMap::new();
    for d in &drivers {
        consts.append(&mut extract::const_table(d));
    }
    for z in &zone {
        consts.append(&mut extract::const_table(&z.file));
    }

    let (raw_findings, coverage, kernels) = check::run(&zone, &drivers, &consts);

    // Suppression pass: shared pdnn-lint grammar, k-rules only.
    let mut suppressions = Vec::new();
    let mut meta = Vec::new();
    for file in zone.iter().map(|z| &z.file).chain(drivers.iter()) {
        let (sup, mut bad) = directives::parse(file, &rules::known_rule);
        meta.append(&mut bad);
        suppressions.extend(
            sup.into_iter()
                .filter(|s| s.rule.starts_with('k'))
                .map(|s| (file.path.clone(), s, false)),
        );
    }
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw_findings {
        let hit = suppressions
            .iter_mut()
            .find(|(path, s, _)| *path == f.path && s.rule == f.rule && s.target_line == f.line);
        match hit {
            Some((_, s, used)) => {
                *used = true;
                let reason = s
                    .reason
                    .clone()
                    .unwrap_or_else(|| "(no reason given)".to_string());
                suppressed.push((f, reason));
            }
            None => findings.push(f),
        }
    }
    for (path, s, used) in &suppressions {
        if !used {
            meta.push(MetaDiag {
                path: path.clone(),
                line: s.comment_line,
                message: format!(
                    "unused suppression: allow({}) matches no kernelcheck finding",
                    s.rule
                ),
            });
        }
    }

    // Coverage was computed against pre-suppression findings: a
    // waived finding still marks its site uncovered. Suppressing a
    // rule buys quiet output, not a coverage claim.
    StaticOutcome {
        findings,
        suppressed,
        meta,
        coverage,
        kernels,
    }
}

/// Load the tree from `root` and run the static pass.
pub fn run_static(root: &Path) -> io::Result<StaticOutcome> {
    Ok(analyze(&Tree::load(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_replacement_requires_the_pattern() {
        let tree = Tree {
            files: vec![("a.rs".to_string(), "fn main() {}".to_string())],
        };
        assert!(tree.with_replacement("a.rs", "main", "other").is_some());
        assert!(tree.with_replacement("a.rs", "absent", "x").is_none());
        assert!(tree.with_replacement("b.rs", "main", "x").is_none());
    }
}
