//! Symbolic integer polynomials over named `usize` variables.
//!
//! Every length and offset the checker reasons about is a polynomial
//! in the kernel's runtime parameters (`kc`) and driver loop indices
//! (`ir`, `pc`, ...), with the micro-tile constants `MR`/`NR` already
//! substituted numerically. Offsets inside kernel bodies are linear in
//! `kc`; driver slice bounds multiply two symbols (`ir * kc_eff`), so
//! the representation is a full multivariate polynomial: a map from
//! monomial (sorted variable multiset) to integer coefficient.
//!
//! The one inequality the checker needs — "is `bound - access_end`
//! nonnegative for every admissible assignment?" — is decided
//! conservatively: shift each variable by its known minimum
//! (`v -> v' + min_v`, `v' >= 0`) and require every coefficient of the
//! result to be nonnegative. For the univariate linear expressions the
//! kernel bodies produce this is exact; in general it is sound but
//! incomplete, which is the right polarity for a safety checker.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A multivariate polynomial with integer coefficients.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    /// Monomial (sorted list of variable names, with repetition for
    /// powers) -> coefficient. Zero coefficients are never stored.
    terms: BTreeMap<Vec<String>, i64>,
}

impl Poly {
    pub fn constant(c: i64) -> Poly {
        let mut p = Poly::default();
        p.add_term(Vec::new(), c);
        p
    }

    pub fn var(name: &str) -> Poly {
        let mut p = Poly::default();
        p.add_term(vec![name.to_string()], 1);
        p
    }

    fn add_term(&mut self, mono: Vec<String>, coef: i64) {
        if coef == 0 {
            return;
        }
        let next = self.terms.get(&mono).copied().unwrap_or(0) + coef;
        if next == 0 {
            self.terms.remove(&mono);
        } else {
            self.terms.insert(mono, next);
        }
    }

    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            out.add_term(m.clone(), *c);
        }
        out
    }

    pub fn sub(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            out.add_term(m.clone(), -c);
        }
        out
    }

    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::default();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m = m1.clone();
                m.extend(m2.iter().cloned());
                m.sort();
                out.add_term(m, c1 * c2);
            }
        }
        out
    }

    /// Exact division by a constant; `None` if any coefficient is not
    /// divisible (the checker treats inexact division as unanalyzable).
    pub fn try_div(&self, d: i64) -> Option<Poly> {
        if d == 0 {
            return None;
        }
        let mut out = Poly::default();
        for (m, c) in &self.terms {
            if c % d != 0 {
                return None;
            }
            out.add_term(m.clone(), c / d);
        }
        Some(out)
    }

    pub fn as_const(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Vec::new()).copied(),
            _ => None,
        }
    }

    pub fn vars(&self) -> BTreeSet<String> {
        self.terms.keys().flat_map(|m| m.iter().cloned()).collect()
    }

    /// Substitute `var := rep` throughout.
    pub fn subst(&self, var: &str, rep: &Poly) -> Poly {
        let mut out = Poly::default();
        for (m, c) in &self.terms {
            let mut part = Poly::constant(*c);
            for v in m {
                let factor = if v == var { rep.clone() } else { Poly::var(v) };
                part = part.mul(&factor);
            }
            out = out.add(&part);
        }
        out
    }

    /// Is `self >= 0` for every assignment where each variable is at
    /// least its entry in `mins` (default 0)? Sound but incomplete:
    /// shift variables to their minimum and require all coefficients
    /// nonnegative.
    pub fn ge_zero(&self, mins: &BTreeMap<String, i64>) -> bool {
        let mut p = self.clone();
        for (v, &mn) in mins {
            if mn != 0 {
                p = p.subst(v, &Poly::var(v).add(&Poly::constant(mn)));
            }
        }
        p.terms.values().all(|&c| c >= 0)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if first {
                if *c < 0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if *c < 0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let mag = c.abs();
            if m.is_empty() {
                write!(f, "{mag}")?;
            } else {
                if mag != 1 {
                    write!(f, "{mag}*")?;
                }
                write!(f, "{}", m.join("*"))?;
            }
        }
        Ok(())
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(text: &str) -> Result<Vec<Tok>, String> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = text[start..i]
                .parse()
                .map_err(|_| format!("integer overflow in `{text}`"))?;
            out.push(Tok::Int(n));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Tok::Ident(text[start..i].to_string()));
        } else {
            out.push(match c {
                '+' => Tok::Plus,
                '-' => Tok::Minus,
                '*' => Tok::Star,
                '/' => Tok::Slash,
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                _ => return Err(format!("unexpected `{c}` in expression `{text}`")),
            });
            i += 1;
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    resolve: &'a dyn Fn(&str) -> Option<Poly>,
    text: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn expr(&mut self) -> Result<Poly, String> {
        let mut p = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    p = p.add(&self.term()?);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    p = p.sub(&self.term()?);
                }
                _ => return Ok(p),
            }
        }
    }

    fn term(&mut self) -> Result<Poly, String> {
        let mut p = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    p = p.mul(&self.unary()?);
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    let d = rhs
                        .as_const()
                        .ok_or_else(|| format!("non-constant divisor in `{}`", self.text))?;
                    p = p
                        .try_div(d)
                        .ok_or_else(|| format!("inexact division in `{}`", self.text))?;
                }
                _ => return Ok(p),
            }
        }
    }

    fn unary(&mut self) -> Result<Poly, String> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.pos += 1;
            return Ok(Poly::constant(0).sub(&self.unary()?));
        }
        self.factor()
    }

    fn factor(&mut self) -> Result<Poly, String> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Poly::constant(n))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                (self.resolve)(&name).ok_or_else(|| format!("unresolved symbol `{name}`"))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let p = self.expr()?;
                if !matches!(self.peek(), Some(Tok::RParen)) {
                    return Err(format!("unbalanced parentheses in `{}`", self.text));
                }
                self.pos += 1;
                Ok(p)
            }
            _ => Err(format!("malformed expression `{}`", self.text)),
        }
    }
}

/// Parse an integer expression into a [`Poly`], resolving identifiers
/// through `resolve` (constants, loop maxima, symbolic parameters).
pub fn parse(text: &str, resolve: &dyn Fn(&str) -> Option<Poly>) -> Result<Poly, String> {
    let toks = tokenize(text)?;
    if toks.is_empty() {
        return Err("empty expression".to_string());
    }
    let mut p = Parser {
        toks,
        pos: 0,
        resolve,
        text,
    };
    let out = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(format!("trailing tokens in `{text}`"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts(name: &str) -> Option<Poly> {
        match name {
            "MR" | "NR" => Some(Poly::constant(8)),
            _ => Some(Poly::var(name)),
        }
    }

    #[test]
    fn parses_linear_offsets() {
        let p = parse("kk * NR + h * 4", &consts).unwrap();
        let q = Poly::var("kk")
            .mul(&Poly::constant(8))
            .add(&Poly::var("h").mul(&Poly::constant(4)));
        assert_eq!(p, q);
    }

    #[test]
    fn division_must_be_exact() {
        assert_eq!(parse("MR / 2", &consts).unwrap(), Poly::constant(4));
        assert!(parse("MR / 3", &consts).is_err());
        assert!(parse("kc / 2", &consts).is_err());
    }

    #[test]
    fn products_of_symbols_cancel_in_differences() {
        // ((ir + 1) - ir) * kc * 8 == kc * 8
        let hi = parse("(ir + 1) * kc_eff * MR", &consts).unwrap();
        let lo = parse("ir * kc_eff * MR", &consts).unwrap();
        let len = hi.sub(&lo);
        let want = parse("kc_eff * MR", &consts).unwrap();
        assert_eq!(len, want);
    }

    #[test]
    fn ge_zero_uses_minimums() {
        // 8kc - 8 >= 0 only when kc >= 1.
        let p = parse("kc * 8 - 8", &consts).unwrap();
        assert!(!p.ge_zero(&BTreeMap::new()));
        let mut mins = BTreeMap::new();
        mins.insert("kc".to_string(), 1);
        assert!(p.ge_zero(&mins));
    }

    #[test]
    fn display_is_readable() {
        let p = parse("kc * MR - 3", &consts).unwrap();
        assert_eq!(p.to_string(), "-3 + 8*kc");
    }
}
