//! Acceptance tests: the real tree is clean and fully covered, the
//! mutation battery all gets caught, and the suppression grammar is
//! honored (used allows waive, unused allows are meta diagnostics).

use pdnn_kernelcheck::{analyze, mutate, run_static, Tree, ZONE_DIR};
use std::collections::BTreeSet;
use std::path::Path;

fn repo_root() -> &'static Path {
    // crates/kernelcheck -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn clean_tree_has_zero_findings_and_full_coverage() {
    let outcome = run_static(repo_root()).expect("zone readable");
    assert!(
        outcome.findings.is_empty(),
        "clean tree produced findings:\n{:#?}",
        outcome.findings
    );
    assert!(
        outcome.meta.is_empty(),
        "clean tree produced meta diagnostics:\n{:#?}",
        outcome.meta
    );
    assert!(
        outcome.suppressed.is_empty(),
        "clean tree should need no suppressions:\n{:#?}",
        outcome.suppressed
    );
    let uncovered: Vec<_> = outcome.coverage.iter().filter(|c| !c.covered).collect();
    assert!(
        uncovered.is_empty(),
        "unsafe sites without verified contracts:\n{uncovered:#?}"
    );
    assert!(
        !outcome.coverage.is_empty(),
        "coverage table empty — zone extraction is broken"
    );
    // Every unsafe kernel fn carries contracts the checker verified.
    let unsafe_kernels = outcome.kernels.iter().filter(|k| k.is_unsafe).count();
    assert!(
        unsafe_kernels >= 10,
        "expected the full kernel battery, found {unsafe_kernels} unsafe kernels"
    );
}

#[test]
fn mutation_battery_is_fully_caught() {
    let tree = Tree::load(repo_root()).expect("zone readable");
    let baseline = analyze(&tree);
    let results = mutate::run_mutations(&tree, &baseline).expect("clean baseline");
    assert!(
        results.len() >= 15,
        "need >= 15 mutations, have {}",
        results.len()
    );
    let names: BTreeSet<_> = results.iter().map(|r| r.name).collect();
    assert_eq!(names.len(), results.len(), "duplicate mutation names");
    let missed: Vec<_> = results
        .iter()
        .filter(|r| !r.caught)
        .map(|r| {
            format!(
                "{}: expected {}, fired {:?}",
                r.name, r.expected_rule, r.fired_rules
            )
        })
        .collect();
    assert!(missed.is_empty(), "missed mutations:\n{missed:#?}");
}

fn fixture_tree(kernel: &str) -> Tree {
    Tree {
        files: vec![(format!("{ZONE_DIR}/fixture.rs"), kernel.to_string())],
    }
}

const WAIVED: &str = r#"
pub const MR: usize = 8;

pub fn k(kc: usize, ap: &[f32]) {
    kernel_precondition!(ap.len() >= kc * MR, "short");
    unsafe { k_imp(kc, ap.as_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
unsafe fn k_imp(kc: usize, ap: *const f32) {
    // pdnn-lint: allow(k1-oob-access): fixture waiver exercised by the test
    let x = *ap.add(kc * MR);
    let _ = x;
}
"#;

#[test]
fn suppression_waives_a_finding_and_reports_unused_allows() {
    // The deliberate off-by-one is waived by the directive.
    let outcome = analyze(&fixture_tree(WAIVED));
    assert!(
        outcome.findings.is_empty(),
        "waived finding still reported:\n{:#?}",
        outcome.findings
    );
    assert_eq!(outcome.suppressed.len(), 1);
    assert_eq!(outcome.suppressed[0].0.rule, "k1-oob-access");
    assert!(outcome.suppressed[0].1.contains("fixture waiver"));
    assert!(outcome.meta.is_empty(), "{:#?}", outcome.meta);
    // A suppressed violation still counts against coverage.
    assert!(outcome.coverage.iter().any(|c| !c.covered));

    // Same fixture with the bug fixed: the allow is now unused.
    let fixed = WAIVED.replace("*ap.add(kc * MR)", "*ap.add(kc * MR - 1)");
    let outcome = analyze(&fixture_tree(&fixed));
    assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
    assert!(outcome.suppressed.is_empty());
    assert_eq!(outcome.meta.len(), 1, "{:#?}", outcome.meta);
    assert!(outcome.meta[0].message.contains("unused suppression"));
}

#[test]
fn seeded_oob_is_reported_without_a_waiver() {
    let unwaived = WAIVED.replace(
        "    // pdnn-lint: allow(k1-oob-access): fixture waiver exercised by the test\n",
        "",
    );
    let outcome = analyze(&fixture_tree(&unwaived));
    assert_eq!(outcome.findings.len(), 1, "{:#?}", outcome.findings);
    assert_eq!(outcome.findings[0].rule, "k1-oob-access");
}
