//! Property-based tests for the tensor kernels.
//!
//! The blocked GEMM must agree with the naive triple loop on *every*
//! shape/transpose/alpha/beta combination — edge panels, tiny
//! matrices, and block-boundary-straddling sizes included.

use pdnn_tensor::gemm::{Blocking, GemmContext, GemmOp, Trans};
use pdnn_tensor::{blas1, Matrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f32>> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn trans_strategy() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::N), Just(Trans::T)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in trans_strategy(),
        tb in trans_strategy(),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let mut rng = pdnn_util::Prng::new(seed);
        let a: Matrix<f32> = match ta {
            Trans::N => Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng),
            Trans::T => Matrix::random_uniform(k, m, -1.0, 1.0, &mut rng),
        };
        let b: Matrix<f32> = match tb {
            Trans::N => Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng),
            Trans::T => Matrix::random_uniform(n, k, -1.0, 1.0, &mut rng),
        };
        let c0: Matrix<f32> = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);

        let mut fast = c0.clone();
        let mut slow = c0;
        let op = GemmOp::ab(&a, ta, &b, tb).alpha(alpha).beta(beta);
        op.run(&GemmContext::sequential(), &mut fast);
        op.run_reference(&mut slow);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3,
            "diff={} m={m} n={n} k={k}", fast.max_abs_diff(&slow));
    }

    #[test]
    fn gemm_invariant_under_blocking(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        mc in 1usize..40,
        kc in 1usize..40,
        nc in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = pdnn_util::Prng::new(seed);
        let a: Matrix<f32> = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b: Matrix<f32> = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        let default_ctx = GemmContext::sequential();
        let odd_ctx = GemmContext::sequential()
            .with_blocking(Blocking { mc, kc, nc });
        let op = GemmOp::<f32>::ab(&a, Trans::N, &b, Trans::N);
        op.run(&default_ctx, &mut c1);
        op.run(&odd_ctx, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-3);
    }

    #[test]
    fn transpose_is_involution(a in (1usize..20, 1usize..20).prop_flat_map(|(r, c)| matrix_strategy(r, c))) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn matmul_transpose_identity(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
        seed in 0u64..1000,
    ) {
        // (A B)^T == B^T A^T
        let mut rng = pdnn_util::Prng::new(seed);
        let a: Matrix<f32> = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b: Matrix<f32> = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        // The deprecated `matmul` shim must stay behaviourally intact.
        #[allow(deprecated)]
        let ab_t = pdnn_tensor::matmul(&a, &b).transposed();
        #[allow(deprecated)]
        let bt_at = pdnn_tensor::matmul(&b.transposed(), &a.transposed());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-3);
    }

    #[test]
    fn dot_is_symmetric_and_bilinear(
        xs in proptest::collection::vec(-3.0f32..3.0, 1..64),
        alpha in -2.0f32..2.0,
    ) {
        let ys: Vec<f32> = xs.iter().map(|v| v * 0.5 - 1.0).collect();
        let xy = blas1::dot(&xs, &ys);
        let yx = blas1::dot(&ys, &xs);
        prop_assert!((xy - yx).abs() < 1e-6);

        let scaled: Vec<f32> = xs.iter().map(|v| alpha * v).collect();
        let lhs = blas1::dot(&scaled, &ys);
        prop_assert!((lhs - alpha as f64 * xy).abs() < 1e-3 * (1.0 + xy.abs()));
    }

    #[test]
    fn axpy_matches_scalar_loop(
        xs in proptest::collection::vec(-3.0f32..3.0, 1..64),
        alpha in -2.0f32..2.0,
    ) {
        let mut ys: Vec<f32> = xs.iter().rev().cloned().collect();
        let expect: Vec<f32> = ys.iter().zip(xs.iter()).map(|(&y, &x)| alpha * x + y).collect();
        blas1::axpy(alpha, &xs, &mut ys);
        for (got, want) in ys.iter().zip(expect.iter()) {
            prop_assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn nrm2_triangle_inequality(
        xs in proptest::collection::vec(-3.0f32..3.0, 1..64),
    ) {
        let ys: Vec<f32> = xs.iter().map(|v| 1.0 - v).collect();
        let sum: Vec<f32> = xs.iter().zip(ys.iter()).map(|(&a, &b)| a + b).collect();
        prop_assert!(blas1::nrm2(&sum) <= blas1::nrm2(&xs) + blas1::nrm2(&ys) + 1e-6);
    }

    #[test]
    fn column_sums_match_transpose_row_sums(
        a in (1usize..12, 1usize..12).prop_flat_map(|(r, c)| matrix_strategy(r, c)),
    ) {
        let sums = a.column_sums();
        let t = a.transposed();
        for (c, &s) in sums.iter().enumerate() {
            let row_sum: f32 = t.row(c).iter().sum();
            prop_assert!((s - row_sum).abs() < 1e-4);
        }
    }
}
