//! Scalar-vs-SIMD bit-identity property tests.
//!
//! The backend contract (see `gemm::backend`) promises that every
//! runtime-dispatched microkernel reproduces the forced-scalar
//! reference *bitwise* — same FMA-free accumulation chains, same
//! rounding — so that backend selection can never perturb training
//! trajectories or telemetry. These tests sweep odd and degenerate
//! panel shapes (ragged edges, single rows/columns, k = 1, shapes
//! straddling MR/NR and cache-block boundaries) across every operand
//! form of [`GemmOp`] for every ISA the host actually supports.

use pdnn_tensor::gemm::{
    available_isas, backend_for, scalar_backend, Blocking, GemmContext, GemmOp, PackedA, PackedB,
    Trans, MR, NR,
};
use pdnn_tensor::{Matrix, Scalar};
use pdnn_util::Prng;

/// Shapes chosen to exercise full tiles, ragged edges in both the MR
/// and NR dimensions, degenerate single-row/column products, and
/// sizes that straddle the default cache blocks.
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 1, 64),
        (1, 17, 1),
        (MR, NR, 7),
        (MR - 1, NR + 1, 13),
        (MR + 1, NR - 1, 1),
        (2 * MR + 3, 2 * NR + 5, 31),
        (37, 29, 41),
        (64, 64, 64),
        (129, 65, 257), // straddles mc=128 and kc=256
    ]
}

fn rand_matrix<T: Scalar>(rows: usize, cols: usize, rng: &mut Prng) -> Matrix<T> {
    // Non-round values so any rounding divergence actually shows up.
    Matrix::from_fn(rows, cols, |r, c| {
        let _ = (r, c);
        T::from_f64(rng.uniform() * 2.0 - 1.0)
    })
}

/// Run every GemmOp operand form for `(m, n, k)` under `ctx` and
/// return the results, bitwise-comparable across contexts.
fn all_forms<T: Scalar>(
    ctx: &GemmContext,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<Matrix<T>> {
    let mut rng = Prng::new(seed);
    let a: Matrix<T> = rand_matrix(m, k, &mut rng);
    // b is stored n x k and used transposed, so the same storage can
    // feed both the plain/packed forms and the streamed-B^T form.
    let b: Matrix<T> = rand_matrix(n, k, &mut rng);
    let c0: Matrix<T> = rand_matrix(m, n, &mut rng);
    let alpha = T::from_f64(0.75);
    let beta = T::from_f64(-1.25);

    let pa = PackedA::new(&a, Trans::N, ctx.blocking());
    let pb = PackedB::new(&b, Trans::T, ctx.blocking());

    let ops: Vec<GemmOp<'_, T>> = vec![
        GemmOp::ab(&a, Trans::N, &b, Trans::T),
        GemmOp::packed_b(&a, Trans::N, &pb),
        GemmOp::packed_a(&pa, &b, Trans::T),
        GemmOp::packed_ab(&pa, &pb),
        GemmOp::packed_a_bt(&pa, b.as_slice()),
    ];
    ops.into_iter()
        .map(|op| {
            let mut c = c0.clone();
            op.alpha(alpha).beta(beta).run(ctx, &mut c);
            c
        })
        .collect()
}

fn assert_backend_parity<T: Scalar>() {
    let scalar_ctx = GemmContext::sequential().with_backend(scalar_backend());
    for isa in available_isas() {
        let backend = backend_for(isa).expect("available ISA must resolve");
        let ctx = GemmContext::sequential().with_backend(backend);
        for (m, n, k) in shapes() {
            let seed = (m * 1_000_000 + n * 1_000 + k) as u64;
            let want = all_forms::<T>(&scalar_ctx, m, n, k, seed);
            let got = all_forms::<T>(&ctx, m, n, k, seed);
            for (form, (w, g)) in want.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    w, g,
                    "backend {isa} diverges from scalar: form #{form}, m={m} n={n} k={k}"
                );
            }
        }
    }
}

#[test]
fn f32_backends_bitwise_match_scalar_on_awkward_shapes() {
    assert_backend_parity::<f32>();
}

#[test]
fn f64_backends_bitwise_match_scalar_on_awkward_shapes() {
    assert_backend_parity::<f64>();
}

#[test]
fn parity_holds_under_degenerate_blocking() {
    // Tiny cache blocks force kc=1 panels and maximal edge handling.
    let blocking = Blocking {
        mc: 8,
        kc: 1,
        nc: 8,
    };
    let scalar_ctx = GemmContext::sequential()
        .with_backend(scalar_backend())
        .with_blocking(blocking);
    for isa in available_isas() {
        let ctx = GemmContext::sequential()
            .with_backend(backend_for(isa).expect("available ISA must resolve"))
            .with_blocking(blocking);
        for (m, n, k) in [(3, 5, 2), (MR, NR, 1), (19, 23, 9)] {
            let want = all_forms::<f32>(&scalar_ctx, m, n, k, 99);
            let got = all_forms::<f32>(&ctx, m, n, k, 99);
            assert_eq!(want, got, "isa {isa} m={m} n={n} k={k}");
        }
    }
}

#[test]
fn parity_holds_threaded() {
    // Row-stripe partitioning must not interact with kernel choice.
    let scalar_ctx = GemmContext::threaded(4).with_backend(scalar_backend());
    for isa in available_isas() {
        let ctx = GemmContext::threaded(4).with_backend(backend_for(isa).expect("resolves"));
        let want = all_forms::<f32>(&scalar_ctx, 70, 33, 48, 7);
        let got = all_forms::<f32>(&ctx, 70, 33, 48, 7);
        assert_eq!(want, got, "isa {isa}");
    }
}
