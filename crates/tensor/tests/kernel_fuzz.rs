//! Adversarial shape fuzz sweep for the SIMD kernel zone.
//!
//! Where `backend_parity` spot-checks a curated shape list, this sweep
//! is *exhaustive* over the adversarial axis set: every combination of
//! `m, n, k` drawn from {0, 1, MR-1, MR, MR+1, primes straddling the
//! tile} — the values that historically break hand-indexed kernels
//! (empty operands, single-lane tails, one-past-a-tile edges, ragged
//! primes that never divide the micro-tile). Every combination runs
//! through every `GemmOp` operand form on every ISA the host supports
//! and must match the forced-scalar reference bit for bit, in both
//! precisions.
//!
//! This is the dynamic complement to `pdnn-kernelcheck`: the static
//! pass proves the accesses are in bounds under the contracts; this
//! sweep checks the *values* those accesses produce on exactly the
//! shapes where a masked out-of-bounds read or a short tail loop
//! would still yield a wrong-but-in-bounds answer.

use pdnn_tensor::gemm::{
    available_isas, backend_for, scalar_backend, GemmContext, GemmOp, PackedA, PackedB, Trans, MR,
    NR,
};
use pdnn_tensor::{Matrix, Scalar};
use pdnn_util::Prng;

/// The adversarial axis: degenerate, tail-only, full-tile, and
/// one-past-tile extents plus primes that straddle two tiles.
/// (MR == NR == 8, so 7/9 cover both MR+-1 and NR+-1.)
fn axis() -> Vec<usize> {
    let mut v = vec![0, 1, MR - 1, MR, MR + 1, 13, 17];
    v.dedup();
    v
}

fn rand_matrix<T: Scalar>(rows: usize, cols: usize, rng: &mut Prng) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |r, c| {
        let _ = (r, c);
        T::from_f64(rng.uniform() * 2.0 - 1.0)
    })
}

/// All five operand forms of one `(m, n, k)` product under `ctx`.
fn all_forms<T: Scalar>(
    ctx: &GemmContext,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<Matrix<T>> {
    let mut rng = Prng::new(seed);
    let a: Matrix<T> = rand_matrix(m, k, &mut rng);
    let b: Matrix<T> = rand_matrix(n, k, &mut rng);
    let c0: Matrix<T> = rand_matrix(m, n, &mut rng);
    let alpha = T::from_f64(1.5);
    let beta = T::from_f64(-0.5);

    let pa = PackedA::new(&a, Trans::N, ctx.blocking());
    let pb = PackedB::new(&b, Trans::T, ctx.blocking());

    let ops: Vec<GemmOp<'_, T>> = vec![
        GemmOp::ab(&a, Trans::N, &b, Trans::T),
        GemmOp::packed_b(&a, Trans::N, &pb),
        GemmOp::packed_a(&pa, &b, Trans::T),
        GemmOp::packed_ab(&pa, &pb),
        GemmOp::packed_a_bt(&pa, b.as_slice()),
    ];
    ops.into_iter()
        .map(|op| {
            let mut c = c0.clone();
            op.alpha(alpha).beta(beta).run(ctx, &mut c);
            c
        })
        .collect()
}

fn exhaustive_sweep<T: Scalar>() {
    let scalar_ctx = GemmContext::sequential().with_backend(scalar_backend());
    let axis = axis();
    for isa in available_isas() {
        let backend = backend_for(isa).expect("available ISA must resolve");
        let ctx = GemmContext::sequential().with_backend(backend);
        for &m in &axis {
            for &n in &axis {
                for &k in &axis {
                    let seed = (m * 83_777 + n * 911 + k) as u64 ^ 0x5eed;
                    let want = all_forms::<T>(&scalar_ctx, m, n, k, seed);
                    let got = all_forms::<T>(&ctx, m, n, k, seed);
                    for (form, (w, g)) in want.iter().zip(got.iter()).enumerate() {
                        assert_eq!(
                            w, g,
                            "backend {isa} diverges from scalar: form #{form}, \
                             m={m} n={n} k={k}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn f32_exhaustive_adversarial_shapes_bitwise_match_scalar() {
    exhaustive_sweep::<f32>();
}

#[test]
fn f64_exhaustive_adversarial_shapes_bitwise_match_scalar() {
    exhaustive_sweep::<f64>();
}

#[test]
fn tail_only_products_survive_tiny_panels() {
    // kc=1 blocking makes every k-panel a single element, so every
    // kernel invocation is all tail handling; combined with sub-tile
    // m/n this exercises the mr_eff/nr_eff edge paths exclusively.
    let blocking = pdnn_tensor::gemm::Blocking {
        mc: 8,
        kc: 1,
        nc: 8,
    };
    let scalar_ctx = GemmContext::sequential()
        .with_backend(scalar_backend())
        .with_blocking(blocking);
    for isa in available_isas() {
        let ctx = GemmContext::sequential()
            .with_backend(backend_for(isa).expect("available ISA must resolve"))
            .with_blocking(blocking);
        for m in 1..MR {
            for n in 1..NR {
                let want = all_forms::<f32>(&scalar_ctx, m, n, 3, 41);
                let got = all_forms::<f32>(&ctx, m, n, 3, 41);
                assert_eq!(want, got, "isa {isa} m={m} n={n} tail-only");
            }
        }
    }
}
