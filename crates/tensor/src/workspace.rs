//! Reusable scratch-buffer arena.
//!
//! The paper manages memory "by essentially keeping track of what we
//! have allocated so that we can reallocate out of that memory instead
//! of repeatedly freeing and allocating … it greatly reduces timing
//! jitter" (Section V.A.4). [`Workspace`] is that mechanism: a
//! free-list of retired buffers that `take_*` calls recycle best-fit,
//! so a steady-state training loop allocates only until every phase
//! has hit its high-water mark and then runs allocation-free.
//!
//! Buffers are handed out zero-filled at their exact requested length,
//! so a `take_matrix` is a drop-in replacement for `Matrix::zeros` —
//! callers that forget to `give_*` a buffer back merely lose the reuse
//! (the buffer drops normally), never correctness.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Cumulative counters for one [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// `take_*` calls that had to allocate a fresh buffer.
    pub allocs: u64,
    /// `take_*` calls satisfied from the free list.
    pub reuses: u64,
    /// Bytes handed out from recycled buffers.
    pub bytes_reused: u64,
    /// Largest total capacity ever parked on the free list.
    pub high_water_bytes: u64,
}

/// Recycling arena for GEMM/DNN scratch buffers.
///
/// Single-owner by design (`&mut self` everywhere): each worker rank
/// or bench thread holds its own `Workspace`, mirroring how the GEMM
/// stripes own disjoint state instead of sharing a locked pool.
#[derive(Clone, Debug, Default)]
pub struct Workspace<T: Scalar> {
    free: Vec<Vec<T>>,
    stats: WorkspaceStats,
}

impl<T: Scalar> Workspace<T> {
    /// Empty arena; grows to the caller's high-water mark on demand.
    pub fn new() -> Self {
        Workspace {
            free: Vec::new(),
            stats: WorkspaceStats::default(),
        }
    }

    /// Best-fit lookup shared by the `take_*` variants: the smallest
    /// parked buffer whose capacity fits, or a fresh allocation.
    /// Length is whatever the recycled buffer held — callers fix it up.
    fn take_raw(&mut self, len: usize) -> Vec<T> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j| buf.capacity() < self.free[j].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.stats.reuses += 1;
                self.stats.bytes_reused += (len * std::mem::size_of::<T>()) as u64;
                self.free.swap_remove(i)
            }
            None => {
                self.stats.allocs += 1;
                Vec::with_capacity(len)
            }
        }
    }

    /// Take a zero-filled buffer of exactly `len` elements.
    ///
    /// Reuses the smallest parked buffer whose capacity fits (best
    /// fit); allocates fresh only when none does.
    pub fn take_vec(&mut self, len: usize) -> Vec<T> {
        let mut buf = self.take_raw(len);
        buf.clear();
        buf.resize(len, T::ZERO);
        buf
    }

    /// Take a buffer of exactly `len` elements with **unspecified
    /// contents** — the zero-fill of [`Self::take_vec`] is skipped.
    ///
    /// For buffers the caller fully overwrites before reading (GEMM
    /// outputs written with `beta = 0`, `copy_from_slice`
    /// destinations, pack buffers): recycling a multi-megabyte
    /// scratch buffer through `take_vec` would memset it only for
    /// every byte to be overwritten again.
    pub fn take_vec_scratch(&mut self, len: usize) -> Vec<T> {
        let mut buf = self.take_raw(len);
        if buf.len() > len {
            buf.truncate(len);
        } else {
            // Only the grown tail needs initializing; the recycled
            // prefix stays as-is (contents are unspecified anyway).
            buf.resize(len, T::ZERO);
        }
        buf
    }

    /// Take a zero-filled `rows x cols` matrix (arena-backed
    /// `Matrix::zeros`).
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_vec(rows, cols, self.take_vec(rows * cols))
    }

    /// Take a `rows x cols` matrix with **unspecified contents** (see
    /// [`Self::take_vec_scratch`]); the caller must fully overwrite it
    /// before reading.
    pub fn take_matrix_scratch(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_vec(rows, cols, self.take_vec_scratch(rows * cols))
    }

    /// Return a buffer for later reuse; its contents are dead.
    pub fn give_vec(&mut self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        self.free.push(buf);
        let held: u64 = self
            .free
            .iter()
            .map(|b| (b.capacity() * std::mem::size_of::<T>()) as u64)
            .sum();
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(held);
    }

    /// Return a matrix's backing storage for later reuse.
    pub fn give_matrix(&mut self, m: Matrix<T>) {
        self.give_vec(m.into_vec());
    }

    /// Counters since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Zero the counters, keeping the parked buffers.
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }

    /// Number of buffers currently parked on the free list.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_and_exact_len() {
        let mut ws: Workspace<f32> = Workspace::new();
        let mut v = ws.take_vec(10);
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|&x| x == 0.0));
        v.fill(7.0);
        ws.give_vec(v);
        let v2 = ws.take_vec(10);
        assert_eq!(v2.len(), 10);
        assert!(v2.iter().all(|&x| x == 0.0), "recycled buffer not zeroed");
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut ws: Workspace<f32> = Workspace::new();
        for _ in 0..5 {
            let a = ws.take_vec(100);
            let b = ws.take_vec(40);
            ws.give_vec(a);
            ws.give_vec(b);
        }
        let s = ws.stats();
        assert_eq!(s.allocs, 2, "only the first round should allocate");
        assert_eq!(s.reuses, 8);
        assert!(s.bytes_reused > 0);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut ws: Workspace<f32> = Workspace::new();
        let big = ws.take_vec(1000);
        let small = ws.take_vec(50);
        ws.give_vec(big);
        ws.give_vec(small);
        let got = ws.take_vec(40);
        assert!(got.capacity() < 1000, "took the big buffer for a small ask");
        ws.give_vec(got);
    }

    #[test]
    fn smaller_buffers_grow_in_place_of_fresh_alloc() {
        let mut ws: Workspace<f32> = Workspace::new();
        let v = ws.take_vec(10);
        ws.give_vec(v);
        // Nothing fits 100: counts as a fresh alloc, parked buffer stays.
        let v = ws.take_vec(100);
        assert_eq!(ws.stats().allocs, 2);
        ws.give_vec(v);
        assert_eq!(ws.parked(), 2);
    }

    #[test]
    fn matrix_round_trip() {
        let mut ws: Workspace<f64> = Workspace::new();
        let m = ws.take_matrix(4, 6);
        assert_eq!(m.shape(), (4, 6));
        ws.give_matrix(m);
        let m2 = ws.take_matrix(3, 8);
        assert_eq!(m2.shape(), (3, 8));
        assert_eq!(ws.stats().reuses, 1, "24-element buffer should recycle");
    }

    #[test]
    fn high_water_tracks_parked_capacity() {
        let mut ws: Workspace<f32> = Workspace::new();
        let a = ws.take_vec(100);
        let b = ws.take_vec(200);
        ws.give_vec(a);
        ws.give_vec(b);
        assert!(ws.stats().high_water_bytes >= 300 * 4);
    }

    #[test]
    fn scratch_take_skips_zero_fill_but_has_exact_len() {
        let mut ws: Workspace<f32> = Workspace::new();
        let mut v = ws.take_vec(10);
        v.fill(7.0);
        ws.give_vec(v);
        // Recycled, shrunk: stale contents allowed, length exact.
        let v2 = ws.take_vec_scratch(6);
        assert_eq!(v2.len(), 6);
        assert_eq!(ws.stats().reuses, 1);
        ws.give_vec(v2);
        // Recycled, grown within capacity: the tail past the old
        // length is zeroed, the prefix is unspecified.
        let v3 = ws.take_vec_scratch(9);
        assert_eq!(v3.len(), 9);
        assert_eq!(v3[8], 0.0);
        ws.give_vec(v3);
        // Fresh allocation arrives zeroed by construction.
        let v4 = ws.take_vec_scratch(100);
        assert_eq!(v4.len(), 100);
        assert_eq!(ws.stats().allocs, 2);
    }

    #[test]
    fn scratch_matrix_round_trip() {
        let mut ws: Workspace<f64> = Workspace::new();
        let m = ws.take_matrix_scratch(4, 6);
        assert_eq!(m.shape(), (4, 6));
        ws.give_matrix(m);
        let m2 = ws.take_matrix_scratch(3, 8);
        assert_eq!(m2.shape(), (3, 8));
        assert_eq!(ws.stats().reuses, 1);
    }

    #[test]
    fn zero_len_takes_are_harmless() {
        let mut ws: Workspace<f32> = Workspace::new();
        let v = ws.take_vec(0);
        assert!(v.is_empty());
        ws.give_vec(v);
        assert_eq!(ws.parked(), 0, "capacity-0 buffers are not parked");
    }
}
