//! Scalar abstraction over `f32`/`f64`.
//!
//! The paper's tuned matrix library supports both single precision
//! (SGEMM — the workhorse of DNN training, Section V.A.5 notes the
//! inner kernel was retuned for it) and double precision (DGEMM). Our
//! kernels are generic over this trait so benches can compare both.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::gemm::backend::{AccFn, BtFn, ComputeBackend};

/// Floating-point element type usable by the kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Maximum of two values (NaN-propagating like `f32::max` is not
    /// required; ties resolved as the std float max).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// True when the value is finite.
    fn is_finite(self) -> bool;

    /// The `backend`'s packed-panel accumulate kernel for this type
    /// (per-type projection of [`ComputeBackend::acc_f32`]/`acc_f64`;
    /// resolved once per GEMM driver call, not per micro-tile).
    fn acc_kernel(backend: &dyn ComputeBackend) -> AccFn<Self>;
    /// The `backend`'s streaming-B^T column kernel for this type.
    fn bt_kernel(backend: &dyn ComputeBackend) -> BtFn<Self>;
}

macro_rules! impl_scalar {
    ($t:ty, $acc:ident, $bt:ident) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // Plain `a*b+c`: letting LLVM contract keeps the kernel
                // auto-vectorizable on targets without fast FMA.
                self * a + b
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn acc_kernel(backend: &dyn ComputeBackend) -> AccFn<Self> {
                backend.$acc()
            }
            #[inline(always)]
            fn bt_kernel(backend: &dyn ComputeBackend) -> BtFn<Self> {
                backend.$bt()
            }
        }
    };
}

impl_scalar!(f32, acc_f32, bt_f32);
impl_scalar!(f64, acc_f64, bt_f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(
            T::from_f64(2.0).mul_add(T::from_f64(3.0), T::ONE).to_f64(),
            7.0
        );
        assert!(T::from_f64(4.0).sqrt().to_f64() == 2.0);
        assert!(T::from_f64(-1.5).abs().to_f64() == 1.5);
        assert!(T::from_f64(1.0).is_finite());
        assert!(!T::from_f64(f64::INFINITY).is_finite());
    }

    #[test]
    fn f32_scalar_ops() {
        roundtrip::<f32>();
    }

    #[test]
    fn f64_scalar_ops() {
        roundtrip::<f64>();
    }

    #[test]
    fn max_min_behave() {
        assert_eq!(Scalar::max(1.0f32, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
    }
}
