//! Level-1 BLAS-style vector kernels.
//!
//! These run on plain slices; the conjugate-gradient inner loop of the
//! Hessian-free optimizer is built entirely out of them. Reductions
//! (`dot`, `nrm2`) accumulate in `f64` even for `f32` inputs — with
//! 10–100 M parameter vectors, naive `f32` accumulation loses enough
//! precision to destabilize CG.

use crate::scalar::Scalar;

/// `y += alpha * x`.
///
/// # Panics
/// If the slices differ in length.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// `y = alpha * x + beta * y`.
pub fn axpby<T: Scalar>(alpha: T, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(xi, beta * *yi);
    }
}

/// Scale `x` by `alpha` in place.
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product with `f64` accumulation.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // Four independent partial sums: breaks the serial dependence
    // chain so the loop pipelines/vectorizes.
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += x[j].to_f64() * y[j].to_f64();
        s1 += x[j + 1].to_f64() * y[j + 1].to_f64();
        s2 += x[j + 2].to_f64() * y[j + 2].to_f64();
        s3 += x[j + 3].to_f64() * y[j + 3].to_f64();
    }
    for j in chunks * 4..x.len() {
        s0 += x[j].to_f64() * y[j].to_f64();
    }
    (s0 + s1) + (s2 + s3)
}

/// Euclidean norm with `f64` accumulation.
pub fn nrm2<T: Scalar>(x: &[T]) -> f64 {
    dot(x, x).sqrt()
}

/// Sum of absolute values with `f64` accumulation.
pub fn asum<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|&v| v.to_f64().abs()).sum()
}

/// Copy `x` into `y`.
pub fn copy<T: Scalar>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "copy length mismatch");
    y.copy_from_slice(x);
}

/// Set every element to zero.
pub fn zero<T: Scalar>(x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi = T::ZERO;
    }
}

/// Elementwise `y[i] += x[i]` (alpha = 1 fast path).
pub fn add<T: Scalar>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "add length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += xi;
    }
}

/// Largest absolute element (0 for an empty slice).
pub fn amax<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|&v| v.to_f64().abs()).fold(0.0, f64::max)
}

/// Linear combination `out = a*x + b*y`, writing a fresh vector.
pub fn lincomb<T: Scalar>(a: T, x: &[T], b: T, y: &[T]) -> Vec<T> {
    assert_eq!(x.len(), y.len(), "lincomb length mismatch");
    x.iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| a.mul_add(xi, b * yi))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0f64, 1.0];
        let mut y = [2.0f64, 4.0];
        axpby(3.0, &x, 0.5, &mut y);
        assert_eq!(y, [4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_checks_lengths() {
        let x = [1.0f32];
        let mut y = [1.0f32, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    fn dot_matches_naive_and_handles_tail() {
        // Length 7 exercises the remainder loop.
        let x: Vec<f32> = (1..=7).map(|i| i as f32).collect();
        let y: Vec<f32> = (1..=7).map(|i| (i * i) as f32).collect();
        let expect: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((dot(&x, &y) - expect).abs() < 1e-9);
    }

    #[test]
    fn dot_empty_is_zero() {
        let x: [f32; 0] = [];
        assert_eq!(dot(&x, &x), 0.0);
    }

    #[test]
    fn dot_accumulates_in_f64() {
        // 1e8 + many tiny values: f32 accumulation would lose them all.
        let n = 10_000;
        let mut x = vec![1.0f32; n + 1];
        x[0] = 1.0e8;
        let y = vec![1.0f32; n + 1];
        let d = dot(&x, &y);
        assert!((d - (1.0e8 + n as f64)).abs() < 1.0, "d={d}");
    }

    #[test]
    fn nrm2_pythagorean() {
        let x = [3.0f32, 4.0];
        assert!((nrm2(&x) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn asum_and_amax() {
        let x = [-1.0f32, 2.0, -3.0];
        assert!((asum(&x) - 6.0).abs() < 1e-12);
        assert!((amax(&x) - 3.0).abs() < 1e-12);
        assert_eq!(amax::<f32>(&[]), 0.0);
    }

    #[test]
    fn scal_zero_copy_add() {
        let mut x = [1.0f32, -2.0];
        scal(-2.0, &mut x);
        assert_eq!(x, [-2.0, 4.0]);
        let mut y = [0.0f32; 2];
        copy(&x, &mut y);
        assert_eq!(y, x);
        add(&x, &mut y);
        assert_eq!(y, [-4.0, 8.0]);
        zero(&mut y);
        assert_eq!(y, [0.0, 0.0]);
    }

    #[test]
    fn lincomb_produces_fresh_vector() {
        let x = [1.0f32, 0.0];
        let y = [0.0f32, 1.0];
        let z = lincomb(2.0, &x, 3.0, &y);
        assert_eq!(z, vec![2.0, 3.0]);
        assert_eq!(x, [1.0, 0.0]);
    }
}
