//! Prepacked-operand GEMM.
//!
//! DNN training multiplies every batch against the *same* weight
//! matrices, so repacking B on every call wastes both time and — the
//! paper's Section V.A.4 point — allocation churn: "We manage memory
//! by essentially keeping track of what we have allocated so that we
//! can reallocate out of that memory instead of repeatedly freeing
//! and allocating … it greatly reduces timing jitter."
//!
//! [`PackedB`] packs `op(B)` once into the micro-panel layout the
//! kernel consumes; [`gemm_prepacked`] then runs the blocked driver
//! reading panels straight out of it. [`PackedA`] is the mirror for
//! the *left* operand: a CG solve holds the curvature-minibatch
//! activations fixed across dozens of Gauss–Newton products, so the
//! `a_prev * Vw^T` R-forward GEMMs can read a once-packed A while
//! only the small direction matrix is packed per call
//! ([`gemm_prepacked_a`]). Results are bitwise identical to
//! [`super::gemm`] with the same blocking: packing is pure data
//! movement and both drivers issue the identical microkernel
//! sequence.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::workspace::Workspace;
use rayon::prelude::*;

use super::backend::{AccFn, BtFn};
use super::{kernel, pack, Blocking, GemmContext, Trans, MR, NR};

/// One `(pc, jc)` block of the packed B operand.
#[derive(Clone, Copy, Debug)]
struct BlockInfo {
    /// k-offset of the block.
    pc: usize,
    /// k-extent.
    kc_eff: usize,
    /// column offset.
    jc: usize,
    /// column extent.
    nc_eff: usize,
    /// start offset in the packed buffer.
    offset: usize,
}

/// `op(B)` packed once for repeated multiplication.
#[derive(Clone, Debug)]
pub struct PackedB<T: Scalar> {
    data: Vec<T>,
    blocks: Vec<BlockInfo>,
    blocking: Blocking,
    k: usize,
    n: usize,
}

impl<T: Scalar> PackedB<T> {
    /// Pack `op(B)` (shape `k x n`) under `blocking`.
    ///
    /// Degenerate shapes (`k == 0` or `n == 0`) produce an empty pack
    /// that [`gemm_prepacked`] handles through the same early-return
    /// paths as [`super::gemm`] (pure `beta` scaling of C).
    pub fn new(b: &Matrix<T>, tb: Trans, blocking: Blocking) -> Self {
        Self::build(b.rows(), b.cols(), b.as_slice(), tb, blocking, |total| {
            vec![T::ZERO; total]
        })
    }

    /// [`Self::new`] with the packed buffer drawn from a [`Workspace`]
    /// arena instead of a fresh allocation.
    ///
    /// This is the per-call packing path of the CG hot loop: the small
    /// direction matrix `Vw` is packed once per Gauss–Newton product
    /// and retired straight back via [`Self::give_back`], so steady
    /// state packs into recycled memory. The scratch take is safe
    /// because [`pack::pack_b`] fully overwrites every block region,
    /// ragged-panel zero padding included.
    pub fn new_in(b: &Matrix<T>, tb: Trans, blocking: Blocking, ws: &mut Workspace<T>) -> Self {
        Self::build(b.rows(), b.cols(), b.as_slice(), tb, blocking, |total| {
            ws.take_vec_scratch(total)
        })
    }

    /// [`Self::new_in`] reading `op(B)` straight from a row-major
    /// slice of `rows x cols` — no intermediate [`Matrix`] needed, so
    /// a layer's region of a flat direction vector packs without the
    /// copy that building a matrix first would cost.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn new_in_from_rows(
        rows: usize,
        cols: usize,
        data: &[T],
        tb: Trans,
        blocking: Blocking,
        ws: &mut Workspace<T>,
    ) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "PackedB::new_in_from_rows: slice length != rows * cols"
        );
        Self::build(rows, cols, data, tb, blocking, |total| {
            ws.take_vec_scratch(total)
        })
    }

    /// Return the packed buffer to `ws` for reuse.
    pub fn give_back(self, ws: &mut Workspace<T>) {
        ws.give_vec(self.data);
    }

    fn build(
        rows: usize,
        cols: usize,
        src: &[T],
        tb: Trans,
        blocking: Blocking,
        alloc: impl FnOnce(usize) -> Vec<T>,
    ) -> Self {
        let blocking = blocking.sanitized();
        let (k, n) = match tb {
            Trans::N => (rows, cols),
            Trans::T => (cols, rows),
        };
        if k == 0 || n == 0 {
            return PackedB {
                data: Vec::new(),
                blocks: Vec::new(),
                blocking,
                k,
                n,
            };
        }
        let kc = blocking.kc.min(k.max(1));
        let nc = blocking.nc.min(n.max(1));

        let mut blocks = Vec::new();
        let mut total = 0usize;
        let mut pc = 0;
        while pc < k {
            let kc_eff = kc.min(k - pc);
            let mut jc = 0;
            while jc < n {
                let nc_eff = nc.min(n - jc);
                let size = nc_eff.div_ceil(NR) * NR * kc_eff;
                blocks.push(BlockInfo {
                    pc,
                    kc_eff,
                    jc,
                    nc_eff,
                    offset: total,
                });
                total += size;
                jc += nc_eff;
            }
            pc += kc_eff;
        }

        let mut data = alloc(total);
        debug_assert_eq!(data.len(), total);
        for info in &blocks {
            let size = info.nc_eff.div_ceil(NR) * NR * info.kc_eff;
            pack::pack_b_rows(
                src,
                cols,
                tb,
                info.pc,
                info.kc_eff,
                info.jc,
                info.nc_eff,
                &mut data[info.offset..info.offset + size],
            );
        }
        PackedB {
            data,
            blocks,
            blocking,
            k,
            n,
        }
    }

    /// Logical `op(B)` row count (the GEMM inner dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical `op(B)` column count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Blocking the panels were packed under (the multiply must use
    /// the same).
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// Packed bytes held.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    fn block(&self, pc: usize, jc: usize) -> (&[T], usize, usize) {
        // Blocks are laid out pc-major, jc-minor on a regular grid,
        // so the index is computable without scanning.
        let kc = self.blocking.kc.min(self.k.max(1));
        let nc = self.blocking.nc.min(self.n.max(1));
        let jc_blocks = self.n.div_ceil(nc).max(1);
        let idx = (pc / kc) * jc_blocks + jc / nc;
        let info = &self.blocks[idx];
        debug_assert_eq!(
            (info.pc, info.jc),
            (pc, jc),
            "block lookup: driver and packer disagree on blocking"
        );
        let size = info.nc_eff.div_ceil(NR) * NR * info.kc_eff;
        (
            &self.data[info.offset..info.offset + size],
            info.kc_eff,
            info.nc_eff,
        )
    }
}

/// `C = alpha * op(A) * B_packed + beta * C` with a prepacked B.
///
/// # Panics
/// On shape mismatch between `op(A)`, the packed operand, and `C`.
pub(crate) fn prepacked_impl<T: Scalar>(
    ctx: &GemmContext,
    ta: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &PackedB<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = match ta {
        Trans::N => a.shape(),
        Trans::T => {
            let (r, cc) = a.shape();
            (cc, r)
        }
    };
    assert_eq!(
        k,
        b.k(),
        "gemm_prepacked: inner dimensions {k} != {}",
        b.k()
    );
    let n = b.n();
    assert_eq!(c.shape(), (m, n), "gemm_prepacked: C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        if beta == T::ZERO {
            c.as_mut_slice().fill(T::ZERO);
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        } else if beta != T::ONE {
            c.scale(beta);
        }
        return;
    }

    let blocking = b.blocking();
    let acc_fn = T::acc_kernel(ctx.backend());
    let target_tasks = ctx.threads() * 3;
    let sh = m
        .div_ceil(target_tasks)
        .next_multiple_of(MR)
        .clamp(MR, blocking.mc.max(MR));

    let c_slice = c.as_mut_slice();
    ctx.run_pool(|| {
        if ctx.threads() == 1 {
            for (si, stripe) in c_slice.chunks_mut(sh * n).enumerate() {
                stripe_prepacked(
                    acc_fn,
                    ta,
                    alpha,
                    a,
                    b,
                    beta,
                    stripe,
                    si * sh,
                    k,
                    n,
                    blocking,
                );
            }
        } else {
            c_slice
                .par_chunks_mut(sh * n)
                .enumerate()
                .for_each(|(si, stripe)| {
                    stripe_prepacked(
                        acc_fn,
                        ta,
                        alpha,
                        a,
                        b,
                        beta,
                        stripe,
                        si * sh,
                        k,
                        n,
                        blocking,
                    );
                });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn stripe_prepacked<T: Scalar>(
    acc_fn: AccFn<T>,
    ta: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &PackedB<T>,
    beta: T,
    stripe: &mut [T],
    ic0: usize,
    k: usize,
    n: usize,
    blocking: Blocking,
) {
    let mc_eff = stripe.len() / n;
    let kc = blocking.kc.min(k);
    let nc = blocking.nc.min(n);
    let a_panels = mc_eff.div_ceil(MR);
    let mut ap = vec![T::ZERO; a_panels * MR * kc];

    let mut pc = 0;
    let mut first_block = true;
    while pc < k {
        let kc_eff = kc.min(k - pc);
        pack::pack_a(a, ta, ic0, mc_eff, pc, kc_eff, &mut ap);
        let merge = if first_block { Some(beta) } else { None };

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            let (bp, bk, bn) = b.block(pc, jc);
            debug_assert_eq!(bk, kc_eff);
            debug_assert_eq!(bn, nc_eff);

            let jr_panels = nc_eff.div_ceil(NR);
            let ir_panels = mc_eff.div_ceil(MR);
            for jr in 0..jr_panels {
                let nr_eff = NR.min(nc_eff - jr * NR);
                let bp_panel = &bp[jr * kc_eff * NR..(jr + 1) * kc_eff * NR];
                for ir in 0..ir_panels {
                    let mr_eff = MR.min(mc_eff - ir * MR);
                    let ap_panel = &ap[ir * kc_eff * MR..(ir + 1) * kc_eff * MR];
                    let c_off = (ir * MR) * n + jc + jr * NR;
                    kernel::microkernel(
                        acc_fn, kc_eff, alpha, ap_panel, bp_panel, stripe, c_off, n, mr_eff,
                        nr_eff, merge,
                    );
                }
            }
            jc += nc_eff;
        }
        pc += kc_eff;
        first_block = false;
    }
}

/// One k-block of the packed A operand.
#[derive(Clone, Copy, Debug)]
struct ABlockInfo {
    /// k-offset of the block.
    pc: usize,
    /// k-extent.
    kc_eff: usize,
    /// start offset in the packed buffer.
    offset: usize,
}

/// `op(A)` packed once for repeated multiplication.
///
/// All `ceil(m / MR)` row micro-panels are packed per k-block, blocked
/// only over `kc` (there is no `mc` blocking in the pack: the stripe
/// driver slices whole panels out of each k-block, which works because
/// stripe offsets are always `MR` multiples). Panel `ir` of k-block
/// `pc` lives at `block_offset + ir * kc_eff * MR` — the exact layout
/// [`pack::pack_a`] produces for a stripe starting at row `ir * MR`,
/// so [`gemm_prepacked_a`] is bitwise identical to [`super::gemm`].
#[derive(Clone, Debug)]
pub struct PackedA<T: Scalar> {
    data: Vec<T>,
    blocks: Vec<ABlockInfo>,
    blocking: Blocking,
    m: usize,
    k: usize,
}

impl<T: Scalar> PackedA<T> {
    /// Pack `op(A)` (shape `m x k`) under `blocking`.
    ///
    /// Degenerate shapes (`m == 0` or `k == 0`) produce an empty pack
    /// that [`gemm_prepacked_a`] handles through the same early-return
    /// paths as [`super::gemm`].
    pub fn new(a: &Matrix<T>, ta: Trans, blocking: Blocking) -> Self {
        let blocking = blocking.sanitized();
        let (m, k) = match ta {
            Trans::N => a.shape(),
            Trans::T => {
                let (r, c) = a.shape();
                (c, r)
            }
        };
        if m == 0 || k == 0 {
            return PackedA {
                data: Vec::new(),
                blocks: Vec::new(),
                blocking,
                m,
                k,
            };
        }
        let kc = blocking.kc.min(k);
        let panels = m.div_ceil(MR);

        let mut blocks = Vec::new();
        let mut total = 0usize;
        let mut pc = 0;
        while pc < k {
            let kc_eff = kc.min(k - pc);
            blocks.push(ABlockInfo {
                pc,
                kc_eff,
                offset: total,
            });
            total += panels * kc_eff * MR;
            pc += kc_eff;
        }

        let mut data = vec![T::ZERO; total];
        for info in &blocks {
            let size = panels * info.kc_eff * MR;
            pack::pack_a(
                a,
                ta,
                0,
                m,
                info.pc,
                info.kc_eff,
                &mut data[info.offset..info.offset + size],
            );
        }
        PackedA {
            data,
            blocks,
            blocking,
            m,
            k,
        }
    }

    /// Logical `op(A)` row count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical `op(A)` column count (the GEMM inner dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Blocking the panels were packed under (the multiply must use
    /// the same).
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// Packed bytes held.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    fn block(&self, pc: usize) -> (&[T], usize) {
        // Blocks are laid out on a regular k grid, so the index is
        // computable without scanning.
        let kc = self.blocking.kc.min(self.k.max(1));
        let idx = pc / kc;
        let info = &self.blocks[idx];
        debug_assert_eq!(
            info.pc, pc,
            "block lookup: driver and packer disagree on blocking"
        );
        let panels = self.m.div_ceil(MR);
        let size = panels * info.kc_eff * MR;
        (&self.data[info.offset..info.offset + size], info.kc_eff)
    }
}

/// `C = alpha * A_packed * op(B) + beta * C` with a prepacked A.
///
/// # Panics
/// On shape mismatch between the packed operand, `op(B)`, and `C`.
pub(crate) fn prepacked_a_impl<T: Scalar>(
    ctx: &GemmContext,
    alpha: T,
    a: &PackedA<T>,
    tb: Trans,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let m = a.m();
    let k = a.k();
    let (kb, n) = match tb {
        Trans::N => b.shape(),
        Trans::T => {
            let (r, cc) = b.shape();
            (cc, r)
        }
    };
    assert_eq!(k, kb, "gemm_prepacked_a: inner dimensions {k} != {kb}");
    assert_eq!(c.shape(), (m, n), "gemm_prepacked_a: C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        if beta == T::ZERO {
            c.as_mut_slice().fill(T::ZERO);
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        } else if beta != T::ONE {
            c.scale(beta);
        }
        return;
    }

    let blocking = a.blocking();
    let acc_fn = T::acc_kernel(ctx.backend());
    let target_tasks = ctx.threads() * 3;
    let sh = m
        .div_ceil(target_tasks)
        .next_multiple_of(MR)
        .clamp(MR, blocking.mc.max(MR));

    let c_slice = c.as_mut_slice();
    ctx.run_pool(|| {
        if ctx.threads() == 1 {
            for (si, stripe) in c_slice.chunks_mut(sh * n).enumerate() {
                stripe_prepacked_a(
                    acc_fn,
                    alpha,
                    a,
                    tb,
                    b,
                    beta,
                    stripe,
                    si * sh,
                    k,
                    n,
                    blocking,
                );
            }
        } else {
            c_slice
                .par_chunks_mut(sh * n)
                .enumerate()
                .for_each(|(si, stripe)| {
                    stripe_prepacked_a(
                        acc_fn,
                        alpha,
                        a,
                        tb,
                        b,
                        beta,
                        stripe,
                        si * sh,
                        k,
                        n,
                        blocking,
                    );
                });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn stripe_prepacked_a<T: Scalar>(
    acc_fn: AccFn<T>,
    alpha: T,
    a: &PackedA<T>,
    tb: Trans,
    b: &Matrix<T>,
    beta: T,
    stripe: &mut [T],
    ic0: usize,
    k: usize,
    n: usize,
    blocking: Blocking,
) {
    let mc_eff = stripe.len() / n;
    let kc = blocking.kc.min(k);
    let nc = blocking.nc.min(n);
    let b_panels = nc.div_ceil(NR);
    let mut bp = vec![T::ZERO; b_panels * NR * kc];
    // ic0 is a multiple of MR (sh is rounded up to MR), so the
    // stripe's rows start exactly at a packed panel boundary.
    let panel0 = ic0 / MR;

    let mut pc = 0;
    let mut first_block = true;
    while pc < k {
        let (ap, kc_eff) = a.block(pc);
        debug_assert_eq!(kc_eff, kc.min(k - pc));
        let merge = if first_block { Some(beta) } else { None };

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            pack::pack_b(b, tb, pc, kc_eff, jc, nc_eff, &mut bp);

            let jr_panels = nc_eff.div_ceil(NR);
            let ir_panels = mc_eff.div_ceil(MR);
            for jr in 0..jr_panels {
                let nr_eff = NR.min(nc_eff - jr * NR);
                let bp_panel = &bp[jr * kc_eff * NR..(jr + 1) * kc_eff * NR];
                for ir in 0..ir_panels {
                    let mr_eff = MR.min(mc_eff - ir * MR);
                    let p = panel0 + ir;
                    let ap_panel = &ap[p * kc_eff * MR..(p + 1) * kc_eff * MR];
                    let c_off = (ir * MR) * n + jc + jr * NR;
                    kernel::microkernel(
                        acc_fn, kc_eff, alpha, ap_panel, bp_panel, stripe, c_off, n, mr_eff,
                        nr_eff, merge,
                    );
                }
            }
            jc += nc_eff;
        }
        pc += kc_eff;
        first_block = false;
    }
}

/// `C = alpha * A_packed * B_packed + beta * C` with **both** operands
/// prepacked — the innermost CG-loop configuration, where every stripe
/// reads straight out of the packs and no packing or buffer
/// allocation happens inside the multiply at all.
///
/// Bitwise identical to [`super::gemm`] under the same blocking: the
/// stripe driver issues the exact microkernel sequence, and both pack
/// layouts are the ones the per-call drivers would have produced.
///
/// # Panics
/// On inner-dimension or `C` shape mismatch, or if the two packs were
/// built under different blockings (their panel grids would disagree).
pub(crate) fn prepacked_ab_impl<T: Scalar>(
    ctx: &GemmContext,
    alpha: T,
    a: &PackedA<T>,
    b: &PackedB<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let m = a.m();
    let k = a.k();
    assert_eq!(
        k,
        b.k(),
        "gemm_prepacked_ab: inner dimensions {k} != {}",
        b.k()
    );
    assert_eq!(
        a.blocking(),
        b.blocking(),
        "gemm_prepacked_ab: operands packed under different blockings"
    );
    let n = b.n();
    assert_eq!(c.shape(), (m, n), "gemm_prepacked_ab: C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        if beta == T::ZERO {
            c.as_mut_slice().fill(T::ZERO);
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        } else if beta != T::ONE {
            c.scale(beta);
        }
        return;
    }

    let blocking = a.blocking();
    let acc_fn = T::acc_kernel(ctx.backend());
    let target_tasks = ctx.threads() * 3;
    let sh = m
        .div_ceil(target_tasks)
        .next_multiple_of(MR)
        .clamp(MR, blocking.mc.max(MR));

    let c_slice = c.as_mut_slice();
    ctx.run_pool(|| {
        if ctx.threads() == 1 {
            for (si, stripe) in c_slice.chunks_mut(sh * n).enumerate() {
                stripe_prepacked_ab(acc_fn, alpha, a, b, beta, stripe, si * sh, k, n, blocking);
            }
        } else {
            c_slice
                .par_chunks_mut(sh * n)
                .enumerate()
                .for_each(|(si, stripe)| {
                    stripe_prepacked_ab(acc_fn, alpha, a, b, beta, stripe, si * sh, k, n, blocking);
                });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn stripe_prepacked_ab<T: Scalar>(
    acc_fn: AccFn<T>,
    alpha: T,
    a: &PackedA<T>,
    b: &PackedB<T>,
    beta: T,
    stripe: &mut [T],
    ic0: usize,
    k: usize,
    n: usize,
    blocking: Blocking,
) {
    let mc_eff = stripe.len() / n;
    let kc = blocking.kc.min(k);
    let nc = blocking.nc.min(n);
    // ic0 is a multiple of MR (sh is rounded up to MR), so the
    // stripe's rows start exactly at a packed panel boundary.
    let panel0 = ic0 / MR;

    let mut pc = 0;
    let mut first_block = true;
    while pc < k {
        let (ap, kc_eff) = a.block(pc);
        debug_assert_eq!(kc_eff, kc.min(k - pc));
        let merge = if first_block { Some(beta) } else { None };

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            let (bp, bk, bn) = b.block(pc, jc);
            debug_assert_eq!(bk, kc_eff);
            debug_assert_eq!(bn, nc_eff);

            let jr_panels = nc_eff.div_ceil(NR);
            let ir_panels = mc_eff.div_ceil(MR);
            for jr in 0..jr_panels {
                let nr_eff = NR.min(nc_eff - jr * NR);
                let bp_panel = &bp[jr * kc_eff * NR..(jr + 1) * kc_eff * NR];
                for ir in 0..ir_panels {
                    let mr_eff = MR.min(mc_eff - ir * MR);
                    let p = panel0 + ir;
                    let ap_panel = &ap[p * kc_eff * MR..(p + 1) * kc_eff * MR];
                    let c_off = (ir * MR) * n + jc + jr * NR;
                    kernel::microkernel(
                        acc_fn, kc_eff, alpha, ap_panel, bp_panel, stripe, c_off, n, mr_eff,
                        nr_eff, merge,
                    );
                }
            }
            jc += nc_eff;
        }
        pc += kc_eff;
        first_block = false;
    }
}

/// `C = alpha * A_packed * B^T + beta * C` with `B` supplied as an
/// `n x k` **row-major slice read in place** — no packing of the right
/// operand at all.
///
/// Because `op(B)(kk, j) = B[j * k + kk]`, each output column `j`
/// consumes one contiguous row of `B`, so the kernel streams `B`
/// stride-one without the reformat that [`PackedB`] performs. That
/// wins when `op(A)` is short (few row panels): the whole of `B` is
/// read once per stripe and the pack's extra write+reread of `B`-sized
/// memory never happens. For tall `op(A)` the register-blocked packed
/// path amortizes better — callers should prefer
/// [`gemm_prepacked_ab`] once `m` spans several row panels.
///
/// Bitwise identical to [`super::gemm`] with `tb = Trans::T` under the
/// same blocking: the k loop is split on the same `kc` grid, each
/// element's FMA chain runs `kk` ascending within a block, and the
/// per-block beta merge matches [`kernel::microkernel`]'s exactly.
///
/// # Panics
/// On inner-dimension or `C` shape mismatch, or if `b_rows.len()`
/// differs from `n * k`.
pub(crate) fn prepacked_a_bt_impl<T: Scalar>(
    ctx: &GemmContext,
    alpha: T,
    a: &PackedA<T>,
    b_rows: &[T],
    beta: T,
    c: &mut Matrix<T>,
) {
    let m = a.m();
    let k = a.k();
    let n = c.cols();
    assert_eq!(c.rows(), m, "gemm_prepacked_a_bt: C row count mismatch");
    assert_eq!(
        b_rows.len(),
        n * k,
        "gemm_prepacked_a_bt: B slice is not n x k"
    );
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        if beta == T::ZERO {
            c.as_mut_slice().fill(T::ZERO);
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        } else if beta != T::ONE {
            c.scale(beta);
        }
        return;
    }

    let blocking = a.blocking();
    let bt_fn = T::bt_kernel(ctx.backend());
    let target_tasks = ctx.threads() * 3;
    let sh = m
        .div_ceil(target_tasks)
        .next_multiple_of(MR)
        .clamp(MR, blocking.mc.max(MR));

    let c_slice = c.as_mut_slice();
    ctx.run_pool(|| {
        if ctx.threads() == 1 {
            for (si, stripe) in c_slice.chunks_mut(sh * n).enumerate() {
                stripe_prepacked_a_bt(bt_fn, alpha, a, b_rows, beta, stripe, si * sh, k, n);
            }
        } else {
            c_slice
                .par_chunks_mut(sh * n)
                .enumerate()
                .for_each(|(si, stripe)| {
                    stripe_prepacked_a_bt(bt_fn, alpha, a, b_rows, beta, stripe, si * sh, k, n);
                });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn stripe_prepacked_a_bt<T: Scalar>(
    bt_fn: BtFn<T>,
    alpha: T,
    a: &PackedA<T>,
    b_rows: &[T],
    beta: T,
    stripe: &mut [T],
    ic0: usize,
    k: usize,
    n: usize,
) {
    let mc_eff = stripe.len() / n;
    // ic0 is a multiple of MR (sh is rounded up to MR), so the
    // stripe's rows start exactly at a packed panel boundary.
    let panel0 = ic0 / MR;
    let ir_panels = mc_eff.div_ceil(MR);

    // Column-at-a-time: row j of B is streamed front to back exactly
    // once per stripe while the A panels stay cache-resident.
    for (j, brow) in b_rows.chunks_exact(k).enumerate() {
        let mut pc = 0;
        let mut first_block = true;
        while pc < k {
            let (ap, kc_eff) = a.block(pc);
            let merge = if first_block { Some(beta) } else { None };
            for ir in 0..ir_panels {
                let mr_eff = MR.min(mc_eff - ir * MR);
                let p = panel0 + ir;
                let ap_panel = &ap[p * kc_eff * MR..(p + 1) * kc_eff * MR];

                // Backend-dispatched column kernel, same FMA chain
                // as kernel::microkernel: kk ascending within the
                // block, acc = a.mul_add(b, acc); padded panel rows
                // compute garbage-free zeros that the masked C write
                // below discards.
                let mut acc = [T::ZERO; MR];
                bt_fn(kc_eff, ap_panel, &brow[pc..pc + kc_eff], &mut acc);

                let base = (ir * MR) * n + j;
                match merge {
                    // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
                    Some(b0) if b0 == T::ZERO => {
                        for (i, &v) in acc.iter().enumerate().take(mr_eff) {
                            stripe[base + i * n] = alpha * v;
                        }
                    }
                    Some(b0) => {
                        for (i, &v) in acc.iter().enumerate().take(mr_eff) {
                            let d = &mut stripe[base + i * n];
                            *d = alpha.mul_add(v, b0 * *d);
                        }
                    }
                    None => {
                        for (i, &v) in acc.iter().enumerate().take(mr_eff) {
                            let d = &mut stripe[base + i * n];
                            *d = alpha.mul_add(v, *d);
                        }
                    }
                }
            }
            pc += kc_eff;
            first_block = false;
        }
    }
}

/// Deprecated free-function entry for the prepacked-B driver.
#[deprecated(note = "use GemmOp::packed_b(a, ta, b).alpha(..).beta(..).run(ctx, c)")]
pub fn gemm_prepacked<T: Scalar>(
    ctx: &GemmContext,
    ta: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &PackedB<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    prepacked_impl(ctx, ta, alpha, a, b, beta, c);
}

/// Deprecated free-function entry for the prepacked-A driver.
#[deprecated(note = "use GemmOp::packed_a(a, b, tb).alpha(..).beta(..).run(ctx, c)")]
pub fn gemm_prepacked_a<T: Scalar>(
    ctx: &GemmContext,
    alpha: T,
    a: &PackedA<T>,
    tb: Trans,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    prepacked_a_impl(ctx, alpha, a, tb, b, beta, c);
}

/// Deprecated free-function entry for the both-operands-prepacked driver.
#[deprecated(note = "use GemmOp::packed_ab(a, b).alpha(..).beta(..).run(ctx, c)")]
pub fn gemm_prepacked_ab<T: Scalar>(
    ctx: &GemmContext,
    alpha: T,
    a: &PackedA<T>,
    b: &PackedB<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    prepacked_ab_impl(ctx, alpha, a, b, beta, c);
}

/// Deprecated free-function entry for the streamed-`B^T` driver.
#[deprecated(note = "use GemmOp::packed_a_bt(a, b_rows).alpha(..).beta(..).run(ctx, c)")]
pub fn gemm_prepacked_a_bt<T: Scalar>(
    ctx: &GemmContext,
    alpha: T,
    a: &PackedA<T>,
    b_rows: &[T],
    beta: T,
    c: &mut Matrix<T>,
) {
    prepacked_a_bt_impl(ctx, alpha, a, b_rows, beta, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_impl as gemm;
    use pdnn_util::Prng;

    fn rand(r: usize, c: usize, seed: u64) -> Matrix<f32> {
        let mut rng = Prng::new(seed);
        Matrix::random_normal(r, c, 1.0, &mut rng)
    }

    #[test]
    fn matches_plain_gemm_bitwise() {
        let ctx = GemmContext::sequential();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (17, 23, 9),
            (64, 64, 64),
            (130, 77, 33),
        ] {
            let a = rand(m, k, 1);
            let b = rand(k, n, 2);
            let packed = PackedB::new(&b, Trans::N, ctx.blocking());
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
            prepacked_impl(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c2);
            assert_eq!(c1, c2, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn transposed_b_packs_correctly() {
        // The layer-forward shape: X [frames x in] times W^T with
        // W [out x in].
        let ctx = GemmContext::sequential();
        let x = rand(50, 30, 3);
        let w = rand(20, 30, 4); // out x in
        let packed = PackedB::new(&w, Trans::T, ctx.blocking());
        assert_eq!(packed.k(), 30);
        assert_eq!(packed.n(), 20);
        let mut c1 = Matrix::zeros(50, 20);
        let mut c2 = Matrix::zeros(50, 20);
        gemm(&ctx, Trans::N, Trans::T, 1.0f32, &x, &w, 0.0, &mut c1);
        prepacked_impl(&ctx, Trans::N, 1.0f32, &x, &packed, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn reuse_across_many_batches() {
        let ctx = GemmContext::sequential();
        let w = rand(16, 24, 5);
        let packed = PackedB::new(&w, Trans::T, ctx.blocking());
        for seed in 10..15 {
            let x = rand(31, 24, seed);
            let mut c1 = Matrix::zeros(31, 16);
            let mut c2 = Matrix::zeros(31, 16);
            gemm(&ctx, Trans::N, Trans::T, 1.0f32, &x, &w, 0.0, &mut c1);
            prepacked_impl(&ctx, Trans::N, 1.0f32, &x, &packed, 0.0, &mut c2);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn alpha_beta_and_ta_combinations() {
        let ctx = GemmContext::sequential();
        let a = rand(12, 40, 6); // will be used transposed: op(A) 40x12
        let b = rand(12, 25, 7);
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        let c0 = rand(40, 25, 8);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm(&ctx, Trans::T, Trans::N, 1.5f32, &a, &b, -0.5, &mut c1);
        prepacked_impl(&ctx, Trans::T, 1.5f32, &a, &packed, -0.5, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn custom_blocking_respected() {
        let blocking = Blocking {
            mc: 16,
            kc: 8,
            nc: 24,
        };
        let ctx = GemmContext::sequential().with_blocking(blocking);
        let a = rand(37, 53, 9);
        let b = rand(53, 29, 10);
        let packed = PackedB::new(&b, Trans::N, blocking);
        let mut c1 = Matrix::zeros(37, 29);
        let mut c2 = Matrix::zeros(37, 29);
        gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
        prepacked_impl(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn packed_size_is_padded_panels() {
        let b: Matrix<f32> = Matrix::zeros(10, 10);
        let packed = PackedB::new(&b, Trans::N, Blocking::default());
        // 10 cols pad to 2 panels of NR=8: 16 cols x 10 k x 4 bytes.
        assert_eq!(packed.bytes(), 16 * 10 * 4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let ctx = GemmContext::sequential();
        let a = rand(4, 5, 11);
        let b = rand(6, 3, 12);
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        let mut c = Matrix::zeros(4, 3);
        prepacked_impl(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c);
    }

    #[test]
    fn packed_b_degenerate_k_zero_scales_c_only() {
        let ctx = GemmContext::sequential();
        let a: Matrix<f32> = Matrix::zeros(3, 0);
        let b: Matrix<f32> = Matrix::zeros(0, 4);
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        assert_eq!((packed.k(), packed.n()), (0, 4));
        assert_eq!(packed.bytes(), 0);
        let mut c: Matrix<f32> = Matrix::filled(3, 4, 2.0);
        prepacked_impl(&ctx, Trans::N, 1.0f32, &a, &packed, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
        // beta = 0 with NaN in C must overwrite with zeros.
        let mut c2: Matrix<f32> = Matrix::filled(3, 4, f32::NAN);
        prepacked_impl(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c2);
        assert!(c2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn packed_b_degenerate_n_zero_is_noop() {
        let ctx = GemmContext::sequential();
        let a = rand(5, 7, 13);
        let b: Matrix<f32> = Matrix::zeros(7, 0);
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        assert_eq!((packed.k(), packed.n()), (7, 0));
        let mut c: Matrix<f32> = Matrix::zeros(5, 0);
        prepacked_impl(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c);
    }

    #[test]
    fn packed_a_matches_plain_gemm_bitwise_odd_shapes() {
        // Mirrors the shape coverage of results/gemm_odd_shapes.csv at
        // unit-test scale: ragged, prime-ish, and tile-crossing dims.
        let ctx = GemmContext::sequential();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (9, 7, 13),
            (17, 23, 9),
            (17, 31, 29),
            (33, 129, 65),
            (130, 77, 33),
        ] {
            let a = rand(m, k, m as u64);
            let b = rand(k, n, n as u64);
            let packed = PackedA::new(&a, Trans::N, ctx.blocking());
            assert_eq!((packed.m(), packed.k()), (m, k));
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
            prepacked_a_impl(&ctx, 1.0f32, &packed, Trans::N, &b, 0.0, &mut c2);
            assert_eq!(c1, c2, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn packed_a_transposed_operands_and_alpha_beta() {
        // The R-forward shape: a_prev [frames x in] times Vw^T with
        // Vw [out x in], accumulating into rz (beta = 1).
        let ctx = GemmContext::sequential();
        let a = rand(31, 24, 20); // packed as op(A) via Trans::N
        let at = rand(24, 31, 21); // packed as op(A) via Trans::T
        let vw = rand(16, 24, 22); // out x in, used as B^T
        for (label, packed) in [
            ("N", PackedA::new(&a, Trans::N, ctx.blocking())),
            ("T", PackedA::new(&at, Trans::T, ctx.blocking())),
        ] {
            let src = if label == "N" { &a } else { &at };
            let ta = if label == "N" { Trans::N } else { Trans::T };
            let c0 = rand(31, 16, 23);
            let mut c1 = c0.clone();
            let mut c2 = c0;
            gemm(&ctx, ta, Trans::T, 1.5f32, src, &vw, 1.0, &mut c1);
            prepacked_a_impl(&ctx, 1.5f32, &packed, Trans::T, &vw, 1.0, &mut c2);
            assert_eq!(c1, c2, "ta={label}");
        }
    }

    #[test]
    fn packed_a_threaded_matches_sequential() {
        let seq = GemmContext::sequential();
        let thr = GemmContext::threaded(4);
        let a = rand(200, 150, 30);
        let b = rand(150, 170, 31);
        let packed = PackedA::new(&a, Trans::N, seq.blocking());
        let mut c1 = Matrix::zeros(200, 170);
        let mut c2 = Matrix::zeros(200, 170);
        gemm(&seq, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
        prepacked_a_impl(&thr, 1.0f32, &packed, Trans::N, &b, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn packed_a_custom_blocking_respected() {
        let blocking = Blocking {
            mc: 16,
            kc: 8,
            nc: 24,
        };
        let ctx = GemmContext::sequential().with_blocking(blocking);
        let a = rand(37, 53, 32);
        let b = rand(53, 29, 33);
        let packed = PackedA::new(&a, Trans::N, blocking);
        let mut c1 = Matrix::zeros(37, 29);
        let mut c2 = Matrix::zeros(37, 29);
        gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
        prepacked_a_impl(&ctx, 1.0f32, &packed, Trans::N, &b, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn packed_a_degenerate_shapes() {
        let ctx = GemmContext::sequential();
        // k == 0: pure C scaling.
        let a0: Matrix<f32> = Matrix::zeros(3, 0);
        let packed = PackedA::new(&a0, Trans::N, ctx.blocking());
        assert_eq!((packed.m(), packed.k()), (3, 0));
        assert_eq!(packed.bytes(), 0);
        let b0: Matrix<f32> = Matrix::zeros(0, 4);
        let mut c: Matrix<f32> = Matrix::filled(3, 4, 2.0);
        prepacked_a_impl(&ctx, 1.0f32, &packed, Trans::N, &b0, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
        // m == 0: empty output, no-op.
        let am: Matrix<f32> = Matrix::zeros(0, 5);
        let packed = PackedA::new(&am, Trans::N, ctx.blocking());
        let b = rand(5, 4, 34);
        let mut c: Matrix<f32> = Matrix::zeros(0, 4);
        prepacked_a_impl(&ctx, 1.0f32, &packed, Trans::N, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn packed_a_shape_mismatch_panics() {
        let ctx = GemmContext::sequential();
        let a = rand(4, 5, 35);
        let b = rand(6, 3, 36);
        let packed = PackedA::new(&a, Trans::N, ctx.blocking());
        let mut c = Matrix::zeros(4, 3);
        prepacked_a_impl(&ctx, 1.0f32, &packed, Trans::N, &b, 0.0, &mut c);
    }

    #[test]
    fn packed_ab_matches_plain_gemm_bitwise_odd_shapes() {
        let ctx = GemmContext::sequential();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (17, 23, 9),
            (17, 31, 29),
            (33, 129, 65),
            (130, 77, 33),
        ] {
            let a = rand(m, k, m as u64 + 100);
            let b = rand(k, n, n as u64 + 200);
            let pa = PackedA::new(&a, Trans::N, ctx.blocking());
            let pb = PackedB::new(&b, Trans::N, ctx.blocking());
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
            prepacked_ab_impl(&ctx, 1.0f32, &pa, &pb, 0.0, &mut c2);
            assert_eq!(c1, c2, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn packed_ab_r_forward_shape_accumulates() {
        // The CG R-forward term: rz += a_prev * Vw^T with both packed.
        let ctx = GemmContext::sequential();
        let a = rand(31, 24, 60);
        let vw = rand(16, 24, 61); // out x in, used transposed
        let pa = PackedA::new(&a, Trans::N, ctx.blocking());
        let pvw = PackedB::new(&vw, Trans::T, ctx.blocking());
        let c0 = rand(31, 16, 62);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm(&ctx, Trans::N, Trans::T, 1.5f32, &a, &vw, 1.0, &mut c1);
        prepacked_ab_impl(&ctx, 1.5f32, &pa, &pvw, 1.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn packed_ab_degenerate_k_zero_scales_c_only() {
        let ctx = GemmContext::sequential();
        let a0: Matrix<f32> = Matrix::zeros(3, 0);
        let b0: Matrix<f32> = Matrix::zeros(0, 4);
        let pa = PackedA::new(&a0, Trans::N, ctx.blocking());
        let pb = PackedB::new(&b0, Trans::N, ctx.blocking());
        let mut c: Matrix<f32> = Matrix::filled(3, 4, f32::NAN);
        prepacked_ab_impl(&ctx, 1.0f32, &pa, &pb, 0.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "different blockings")]
    fn packed_ab_blocking_mismatch_panics() {
        let ctx = GemmContext::sequential();
        let a = rand(8, 8, 63);
        let b = rand(8, 8, 64);
        let pa = PackedA::new(&a, Trans::N, ctx.blocking());
        let pb = PackedB::new(
            &b,
            Trans::N,
            Blocking {
                mc: 16,
                kc: 4,
                nc: 16,
            },
        );
        let mut c = Matrix::zeros(8, 8);
        prepacked_ab_impl(&ctx, 1.0f32, &pa, &pb, 0.0, &mut c);
    }

    #[test]
    fn packed_b_new_in_matches_new_and_recycles() {
        let ctx = GemmContext::sequential();
        let mut ws: Workspace<f32> = Workspace::new();
        // Poison the arena so a recycled scratch buffer starts dirty.
        let mut dirt = ws.take_vec(4096);
        dirt.fill(f32::NAN);
        ws.give_vec(dirt);
        for seed in 70..73 {
            let b = rand(40, 33, seed);
            let heap = PackedB::new(&b, Trans::T, ctx.blocking());
            let arena = PackedB::new_in(&b, Trans::T, ctx.blocking(), &mut ws);
            assert_eq!(heap.bytes(), arena.bytes());
            // op(B) = B^T is 33 x 40: inner dim 33, output width 40.
            let x = rand(21, 33, seed + 10);
            let mut c1 = Matrix::zeros(21, 40);
            let mut c2 = Matrix::zeros(21, 40);
            prepacked_impl(&ctx, Trans::N, 1.0f32, &x, &heap, 0.0, &mut c1);
            prepacked_impl(&ctx, Trans::N, 1.0f32, &x, &arena, 0.0, &mut c2);
            assert_eq!(c1, c2, "seed {seed}");
            arena.give_back(&mut ws);
        }
        assert!(
            ws.stats().reuses >= 3,
            "per-call packs should recycle the arena buffer"
        );
    }

    #[test]
    fn packed_b_from_rows_matches_matrix_pack_bitwise() {
        // Packing straight from a flat row-major slice must produce
        // the exact packed buffer that packing via a Matrix does —
        // this is what lets the GN product pack a direction-vector
        // region without materializing Vw.
        let ctx = GemmContext::sequential();
        let mut ws: Workspace<f32> = Workspace::new();
        for &(rows, cols) in &[(40usize, 33usize), (8, 8), (13, 70)] {
            let b = rand(rows, cols, 90 + rows as u64);
            let flat: Vec<f32> = b.as_slice().to_vec();
            for tb in [Trans::N, Trans::T] {
                let via_matrix = PackedB::new(&b, tb, ctx.blocking());
                let via_rows =
                    PackedB::new_in_from_rows(rows, cols, &flat, tb, ctx.blocking(), &mut ws);
                assert_eq!(via_matrix.k(), via_rows.k());
                assert_eq!(via_matrix.n(), via_rows.n());
                assert_eq!(
                    via_matrix.data, via_rows.data,
                    "{rows}x{cols} tb={tb:?}: packed buffers must be bit-identical"
                );
                via_rows.give_back(&mut ws);
            }
        }
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn packed_b_from_rows_checks_slice_len() {
        let mut ws: Workspace<f32> = Workspace::new();
        let data = vec![0.0f32; 11];
        let _ = PackedB::new_in_from_rows(3, 4, &data, Trans::N, Blocking::default(), &mut ws);
    }

    #[test]
    fn prepacked_a_bt_matches_plain_gemm_bitwise() {
        // The in-place B^T driver must issue the exact FMA chains of
        // the plain driver: same kc grid, same per-block beta merge.
        // Cover m below, at, and above a row panel; k below and above
        // one kc block; alpha/beta combos including the beta = 0
        // overwrite (C seeded with NaN to prove it).
        let ctx = GemmContext::sequential();
        for &(m, k, n) in &[
            (4usize, 33usize, 40usize),
            (8, 300, 17),
            (21, 513, 64),
            (64, 256, 96),
        ] {
            let a = rand(m, k, (m + k) as u64);
            let b = rand(n, k, (n + k) as u64);
            let pa = PackedA::new(&a, Trans::N, ctx.blocking());
            for &(alpha, beta) in &[(1.0f32, 0.0f32), (1.0, 1.0), (0.5, -2.0)] {
                let mut c1 = if beta == 0.0 {
                    Matrix::from_vec(m, n, vec![f32::NAN; m * n])
                } else {
                    rand(m, n, 7)
                };
                let mut c2 = c1.clone();
                if beta == 0.0 {
                    // Plain gemm's beta = 0 path also overwrites, but
                    // seed c1 clean so the reference is well-defined.
                    c1.as_mut_slice().fill(0.0);
                    c2.as_mut_slice().fill(f32::NAN);
                }
                gemm(&ctx, Trans::N, Trans::T, alpha, &a, &b, beta, &mut c1);
                prepacked_a_bt_impl(&ctx, alpha, &pa, b.as_slice(), beta, &mut c2);
                assert_eq!(
                    c1.as_slice(),
                    c2.as_slice(),
                    "{m}x{k}x{n} alpha={alpha} beta={beta}"
                );
            }
        }
    }

    #[test]
    fn prepacked_a_bt_degenerate_k_zero_scales_c_only() {
        let ctx = GemmContext::sequential();
        let a = Matrix::<f32>::zeros(5, 0);
        let pa = PackedA::new(&a, Trans::N, ctx.blocking());
        let mut c = rand(5, 9, 3);
        let orig = c.clone();
        prepacked_a_bt_impl(&ctx, 1.0f32, &pa, &[], 0.5, &mut c);
        for (x, y) in c.as_slice().iter().zip(orig.as_slice()) {
            assert_eq!(*x, 0.5 * y);
        }
        prepacked_a_bt_impl(&ctx, 1.0f32, &pa, &[], 0.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "B slice is not n x k")]
    fn prepacked_a_bt_checks_b_len() {
        let ctx = GemmContext::sequential();
        let a = rand(4, 6, 1);
        let pa = PackedA::new(&a, Trans::N, ctx.blocking());
        let mut c = Matrix::zeros(4, 5);
        let b = vec![0.0f32; 29]; // needs 5 * 6 = 30
        prepacked_a_bt_impl(&ctx, 1.0f32, &pa, &b, 0.0, &mut c);
    }

    #[test]
    fn packed_a_reuse_across_many_directions() {
        // The CG inner loop: fixed activations, fresh direction each
        // iteration.
        let ctx = GemmContext::sequential();
        let a = rand(31, 24, 40);
        let packed = PackedA::new(&a, Trans::N, ctx.blocking());
        for seed in 50..55 {
            let vw = rand(16, 24, seed);
            let mut c1 = Matrix::zeros(31, 16);
            let mut c2 = Matrix::zeros(31, 16);
            gemm(&ctx, Trans::N, Trans::T, 1.0f32, &a, &vw, 0.0, &mut c1);
            prepacked_a_impl(&ctx, 1.0f32, &packed, Trans::T, &vw, 0.0, &mut c2);
            assert_eq!(c1, c2);
        }
    }
}
