//! Prepacked-operand GEMM.
//!
//! DNN training multiplies every batch against the *same* weight
//! matrices, so repacking B on every call wastes both time and — the
//! paper's Section V.A.4 point — allocation churn: "We manage memory
//! by essentially keeping track of what we have allocated so that we
//! can reallocate out of that memory instead of repeatedly freeing
//! and allocating … it greatly reduces timing jitter."
//!
//! [`PackedB`] packs `op(B)` once into the micro-panel layout the
//! kernel consumes; [`gemm_prepacked`] then runs the blocked driver
//! reading panels straight out of it. Results are bitwise identical
//! to [`super::gemm`] with the same blocking.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rayon::prelude::*;

use super::{kernel, pack, Blocking, GemmContext, Trans, MR, NR};

/// One `(pc, jc)` block of the packed B operand.
#[derive(Clone, Copy, Debug)]
struct BlockInfo {
    /// k-offset of the block.
    pc: usize,
    /// k-extent.
    kc_eff: usize,
    /// column offset.
    jc: usize,
    /// column extent.
    nc_eff: usize,
    /// start offset in the packed buffer.
    offset: usize,
}

/// `op(B)` packed once for repeated multiplication.
#[derive(Clone, Debug)]
pub struct PackedB<T: Scalar> {
    data: Vec<T>,
    blocks: Vec<BlockInfo>,
    blocking: Blocking,
    k: usize,
    n: usize,
}

impl<T: Scalar> PackedB<T> {
    /// Pack `op(B)` (shape `k x n`) under `blocking`.
    pub fn new(b: &Matrix<T>, tb: Trans, blocking: Blocking) -> Self {
        let blocking = blocking.sanitized();
        let (k, n) = match tb {
            Trans::N => b.shape(),
            Trans::T => {
                let (r, c) = b.shape();
                (c, r)
            }
        };
        let kc = blocking.kc.min(k.max(1));
        let nc = blocking.nc.min(n.max(1));

        let mut blocks = Vec::new();
        let mut total = 0usize;
        let mut pc = 0;
        while pc < k {
            let kc_eff = kc.min(k - pc);
            let mut jc = 0;
            while jc < n {
                let nc_eff = nc.min(n - jc);
                let size = nc_eff.div_ceil(NR) * NR * kc_eff;
                blocks.push(BlockInfo {
                    pc,
                    kc_eff,
                    jc,
                    nc_eff,
                    offset: total,
                });
                total += size;
                jc += nc_eff;
            }
            pc += kc_eff;
        }

        let mut data = vec![T::ZERO; total];
        for info in &blocks {
            let size = info.nc_eff.div_ceil(NR) * NR * info.kc_eff;
            pack::pack_b(
                b,
                tb,
                info.pc,
                info.kc_eff,
                info.jc,
                info.nc_eff,
                &mut data[info.offset..info.offset + size],
            );
        }
        PackedB {
            data,
            blocks,
            blocking,
            k,
            n,
        }
    }

    /// Logical `op(B)` row count (the GEMM inner dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical `op(B)` column count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Blocking the panels were packed under (the multiply must use
    /// the same).
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// Packed bytes held.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    fn block(&self, pc: usize, jc: usize) -> (&[T], usize, usize) {
        // Blocks are laid out pc-major, jc-minor on a regular grid,
        // so the index is computable without scanning.
        let kc = self.blocking.kc.min(self.k.max(1));
        let nc = self.blocking.nc.min(self.n.max(1));
        let jc_blocks = self.n.div_ceil(nc).max(1);
        let idx = (pc / kc) * jc_blocks + jc / nc;
        let info = &self.blocks[idx];
        debug_assert_eq!(
            (info.pc, info.jc),
            (pc, jc),
            "block lookup: driver and packer disagree on blocking"
        );
        let size = info.nc_eff.div_ceil(NR) * NR * info.kc_eff;
        (
            &self.data[info.offset..info.offset + size],
            info.kc_eff,
            info.nc_eff,
        )
    }
}

/// `C = alpha * op(A) * B_packed + beta * C` with a prepacked B.
///
/// # Panics
/// On shape mismatch between `op(A)`, the packed operand, and `C`.
pub fn gemm_prepacked<T: Scalar>(
    ctx: &GemmContext,
    ta: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &PackedB<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = match ta {
        Trans::N => a.shape(),
        Trans::T => {
            let (r, cc) = a.shape();
            (cc, r)
        }
    };
    assert_eq!(
        k,
        b.k(),
        "gemm_prepacked: inner dimensions {k} != {}",
        b.k()
    );
    let n = b.n();
    assert_eq!(c.shape(), (m, n), "gemm_prepacked: C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        if beta == T::ZERO {
            c.as_mut_slice().fill(T::ZERO);
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        } else if beta != T::ONE {
            c.scale(beta);
        }
        return;
    }

    let blocking = b.blocking();
    let target_tasks = ctx.threads() * 3;
    let sh = m
        .div_ceil(target_tasks)
        .next_multiple_of(MR)
        .clamp(MR, blocking.mc.max(MR));

    let c_slice = c.as_mut_slice();
    ctx.run_pool(|| {
        if ctx.threads() == 1 {
            for (si, stripe) in c_slice.chunks_mut(sh * n).enumerate() {
                stripe_prepacked(ta, alpha, a, b, beta, stripe, si * sh, k, n, blocking);
            }
        } else {
            c_slice
                .par_chunks_mut(sh * n)
                .enumerate()
                .for_each(|(si, stripe)| {
                    stripe_prepacked(ta, alpha, a, b, beta, stripe, si * sh, k, n, blocking);
                });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn stripe_prepacked<T: Scalar>(
    ta: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &PackedB<T>,
    beta: T,
    stripe: &mut [T],
    ic0: usize,
    k: usize,
    n: usize,
    blocking: Blocking,
) {
    let mc_eff = stripe.len() / n;
    let kc = blocking.kc.min(k);
    let nc = blocking.nc.min(n);
    let a_panels = mc_eff.div_ceil(MR);
    let mut ap = vec![T::ZERO; a_panels * MR * kc];

    let mut pc = 0;
    let mut first_block = true;
    while pc < k {
        let kc_eff = kc.min(k - pc);
        pack::pack_a(a, ta, ic0, mc_eff, pc, kc_eff, &mut ap);
        let merge = if first_block { Some(beta) } else { None };

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            let (bp, bk, bn) = b.block(pc, jc);
            debug_assert_eq!(bk, kc_eff);
            debug_assert_eq!(bn, nc_eff);

            let jr_panels = nc_eff.div_ceil(NR);
            let ir_panels = mc_eff.div_ceil(MR);
            for jr in 0..jr_panels {
                let nr_eff = NR.min(nc_eff - jr * NR);
                let bp_panel = &bp[jr * kc_eff * NR..(jr + 1) * kc_eff * NR];
                for ir in 0..ir_panels {
                    let mr_eff = MR.min(mc_eff - ir * MR);
                    let ap_panel = &ap[ir * kc_eff * MR..(ir + 1) * kc_eff * MR];
                    let c_off = (ir * MR) * n + jc + jr * NR;
                    kernel::microkernel(
                        kc_eff, alpha, ap_panel, bp_panel, stripe, c_off, n, mr_eff, nr_eff, merge,
                    );
                }
            }
            jc += nc_eff;
        }
        pc += kc_eff;
        first_block = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use pdnn_util::Prng;

    fn rand(r: usize, c: usize, seed: u64) -> Matrix<f32> {
        let mut rng = Prng::new(seed);
        Matrix::random_normal(r, c, 1.0, &mut rng)
    }

    #[test]
    fn matches_plain_gemm_bitwise() {
        let ctx = GemmContext::sequential();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (17, 23, 9),
            (64, 64, 64),
            (130, 77, 33),
        ] {
            let a = rand(m, k, 1);
            let b = rand(k, n, 2);
            let packed = PackedB::new(&b, Trans::N, ctx.blocking());
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
            gemm_prepacked(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c2);
            assert_eq!(c1, c2, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn transposed_b_packs_correctly() {
        // The layer-forward shape: X [frames x in] times W^T with
        // W [out x in].
        let ctx = GemmContext::sequential();
        let x = rand(50, 30, 3);
        let w = rand(20, 30, 4); // out x in
        let packed = PackedB::new(&w, Trans::T, ctx.blocking());
        assert_eq!(packed.k(), 30);
        assert_eq!(packed.n(), 20);
        let mut c1 = Matrix::zeros(50, 20);
        let mut c2 = Matrix::zeros(50, 20);
        gemm(&ctx, Trans::N, Trans::T, 1.0f32, &x, &w, 0.0, &mut c1);
        gemm_prepacked(&ctx, Trans::N, 1.0f32, &x, &packed, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn reuse_across_many_batches() {
        let ctx = GemmContext::sequential();
        let w = rand(16, 24, 5);
        let packed = PackedB::new(&w, Trans::T, ctx.blocking());
        for seed in 10..15 {
            let x = rand(31, 24, seed);
            let mut c1 = Matrix::zeros(31, 16);
            let mut c2 = Matrix::zeros(31, 16);
            gemm(&ctx, Trans::N, Trans::T, 1.0f32, &x, &w, 0.0, &mut c1);
            gemm_prepacked(&ctx, Trans::N, 1.0f32, &x, &packed, 0.0, &mut c2);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn alpha_beta_and_ta_combinations() {
        let ctx = GemmContext::sequential();
        let a = rand(12, 40, 6); // will be used transposed: op(A) 40x12
        let b = rand(12, 25, 7);
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        let c0 = rand(40, 25, 8);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm(&ctx, Trans::T, Trans::N, 1.5f32, &a, &b, -0.5, &mut c1);
        gemm_prepacked(&ctx, Trans::T, 1.5f32, &a, &packed, -0.5, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn custom_blocking_respected() {
        let blocking = Blocking {
            mc: 16,
            kc: 8,
            nc: 24,
        };
        let ctx = GemmContext::sequential().with_blocking(blocking);
        let a = rand(37, 53, 9);
        let b = rand(53, 29, 10);
        let packed = PackedB::new(&b, Trans::N, blocking);
        let mut c1 = Matrix::zeros(37, 29);
        let mut c2 = Matrix::zeros(37, 29);
        gemm(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
        gemm_prepacked(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn packed_size_is_padded_panels() {
        let b: Matrix<f32> = Matrix::zeros(10, 10);
        let packed = PackedB::new(&b, Trans::N, Blocking::default());
        // 10 cols pad to 2 panels of NR=8: 16 cols x 10 k x 4 bytes.
        assert_eq!(packed.bytes(), 16 * 10 * 4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let ctx = GemmContext::sequential();
        let a = rand(4, 5, 11);
        let b = rand(6, 3, 12);
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        let mut c = Matrix::zeros(4, 3);
        gemm_prepacked(&ctx, Trans::N, 1.0f32, &a, &packed, 0.0, &mut c);
    }
}
