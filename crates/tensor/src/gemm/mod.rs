//! Blocked, packed, multi-threaded GEMM.
//!
//! Structure follows the paper's "telescoping" view of BG/Q
//! (Section V.A): node, core, and thread levels are handled by
//! separate mechanisms that are designed together.
//!
//! * **Thread level** — [`kernel::microkernel`]: an `MR x NR`
//!   register-blocked rank-1-update kernel reading zero-padded packed
//!   panels with unit stride (the paper's 8x8 QPX kernel). The
//!   accumulate loop itself is supplied by the active
//!   [`backend::ComputeBackend`] — explicit AVX2/AVX-512/NEON
//!   `std::arch` kernels selected by runtime feature detection, or the
//!   portable scalar reference.
//! * **Core level** — [`pack`]: operands are reformatted into
//!   micro-panels so every inner-loop access is stride-one, the
//!   software analogue of engaging the L1P stream prefetcher.
//! * **Node level** — this module: cache blocking (`MC/KC/NC`) plus
//!   row-stripe parallelism across a rayon pool (the paper's OpenMP
//!   ranks-per-node times threads-per-rank grid). Each stripe packs
//!   its own operands, so no synchronization is needed between
//!   threads — C stripes are disjoint `&mut` chunks and Rust's borrow
//!   checker proves the decomposition race-free.
//!
//! The paper's "implicitly synchronized threads" (partner threads
//! cooperatively prefetching each other's cache lines) relies on
//! cycle-level SMT control that portable Rust cannot express; its
//! effect is an efficiency factor, modeled in `pdnn-bgq` (see
//! DESIGN.md substitutions).
//!
//! ## Backend dispatch and the bit-exactness contract
//!
//! A [`GemmContext`] carries a `&'static dyn ComputeBackend`; the
//! constructors embed [`backend::default_backend`] (auto-detected, or
//! forced via the `PDNN_BACKEND` environment variable), and
//! [`GemmContext::with_backend`] overrides it per context. Every
//! backend is required to be **bit-identical** to the forced-scalar
//! reference: kernels may vectorize across the independent
//! per-element accumulation chains but must keep each chain's
//! operation order and use unfused multiply+add (see
//! [`backend`] module docs). Switching backends therefore never
//! changes trained weights, telemetry bytes, or any other gated
//! artifact — only wall-clock time.
//!
//! ## Entry points
//!
//! All products go through the [`op::GemmOp`] descriptor: name the
//! operands (plain, prepacked, or streamed-`B^T`), set `alpha`/`beta`,
//! and [`op::GemmOp::run`] it on a context. Training multiplies every
//! batch against the *same* weights, and a CG solve multiplies dozens
//! of directions against the *same* curvature-minibatch activations —
//! so the hot path prepacks via [`PackedB`]/[`PackedA`] and runs
//! `GemmOp` against the cached panels, bitwise equal to the plain
//! two-matrix form under the same blocking. The legacy free functions
//! ([`gemm`], [`matmul`], [`naive::gemm_naive`], the four
//! `gemm_prepacked*`) remain as `#[deprecated]` shims over the same
//! drivers.

pub mod backend;
pub mod kernel;
pub mod naive;
pub mod op;
pub mod pack;
pub mod prepacked;

#[allow(deprecated)]
pub use naive::gemm_naive;
#[allow(deprecated)]
pub use prepacked::{gemm_prepacked, gemm_prepacked_a, gemm_prepacked_a_bt, gemm_prepacked_ab};
pub use prepacked::{PackedA, PackedB};

pub use backend::{
    available_isas, backend_for, default_backend, detect_best, scalar_backend, BackendConfig,
    BackendConfigBuilder, BackendError, ComputeBackend, Isa, BACKEND_ENV,
};
pub use op::GemmOp;

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rayon::prelude::*;
use std::sync::Arc;

/// Micro-tile rows (register blocking, matches the paper's 8x8 C block).
pub const MR: usize = 8;
/// Micro-tile columns.
pub const NR: usize = 8;

/// Transpose flag for a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

/// Cache-blocking parameters (`MC/KC/NC` in BLIS terminology).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of A per stripe (L2-resident A panel height).
    pub mc: usize,
    /// Depth of the packed panels (L1-resident rank-k update).
    pub kc: usize,
    /// Columns of B per packed panel (L3/stream sized).
    pub nc: usize,
}

impl Default for Blocking {
    fn default() -> Self {
        Blocking {
            mc: 128,
            kc: 256,
            nc: 1024,
        }
    }
}

impl Blocking {
    /// Validate and clamp degenerate values (zero block sizes would
    /// loop forever; clamp to the micro-tile).
    pub fn sanitized(self) -> Blocking {
        Blocking {
            mc: self.mc.max(MR),
            kc: self.kc.max(1),
            nc: self.nc.max(NR),
        }
    }
}

/// Execution context: thread count, pool, blocking parameters, and the
/// compute backend supplying the microkernels.
///
/// A context is cheap to clone (the pool is shared, the backend is a
/// static). The DNN layer keeps one context per worker rank, mirroring
/// the paper's "ranks-per-node x OpenMP-threads-per-rank"
/// configurations.
#[derive(Clone)]
pub struct GemmContext {
    threads: usize,
    pool: Option<Arc<rayon::ThreadPool>>,
    blocking: Blocking,
    backend: &'static dyn backend::ComputeBackend,
}

impl std::fmt::Debug for GemmContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GemmContext")
            .field("threads", &self.threads)
            .field("blocking", &self.blocking)
            .field("backend", &self.backend.isa())
            .finish()
    }
}

impl Default for GemmContext {
    fn default() -> Self {
        Self::sequential()
    }
}

impl GemmContext {
    /// Single-threaded context (deterministic, no pool), on the
    /// process-default backend.
    pub fn sequential() -> Self {
        GemmContext {
            threads: 1,
            pool: None,
            blocking: Blocking::default(),
            backend: backend::default_backend(),
        }
    }

    /// Context with a private pool of `threads` workers, on the
    /// process-default backend.
    ///
    /// `threads == 1` degrades to [`GemmContext::sequential`].
    pub fn threaded(threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = if threads > 1 {
            Some(Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    // pdnn-lint: allow(l3-no-unwrap): pool construction cannot fail for num_threads >= 1, guaranteed by the max(1) above
                    .expect("failed to build GEMM thread pool"),
            ))
        } else {
            None
        };
        GemmContext {
            threads,
            pool,
            blocking: Blocking::default(),
            backend: backend::default_backend(),
        }
    }

    /// Replace the blocking parameters (used by the blocking ablation).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking.sanitized();
        self
    }

    /// Replace the compute backend (used by forced-backend tests and
    /// the per-ISA bench sweep; production code keeps the
    /// [`backend::default_backend`] the constructors embed).
    pub fn with_backend(mut self, backend: &'static dyn backend::ComputeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Blocking parameters in effect.
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// The compute backend supplying the microkernels.
    pub fn backend(&self) -> &'static dyn backend::ComputeBackend {
        self.backend
    }

    pub(crate) fn run_pool<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

/// FLOP count of a GEMM with the given logical dimensions.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
///
/// # Panics
/// On any shape mismatch.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub(crate) fn gemm_impl<T: Scalar>(
    ctx: &GemmContext,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = match ta {
        Trans::N => a.shape(),
        Trans::T => {
            let (r, cc) = a.shape();
            (cc, r)
        }
    };
    let (kb, n) = match tb {
        Trans::N => b.shape(),
        Trans::T => {
            let (r, cc) = b.shape();
            (cc, r)
        }
    };
    assert_eq!(k, kb, "gemm: inner dimensions {k} != {kb}");
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm: C is {:?}, want ({m},{n})",
        c.shape()
    );

    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Pure C scaling; beta == 0 must overwrite (NaN-safe).
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        if beta == T::ZERO {
            c.as_mut_slice().fill(T::ZERO);
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        } else if beta != T::ONE {
            c.scale(beta);
        }
        return;
    }

    let blocking = ctx.blocking;
    // Backend kernel resolved once per call, not per micro-tile.
    let acc_fn = T::acc_kernel(ctx.backend());
    // Stripe height: small enough to give the pool ~3 tasks per
    // thread for load balance, but never below the micro-tile and
    // never above MC (the L2 A-panel budget).
    let target_tasks = ctx.threads * 3;
    let sh = m
        .div_ceil(target_tasks)
        .next_multiple_of(MR)
        .clamp(MR, blocking.mc.max(MR));

    let c_slice = c.as_mut_slice();
    ctx.run_pool(|| {
        if ctx.threads == 1 {
            for (si, stripe) in c_slice.chunks_mut(sh * n).enumerate() {
                stripe_kernel(
                    acc_fn,
                    ta,
                    tb,
                    alpha,
                    a,
                    b,
                    beta,
                    stripe,
                    si * sh,
                    k,
                    n,
                    blocking,
                );
            }
        } else {
            c_slice
                .par_chunks_mut(sh * n)
                .enumerate()
                .for_each(|(si, stripe)| {
                    stripe_kernel(
                        acc_fn,
                        ta,
                        tb,
                        alpha,
                        a,
                        b,
                        beta,
                        stripe,
                        si * sh,
                        k,
                        n,
                        blocking,
                    );
                });
        }
    });
}

/// Deprecated free-function entry for the plain two-matrix product.
#[deprecated(note = "use GemmOp::ab(a, ta, b, tb).alpha(..).beta(..).run(ctx, c)")]
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm<T: Scalar>(
    ctx: &GemmContext,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    gemm_impl(ctx, ta, tb, alpha, a, b, beta, c);
}

/// Process one horizontal stripe of C (rows `ic0 .. ic0 + stripe_rows`).
///
/// Each stripe packs its own A and B panels. Re-packing B per stripe
/// costs `stripes * k * n` extra moves — under 1% of the `2mnk` FLOPs
/// for the shapes DNN training produces — and buys a decomposition
/// with zero shared mutable state.
#[allow(clippy::too_many_arguments)]
fn stripe_kernel<T: Scalar>(
    acc_fn: backend::AccFn<T>,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    stripe: &mut [T],
    ic0: usize,
    k: usize,
    n: usize,
    blocking: Blocking,
) {
    let mc_eff = stripe.len() / n;
    debug_assert_eq!(stripe.len(), mc_eff * n);
    let kc = blocking.kc.min(k);
    let nc = blocking.nc.min(n);

    let a_panels = mc_eff.div_ceil(MR);
    let b_panels = nc.div_ceil(NR);
    let mut ap = vec![T::ZERO; a_panels * MR * kc];
    let mut bp = vec![T::ZERO; b_panels * NR * kc];

    let mut pc = 0;
    let mut first_block = true;
    while pc < k {
        let kc_eff = kc.min(k - pc);
        pack::pack_a(a, ta, ic0, mc_eff, pc, kc_eff, &mut ap);
        let merge = if first_block { Some(beta) } else { None };

        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            pack::pack_b(b, tb, pc, kc_eff, jc, nc_eff, &mut bp);

            let jr_panels = nc_eff.div_ceil(NR);
            let ir_panels = mc_eff.div_ceil(MR);
            for jr in 0..jr_panels {
                let nr_eff = NR.min(nc_eff - jr * NR);
                let bp_panel = &bp[jr * kc_eff * NR..(jr + 1) * kc_eff * NR];
                for ir in 0..ir_panels {
                    let mr_eff = MR.min(mc_eff - ir * MR);
                    let ap_panel = &ap[ir * kc_eff * MR..(ir + 1) * kc_eff * MR];
                    let c_off = (ir * MR) * n + jc + jr * NR;
                    kernel::microkernel(
                        acc_fn, kc_eff, alpha, ap_panel, bp_panel, stripe, c_off, n, mr_eff,
                        nr_eff, merge,
                    );
                }
            }
            jc += nc_eff;
        }
        pc += kc_eff;
        first_block = false;
    }
}

/// Convenience product `A * B` on the forced-scalar backend.
#[deprecated(note = "use GemmOp::ab(a, Trans::N, b, Trans::N).run(&GemmContext::sequential(), c)")]
pub fn matmul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    let ctx = GemmContext::sequential().with_backend(backend::scalar_backend());
    gemm_impl(&ctx, Trans::N, Trans::N, T::ONE, a, b, T::ZERO, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_util::Prng;

    fn random_matrix(rows: usize, cols: usize, rng: &mut Prng) -> Matrix<f32> {
        Matrix::random_normal(rows, cols, 1.0, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn check_against_naive(
        ctx: &GemmContext,
        ta: Trans,
        tb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        beta: f32,
        seed: u64,
    ) {
        let mut rng = Prng::new(seed);
        let a = match ta {
            Trans::N => random_matrix(m, k, &mut rng),
            Trans::T => random_matrix(k, m, &mut rng),
        };
        let b = match tb {
            Trans::N => random_matrix(k, n, &mut rng),
            Trans::T => random_matrix(n, k, &mut rng),
        };
        let c0 = random_matrix(m, n, &mut rng);
        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        gemm_impl(ctx, ta, tb, alpha, &a, &b, beta, &mut c_fast);
        naive::reference(ta, tb, alpha, &a, &b, beta, &mut c_ref);
        let tol = 1e-4 * (k as f64).sqrt().max(1.0);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff < tol,
            "gemm mismatch: {ta:?}{tb:?} m={m} n={n} k={k} alpha={alpha} beta={beta} diff={diff}"
        );
    }

    #[test]
    fn matches_naive_on_aligned_shapes() {
        let ctx = GemmContext::sequential();
        check_against_naive(&ctx, Trans::N, Trans::N, 64, 64, 64, 1.0, 0.0, 1);
    }

    #[test]
    fn matches_naive_on_ragged_shapes() {
        let ctx = GemmContext::sequential();
        // Deliberately awkward sizes: prime-ish, smaller than tiles,
        // crossing block boundaries — the paper calls out "matrices
        // with dimensions that do not lend themselves to full
        // SIMDization".
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 8, 8),
            (9, 7, 13),
            (17, 31, 29),
            (130, 19, 257),
            (33, 129, 65),
        ] {
            check_against_naive(&ctx, Trans::N, Trans::N, m, n, k, 1.0, 0.0, m as u64);
        }
    }

    #[test]
    fn matches_naive_all_transpose_combos() {
        let ctx = GemmContext::sequential();
        for &ta in &[Trans::N, Trans::T] {
            for &tb in &[Trans::N, Trans::T] {
                check_against_naive(&ctx, ta, tb, 23, 17, 41, 1.0, 0.0, 7);
            }
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        let ctx = GemmContext::sequential();
        for &(alpha, beta) in &[(1.0, 1.0), (2.5, 0.0), (0.0, 3.0), (-1.0, 0.5)] {
            check_against_naive(&ctx, Trans::N, Trans::N, 19, 21, 23, alpha, beta, 11);
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let seq = GemmContext::sequential();
        let thr = GemmContext::threaded(4);
        let mut rng = Prng::new(42);
        let a = random_matrix(200, 150, &mut rng);
        let b = random_matrix(150, 170, &mut rng);
        let mut c1 = Matrix::zeros(200, 170);
        let mut c2 = Matrix::zeros(200, 170);
        gemm_impl(&seq, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
        gemm_impl(&thr, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut c2);
        // Identical block decomposition per stripe ⇒ bitwise equal.
        assert_eq!(c1, c2);
    }

    #[test]
    fn forced_backends_are_bitwise_identical() {
        // The backend contract: same product, same bits, whatever the
        // dispatched ISA (full shape sweep in tests/backend_parity.rs).
        let mut rng = Prng::new(77);
        let a = random_matrix(45, 37, &mut rng);
        let b = random_matrix(37, 51, &mut rng);
        let mut want = Matrix::zeros(45, 51);
        let scalar_ctx = GemmContext::sequential().with_backend(scalar_backend());
        gemm_impl(
            &scalar_ctx,
            Trans::N,
            Trans::N,
            1.0f32,
            &a,
            &b,
            0.0,
            &mut want,
        );
        for isa in available_isas() {
            let ctx = GemmContext::sequential()
                .with_backend(backend_for(isa).expect("listed as available"));
            assert_eq!(ctx.backend().isa(), isa);
            let mut got = Matrix::zeros(45, 51);
            gemm_impl(&ctx, Trans::N, Trans::N, 1.0f32, &a, &b, 0.0, &mut got);
            assert_eq!(got, want, "backend {isa} diverged from scalar");
        }
    }

    #[test]
    fn context_debug_names_backend() {
        let ctx = GemmContext::sequential().with_backend(scalar_backend());
        let dbg = format!("{ctx:?}");
        assert!(dbg.contains("Scalar"), "missing backend in {dbg}");
    }

    #[test]
    fn custom_blocking_still_correct() {
        let ctx = GemmContext::sequential().with_blocking(Blocking {
            mc: 16,
            kc: 8,
            nc: 24,
        });
        check_against_naive(&ctx, Trans::N, Trans::N, 37, 53, 29, 1.0, 0.5, 3);
    }

    #[test]
    fn degenerate_blocking_is_sanitized() {
        let ctx = GemmContext::sequential().with_blocking(Blocking {
            mc: 0,
            kc: 0,
            nc: 0,
        });
        assert!(ctx.blocking().mc >= MR);
        check_against_naive(&ctx, Trans::N, Trans::N, 12, 12, 12, 1.0, 0.0, 5);
    }

    #[test]
    fn k_zero_scales_c_only() {
        let ctx = GemmContext::sequential();
        let a: Matrix<f32> = Matrix::zeros(3, 0);
        let b: Matrix<f32> = Matrix::zeros(0, 4);
        let mut c: Matrix<f32> = Matrix::filled(3, 4, 2.0);
        gemm_impl(&ctx, Trans::N, Trans::N, 1.0, &a, &b, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
        // beta = 0 with NaN in C must produce zeros.
        let mut c2: Matrix<f32> = Matrix::filled(3, 4, f32::NAN);
        gemm_impl(&ctx, Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c2);
        assert!(c2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_output_is_noop() {
        let ctx = GemmContext::sequential();
        let a: Matrix<f32> = Matrix::zeros(0, 5);
        let b: Matrix<f32> = Matrix::zeros(5, 4);
        let mut c: Matrix<f32> = Matrix::zeros(0, 4);
        gemm_impl(&ctx, Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let ctx = GemmContext::sequential();
        let a: Matrix<f32> = Matrix::zeros(2, 3);
        let b: Matrix<f32> = Matrix::zeros(4, 2);
        let mut c: Matrix<f32> = Matrix::zeros(2, 2);
        gemm_impl(&ctx, Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn f64_path_works() {
        let ctx = GemmContext::sequential();
        let mut rng = Prng::new(8);
        let a: Matrix<f64> = Matrix::random_normal(20, 30, 1.0, &mut rng);
        let b: Matrix<f64> = Matrix::random_normal(30, 10, 1.0, &mut rng);
        let mut c1: Matrix<f64> = Matrix::zeros(20, 10);
        let mut c2 = c1.clone();
        gemm_impl(&ctx, Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c1);
        naive::reference(Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c2);
        assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    #[allow(deprecated)] // exercising the legacy shims on purpose
    fn deprecated_shims_still_work() {
        let a: Matrix<f32> = Matrix::eye(4);
        let b: Matrix<f32> = Matrix::from_fn(4, 3, |r, c| (r + c) as f32);
        assert_eq!(matmul(&a, &b), b);
        let mut c = Matrix::zeros(4, 3);
        gemm(
            &GemmContext::sequential(),
            Trans::N,
            Trans::N,
            1.0f32,
            &a,
            &b,
            0.0,
            &mut c,
        );
        assert_eq!(c, b);
    }

    #[test]
    fn gemm_flops_counts() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }
}
