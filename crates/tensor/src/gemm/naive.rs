//! Reference triple-loop GEMM.
//!
//! Used as the correctness oracle for the blocked kernels and as the
//! "untuned library" baseline in the GEMM benches (the paper's
//! Section V.A motivates the tuned kernel against exactly this kind of
//! straightforward implementation).

use crate::matrix::Matrix;
use crate::scalar::Scalar;

use super::Trans;

/// `C = alpha * op(A) * op(B) + beta * C`, naive triple loop.
///
/// Shape contract is identical to the blocked driver; the public entry
/// is [`super::op::GemmOp::run_reference`].
pub(crate) fn reference<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = match ta {
        Trans::N => a.shape(),
        Trans::T => {
            let (r, c) = a.shape();
            (c, r)
        }
    };
    let (kb, n) = match tb {
        Trans::N => b.shape(),
        Trans::T => {
            let (r, c) = b.shape();
            (c, r)
        }
    };
    assert_eq!(k, kb, "gemm_naive: inner dimensions {k} != {kb}");
    assert_eq!(c.shape(), (m, n), "gemm_naive: C shape mismatch");

    let at = |i: usize, kk: usize| -> T {
        match ta {
            Trans::N => a[(i, kk)],
            Trans::T => a[(kk, i)],
        }
    };
    let bt = |kk: usize, j: usize| -> T {
        match tb {
            Trans::N => b[(kk, j)],
            Trans::T => b[(j, kk)],
        }
    };

    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for kk in 0..k {
                acc = at(i, kk).mul_add(bt(kk, j), acc);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Deprecated free-function entry for the reference triple loop.
#[deprecated(note = "use GemmOp::ab(a, ta, b, tb).alpha(..).beta(..).run_reference(c)")]
pub fn gemm_naive<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    reference(ta, tb, alpha, a, b, beta, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let a: Matrix<f32> = Matrix::eye(3);
        let b: Matrix<f32> = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut c: Matrix<f32> = Matrix::zeros(3, 2);
        reference(Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_2x2() {
        let a: Matrix<f64> = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b: Matrix<f64> = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut c: Matrix<f64> = Matrix::zeros(2, 2);
        reference(Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_flags_match_explicit_transpose() {
        let a: Matrix<f32> = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f32);
        let b: Matrix<f32> = Matrix::from_fn(5, 4, |r, c| (r * c) as f32 - 1.0);
        // C = A * B^T directly…
        let mut c1: Matrix<f32> = Matrix::zeros(3, 5);
        reference(Trans::N, Trans::T, 1.0, &a, &b, 0.0, &mut c1);
        // …equals A * transpose(B) with no flag.
        let bt = b.transposed();
        let mut c2: Matrix<f32> = Matrix::zeros(3, 5);
        reference(Trans::N, Trans::N, 1.0, &a, &bt, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn alpha_beta_compose() {
        let a: Matrix<f32> = Matrix::eye(2);
        let b: Matrix<f32> = Matrix::eye(2);
        let mut c: Matrix<f32> = Matrix::filled(2, 2, 10.0);
        reference(Trans::N, Trans::N, 3.0, &a, &b, 0.5, &mut c);
        // diag: 3*1 + 0.5*10 = 8; off-diag: 0 + 5.
        assert_eq!(c[(0, 0)], 8.0);
        assert_eq!(c[(0, 1)], 5.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn inner_dim_mismatch_panics() {
        let a: Matrix<f32> = Matrix::zeros(2, 3);
        let b: Matrix<f32> = Matrix::zeros(4, 2);
        let mut c: Matrix<f32> = Matrix::zeros(2, 2);
        reference(Trans::N, Trans::N, 1.0, &a, &b, 0.0, &mut c);
    }
}
