//! Operand packing.
//!
//! The paper reformats the A and B operands "in such a way so as to
//! allow strictly stride-one access to both matrices" so the L1
//! prefetch engine engages (Section V.A.2). We do the same: before the
//! inner kernel runs, the A block is rearranged into column-major
//! micro-panels of [`MR`] rows and the B block into row-major
//! micro-panels of [`NR`] columns. The microkernel then walks both
//! buffers with unit stride. Ragged edges are zero-padded so the
//! kernel never branches on panel width.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

use super::{Trans, MR, NR};

/// Pack an `mc x kc` block of `op(A)` starting at (`ic`, `pc`) into
/// `MR`-row micro-panels.
///
/// Output layout: panel-major; within panel `p`, element `(kk, i)` of
/// the panel lives at `p * kc * MR + kk * MR + i`. Rows beyond `mc`
/// are zero.
///
/// `out` must have room for `ceil(mc / MR) * kc * MR` elements.
pub fn pack_a<T: Scalar>(
    a: &Matrix<T>,
    trans: Trans,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    out: &mut [T],
) {
    let panels = mc.div_ceil(MR);
    assert!(
        out.len() >= panels * kc * MR,
        "pack_a: output buffer too small"
    );
    for p in 0..panels {
        let row0 = p * MR;
        let rows = MR.min(mc - row0);
        let dst = &mut out[p * kc * MR..(p + 1) * kc * MR];
        match trans {
            Trans::N => {
                // op(A)(i, kk) = A[ic + i, pc + kk]; source rows are
                // contiguous, so walk k in the inner loop per row to
                // keep reads stride-one, writing strided into the
                // panel (the panel is small and cache-resident).
                for i in 0..rows {
                    let src = &a.row(ic + row0 + i)[pc..pc + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        dst[kk * MR + i] = v;
                    }
                }
            }
            Trans::T => {
                // op(A)(i, kk) = A[pc + kk, ic + i]; source row kk is
                // contiguous in i, which matches the panel layout, so
                // both sides are stride-one.
                for kk in 0..kc {
                    let src = &a.row(pc + kk)[ic + row0..ic + row0 + rows];
                    dst[kk * MR..kk * MR + rows].copy_from_slice(src);
                }
            }
        }
        if rows < MR {
            for kk in 0..kc {
                for i in rows..MR {
                    dst[kk * MR + i] = T::ZERO;
                }
            }
        }
    }
}

/// Pack a `kc x nc` block of `op(B)` starting at (`pc`, `jc`) into
/// `NR`-column micro-panels.
///
/// Output layout: panel-major; within panel `p`, element `(kk, j)` of
/// the panel lives at `p * kc * NR + kk * NR + j`. Columns beyond `nc`
/// are zero.
///
/// `out` must have room for `ceil(nc / NR) * kc * NR` elements.
pub fn pack_b<T: Scalar>(
    b: &Matrix<T>,
    trans: Trans,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    out: &mut [T],
) {
    pack_b_rows(b.as_slice(), b.cols(), trans, pc, kc, jc, nc, out);
}

/// [`pack_b`] reading from a row-major slice (`stride` elements per
/// row) instead of a [`Matrix`] — lets callers holding a flat
/// parameter region (e.g. a layer's slice of a direction vector) pack
/// without first copying into a matrix.
#[allow(clippy::too_many_arguments)]
pub fn pack_b_rows<T: Scalar>(
    data: &[T],
    stride: usize,
    trans: Trans,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    out: &mut [T],
) {
    let row = |r: usize| &data[r * stride..(r + 1) * stride];
    let panels = nc.div_ceil(NR);
    assert!(
        out.len() >= panels * kc * NR,
        "pack_b: output buffer too small"
    );
    for p in 0..panels {
        let col0 = p * NR;
        let cols = NR.min(nc - col0);
        let dst = &mut out[p * kc * NR..(p + 1) * kc * NR];
        match trans {
            Trans::N => {
                // op(B)(kk, j) = B[pc + kk, jc + j]; row kk contiguous
                // in j: stride-one on both sides.
                for kk in 0..kc {
                    let src = &row(pc + kk)[jc + col0..jc + col0 + cols];
                    dst[kk * NR..kk * NR + cols].copy_from_slice(src);
                }
            }
            Trans::T => {
                // op(B)(kk, j) = B[jc + j, pc + kk]; source rows are
                // the j dimension.
                for j in 0..cols {
                    let src = &row(jc + col0 + j)[pc..pc + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        dst[kk * NR + j] = v;
                    }
                }
            }
        }
        if cols < NR {
            for kk in 0..kc {
                for j in cols..NR {
                    dst[kk * NR + j] = T::ZERO;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| (r * 100 + c) as f32)
    }

    #[test]
    fn pack_a_notrans_layout() {
        let a = sample(10, 6);
        let (ic, mc, pc, kc): (usize, usize, usize, usize) = (1, 10 - 1, 2, 3);
        let panels = mc.div_ceil(MR);
        let mut buf = vec![-1.0f32; panels * kc * MR];
        pack_a(&a, Trans::N, ic, mc, pc, kc, &mut buf);
        // Element (i=0, kk=0) of panel 0 is A[1, 2].
        assert_eq!(buf[0], a[(1, 2)]);
        // Element (i=3, kk=2) of panel 0 is A[4, 4].
        assert_eq!(buf[2 * MR + 3], a[(4, 4)]);
        // Panel 1 row 0 is A[1 + MR, 2].
        assert_eq!(buf[kc * MR], a[(1 + MR, 2)]);
        // Panel 1 has a single live row (mc=9, MR=8); the next row
        // slot is padding and must be zero.
        assert_eq!(buf[kc * MR], a[(1 + mc - 1, 2)]);
        assert_eq!(buf[kc * MR + 1], 0.0);
    }

    #[test]
    fn pack_a_trans_matches_notrans_of_transpose() {
        let a = sample(7, 9);
        let at = a.transposed();
        let (ic, mc, pc, kc): (usize, usize, usize, usize) = (2, 5, 1, 6);
        let panels = mc.div_ceil(MR);
        let mut buf1 = vec![0.0f32; panels * kc * MR];
        let mut buf2 = vec![0.0f32; panels * kc * MR];
        // op(A) = A^T with A 7x9 → op is 9x7; block from (ic, pc).
        pack_a(&a, Trans::T, ic, mc, pc, kc, &mut buf1);
        pack_a(&at, Trans::N, ic, mc, pc, kc, &mut buf2);
        assert_eq!(buf1, buf2);
    }

    #[test]
    fn pack_b_notrans_layout() {
        let b = sample(5, 20);
        let (pc, kc, jc, nc): (usize, usize, usize, usize) = (1, 4, 3, 17);
        let panels = nc.div_ceil(NR);
        let mut buf = vec![-1.0f32; panels * kc * NR];
        pack_b(&b, Trans::N, pc, kc, jc, nc, &mut buf);
        // (kk=0, j=0) of panel 0 is B[1, 3].
        assert_eq!(buf[0], b[(1, 3)]);
        // (kk=2, j=5) of panel 0 is B[3, 8].
        assert_eq!(buf[2 * NR + 5], b[(3, 8)]);
        // Panel 2 starts at column 3 + 2*NR; nc=17 ⇒ 1 live column.
        let p2 = &buf[2 * kc * NR..3 * kc * NR];
        assert_eq!(p2[0], b[(1, 3 + 2 * NR)]);
        assert_eq!(p2[1], 0.0); // padded column
    }

    #[test]
    fn pack_b_trans_matches_notrans_of_transpose() {
        let b = sample(11, 6);
        let bt = b.transposed();
        let (pc, kc, jc, nc): (usize, usize, usize, usize) = (0, 6, 2, 9);
        let panels = nc.div_ceil(NR);
        let mut buf1 = vec![0.0f32; panels * kc * NR];
        let mut buf2 = vec![0.0f32; panels * kc * NR];
        pack_b(&b, Trans::T, pc, kc, jc, nc, &mut buf1);
        pack_b(&bt, Trans::N, pc, kc, jc, nc, &mut buf2);
        assert_eq!(buf1, buf2);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn pack_a_checks_capacity() {
        let a = sample(8, 8);
        let mut buf = vec![0.0f32; 4];
        pack_a(&a, Trans::N, 0, 8, 0, 8, &mut buf);
    }
}
