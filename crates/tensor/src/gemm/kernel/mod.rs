//! Register-blocked inner kernel.
//!
//! Mirrors the paper's Section V.A.2: an `MR x NR` block of C is
//! updated by a sequence of rank-1 updates read with unit stride from
//! the packed panels. On BG/Q this was hand-scheduled QPX assembly;
//! here the accumulate loop is a [`AccFn`] function pointer selected
//! by the active [`crate::gemm::backend::ComputeBackend`] — either the
//! portable [`scalar`] reference or an explicit `std::arch` kernel
//! ([`x86`], [`neon`]). The accumulator lives in registers for the
//! whole `kc` loop, so C traffic is one read-modify-write per block
//! regardless of `kc` — the property the paper's "reduce bandwidth to
//! a level the caches can feed" goal is about.
//!
//! These submodules are the **only** place in the workspace where
//! `unsafe` is permitted (lint rule `l7-unsafe-outside-kernel`): the
//! SIMD kernels need raw intrinsics, and everything they touch is
//! bounds-asserted in a safe wrapper first.

use crate::scalar::Scalar;

use super::backend::AccFn;
use super::{MR, NR};

/// Kernel-zone precondition: an always-on assert in a standardized
/// shape that `pdnn-kernelcheck` parses as the machine-checkable
/// guarantee backing a `// kernel-contract:` annotation.
///
/// The first argument must be either a slice-length bound
/// (`<slice>.len() >= <expr>`), a micro-tile bound (`x <= MR`), or a
/// runtime CPU-feature check (`is_x86_feature_detected!("...")`
/// conjunction) — the forms the checker knows how to match against
/// declared contracts. Using one macro for both the debug-build story
/// and the static pass keeps the contract text in a single place: a
/// kernel entry point whose declared contract is not backed by a
/// `kernel_precondition!` (or by the parameter's own type) is a
/// `k5-wrapper-precondition` finding.
///
/// Cost: a handful of integer compares per micro-panel call, noise
/// next to the `MR x NR x kc` FLOP loop each call performs.
macro_rules! kernel_precondition {
    ($cond:expr, $($msg:tt)+) => {
        assert!($cond, $($msg)+)
    };
}

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod x86;

#[cfg(target_arch = "aarch64")]
pub mod neon;

/// Compute `acc = Ap * Bp` for one micro-panel pair via `acc_fn` and
/// merge into C.
///
/// * `acc_fn`: backend-selected accumulate kernel (resolved once per
///   driver call via [`crate::scalar::Scalar::acc_kernel`]).
/// * `ap`: packed A micro-panel, `kc * MR` elements (`kk`-major).
/// * `bp`: packed B micro-panel, `kc * NR` elements (`kk`-major).
/// * `c`: the full C stripe buffer; the target block starts at
///   `c_off` with row stride `ldc`.
/// * `mr_eff`, `nr_eff`: live rows/cols of the block (edge blocks are
///   smaller; packed panels are zero-padded so the FLOP loop is
///   uniform and only the C write is masked).
/// * `merge_beta`: `Some(beta)` on the first k-block (C is scaled),
///   `None` afterwards (pure accumulate).
///
/// The merge is shared generic code — backends only replace the
/// accumulate loop, which is what keeps the merge rounding identical
/// across backends by construction.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn microkernel<T: Scalar>(
    acc_fn: AccFn<T>,
    kc: usize,
    alpha: T,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    c_off: usize,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
    merge_beta: Option<T>,
) {
    kernel_precondition!(ap.len() >= kc * MR, "microkernel: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "microkernel: B panel too short");
    kernel_precondition!(mr_eff <= MR && nr_eff <= NR, "microkernel: tile overrun");

    let mut acc = [[T::ZERO; NR]; MR];
    acc_fn(kc, ap, bp, &mut acc);

    // Merge into C, masking the ragged edge.
    match merge_beta {
        // pdnn-lint: allow(l4-float-exact-compare): BLAS beta sentinel dispatch — exact 0/1 select the overwrite/no-scale fast paths (0 must overwrite, 0*NaN != 0); this is discrimination on a sentinel, not a numeric tolerance test
        Some(beta) if beta == T::ZERO => {
            // beta == 0 must overwrite, not scale: C may hold NaN/gar-
            // bage from uninitialized reuse, and 0 * NaN = NaN.
            for i in 0..mr_eff {
                let dst = &mut c[c_off + i * ldc..c_off + i * ldc + nr_eff];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = alpha * acc[i][j];
                }
            }
        }
        Some(beta) => {
            for i in 0..mr_eff {
                let dst = &mut c[c_off + i * ldc..c_off + i * ldc + nr_eff];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = alpha.mul_add(acc[i][j], beta * *d);
                }
            }
        }
        None => {
            for i in 0..mr_eff {
                let dst = &mut c[c_off + i * ldc..c_off + i * ldc + nr_eff];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = alpha.mul_add(acc[i][j], *d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build packed panels for op(A) = ones scaled by row, op(B) = identity-ish.
    fn panels(kc: usize) -> (Vec<f32>, Vec<f32>) {
        // ap(kk, i) = (i + 1); bp(kk, j) = (kk == j % kc) as f32
        let mut ap = vec![0.0f32; kc * MR];
        let mut bp = vec![0.0f32; kc * NR];
        for kk in 0..kc {
            for i in 0..MR {
                ap[kk * MR + i] = (i + 1) as f32;
            }
            for j in 0..NR {
                bp[kk * NR + j] = if kk == j % kc { 1.0 } else { 0.0 };
            }
        }
        (ap, bp)
    }

    const ACC: AccFn<f32> = scalar::acc::<f32>;

    #[test]
    fn full_block_beta_zero() {
        let kc = 4;
        let (ap, bp) = panels(kc);
        let ldc = NR;
        let mut c = vec![f32::NAN; MR * ldc];
        microkernel(ACC, kc, 1.0, &ap, &bp, &mut c, 0, ldc, MR, NR, Some(0.0));
        // acc(i, j) = sum_kk ap(kk,i) * bp(kk,j) = (i+1) * 1 (one kk hits).
        for i in 0..MR {
            for j in 0..NR {
                assert_eq!(c[i * ldc + j], (i + 1) as f32, "({i},{j})");
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let kc = 1;
        let ap = vec![0.0f32; kc * MR];
        let bp = vec![0.0f32; kc * NR];
        let mut c = vec![f32::NAN; MR * NR];
        microkernel(ACC, kc, 1.0, &ap, &bp, &mut c, 0, NR, MR, NR, Some(0.0));
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accumulate_path_adds() {
        let kc = 2;
        let (ap, bp) = panels(kc);
        let mut c = vec![10.0f32; MR * NR];
        microkernel(ACC, kc, 2.0, &ap, &bp, &mut c, 0, NR, MR, NR, None);
        // c += 2 * (i+1)
        assert_eq!(c[0], 10.0 + 2.0);
        assert_eq!(c[(MR - 1) * NR], 10.0 + 2.0 * MR as f32);
    }

    #[test]
    fn edge_mask_leaves_outside_untouched() {
        let kc = 3;
        let (ap, bp) = panels(kc);
        let ldc = NR + 2; // wider C stripe
        let mut c = vec![-7.0f32; (MR + 1) * ldc];
        let (mr_eff, nr_eff) = (MR - 3, NR - 2);
        microkernel(
            ACC,
            kc,
            1.0,
            &ap,
            &bp,
            &mut c,
            0,
            ldc,
            mr_eff,
            nr_eff,
            Some(0.0),
        );
        for i in 0..MR + 1 {
            for j in 0..ldc {
                let v = c[i * ldc + j];
                if i < mr_eff && j < nr_eff {
                    assert_eq!(v, (i + 1) as f32);
                } else {
                    assert_eq!(v, -7.0, "({i},{j}) was clobbered");
                }
            }
        }
    }

    #[test]
    fn beta_scales_existing_c() {
        let kc = 1;
        let (ap, bp) = panels(kc);
        let mut c = vec![4.0f32; MR * NR];
        microkernel(ACC, kc, 1.0, &ap, &bp, &mut c, 0, NR, MR, NR, Some(0.5));
        // c = 1*(i+1) + 0.5*4
        assert_eq!(c[0], 1.0 + 2.0);
        assert_eq!(c[NR], 2.0 + 2.0);
    }

    #[test]
    fn kc_zero_applies_beta_only() {
        let ap: Vec<f32> = vec![];
        let bp: Vec<f32> = vec![];
        let mut c = vec![3.0f32; MR * NR];
        microkernel(ACC, 0, 1.0, &ap, &bp, &mut c, 0, NR, MR, NR, Some(0.5));
        assert!(c.iter().all(|&v| v == 1.5));
    }
}
