//! Explicit NEON microkernels (aarch64).
//!
//! Same dataflow as [`super::x86`] at 128-bit width: broadcast one A
//! element against a vector of B columns and accumulate the 8x8 C tile
//! in registers. `vmulq`/`vaddq` pairs are used instead of `vmlaq`
//! (which lowers to fused FMLA) so every lane performs the unfused
//! rounding sequence of [`crate::scalar::Scalar::mul_add`] — the
//! bit-exactness contract in [`crate::gemm::backend`]. NEON is
//! baseline on aarch64, so no runtime detection is needed; the
//! wrappers still assert panel lengths before the raw-pointer loop.

use core::arch::aarch64::*;

use crate::gemm::{MR, NR};

// The register schedules below hardcode the 8x8 micro-tile.
const _: () = assert!(MR == 8 && NR == 8);

/// NEON f32 accumulate: the 8 columns split into two 4-lane halves;
/// the half loop is outermost, so each element's `kk` chain is intact.
pub fn acc_f32_neon(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "acc_f32_neon: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "acc_f32_neon: B panel too short");
    // Safety: lengths asserted above; NEON is baseline on aarch64.
    unsafe {
        acc_f32_neon_imp(
            kc,
            ap.as_ptr(),
            bp.as_ptr(),
            acc.as_flattened_mut().as_mut_ptr(),
        )
    }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: bp points-to len >= kc * NR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias
// kernel-contract: requires target_feature(neon), baseline(aarch64)
#[target_feature(enable = "neon")]
unsafe fn acc_f32_neon_imp(kc: usize, ap: *const f32, bp: *const f32, acc: *mut f32) {
    for h in 0..2 {
        let mut r = [vdupq_n_f32(0.0); MR];
        for (i, ri) in r.iter_mut().enumerate() {
            *ri = vld1q_f32(acc.add(i * NR + h * 4));
        }
        for kk in 0..kc {
            let bv = vld1q_f32(bp.add(kk * NR + h * 4));
            let a = ap.add(kk * MR);
            for (i, ri) in r.iter_mut().enumerate() {
                let av = vdupq_n_f32(*a.add(i));
                // mul then add, not vmlaq (fused): must match the
                // unfused scalar chain `ai * b + row` bit for bit.
                *ri = vaddq_f32(vmulq_f32(av, bv), *ri);
            }
        }
        for (i, ri) in r.iter().enumerate() {
            vst1q_f32(acc.add(i * NR + h * 4), *ri);
        }
    }
}

/// NEON f64 accumulate: the 8 columns split into four 2-lane quarters.
pub fn acc_f64_neon(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "acc_f64_neon: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "acc_f64_neon: B panel too short");
    // Safety: lengths asserted above; NEON is baseline on aarch64.
    unsafe {
        acc_f64_neon_imp(
            kc,
            ap.as_ptr(),
            bp.as_ptr(),
            acc.as_flattened_mut().as_mut_ptr(),
        )
    }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: bp points-to len >= kc * NR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias
// kernel-contract: requires target_feature(neon), baseline(aarch64)
#[target_feature(enable = "neon")]
unsafe fn acc_f64_neon_imp(kc: usize, ap: *const f64, bp: *const f64, acc: *mut f64) {
    for h in 0..4 {
        let mut r = [vdupq_n_f64(0.0); MR];
        for (i, ri) in r.iter_mut().enumerate() {
            *ri = vld1q_f64(acc.add(i * NR + h * 2));
        }
        for kk in 0..kc {
            let bv = vld1q_f64(bp.add(kk * NR + h * 2));
            let a = ap.add(kk * MR);
            for (i, ri) in r.iter_mut().enumerate() {
                let av = vdupq_n_f64(*a.add(i));
                *ri = vaddq_f64(vmulq_f64(av, bv), *ri);
            }
        }
        for (i, ri) in r.iter().enumerate() {
            vst1q_f64(acc.add(i * NR + h * 2), *ri);
        }
    }
}

/// NEON f32 streaming-B^T column kernel: two 4-lane halves over the
/// `MR` column accumulators.
pub fn bt_f32_neon(kc: usize, ap: &[f32], brow: &[f32], acc: &mut [f32; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "bt_f32_neon: A panel too short");
    kernel_precondition!(brow.len() >= kc, "bt_f32_neon: B row too short");
    // Safety: lengths asserted above; NEON is baseline on aarch64.
    unsafe { bt_f32_neon_imp(kc, ap.as_ptr(), brow.as_ptr(), acc.as_mut_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: brow points-to len >= kc, noalias
// kernel-contract: acc points-to len >= MR, noalias
// kernel-contract: requires target_feature(neon), baseline(aarch64)
#[target_feature(enable = "neon")]
unsafe fn bt_f32_neon_imp(kc: usize, ap: *const f32, brow: *const f32, acc: *mut f32) {
    let mut r0 = vld1q_f32(acc);
    let mut r1 = vld1q_f32(acc.add(4));
    for kk in 0..kc {
        let a = ap.add(kk * MR);
        let bv = vdupq_n_f32(*brow.add(kk));
        r0 = vaddq_f32(vmulq_f32(vld1q_f32(a), bv), r0);
        r1 = vaddq_f32(vmulq_f32(vld1q_f32(a.add(4)), bv), r1);
    }
    vst1q_f32(acc, r0);
    vst1q_f32(acc.add(4), r1);
}

/// NEON f64 streaming-B^T column kernel: four 2-lane quarters.
pub fn bt_f64_neon(kc: usize, ap: &[f64], brow: &[f64], acc: &mut [f64; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "bt_f64_neon: A panel too short");
    kernel_precondition!(brow.len() >= kc, "bt_f64_neon: B row too short");
    // Safety: lengths asserted above; NEON is baseline on aarch64.
    unsafe { bt_f64_neon_imp(kc, ap.as_ptr(), brow.as_ptr(), acc.as_mut_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: brow points-to len >= kc, noalias
// kernel-contract: acc points-to len >= MR, noalias
// kernel-contract: requires target_feature(neon), baseline(aarch64)
#[target_feature(enable = "neon")]
unsafe fn bt_f64_neon_imp(kc: usize, ap: *const f64, brow: *const f64, acc: *mut f64) {
    let mut r = [vdupq_n_f64(0.0); 4];
    for (q, rq) in r.iter_mut().enumerate() {
        *rq = vld1q_f64(acc.add(q * 2));
    }
    for kk in 0..kc {
        let a = ap.add(kk * MR);
        let bv = vdupq_n_f64(*brow.add(kk));
        for (q, rq) in r.iter_mut().enumerate() {
            *rq = vaddq_f64(vmulq_f64(vld1q_f64(a.add(q * 2)), bv), *rq);
        }
    }
    for (q, rq) in r.iter().enumerate() {
        vst1q_f64(acc.add(q * 2), *rq);
    }
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;

    #[test]
    fn neon_kernels_bitwise_match_scalar() {
        for kc in [0usize, 1, 3, 17] {
            let ap32: Vec<f32> = (0..kc.max(1) * MR)
                .map(|i| (i as f32).sin() * 3.7)
                .collect();
            let bp32: Vec<f32> = (0..kc * NR).map(|i| (i as f32).cos() * 1.3 - 0.4).collect();
            let mut fast = [[0.5f32; NR]; MR];
            let mut want = [[0.5f32; NR]; MR];
            acc_f32_neon(kc, &ap32, &bp32, &mut fast);
            scalar::acc(kc, &ap32, &bp32, &mut want);
            assert_eq!(fast, want, "f32 acc kc={kc}");

            let ap64: Vec<f64> = (0..kc.max(1) * MR)
                .map(|i| (i as f64).sin() * 3.7)
                .collect();
            let bp64: Vec<f64> = (0..kc * NR).map(|i| (i as f64).cos() * 1.3 - 0.4).collect();
            let mut fast = [[0.5f64; NR]; MR];
            let mut want = [[0.5f64; NR]; MR];
            acc_f64_neon(kc, &ap64, &bp64, &mut fast);
            scalar::acc(kc, &ap64, &bp64, &mut want);
            assert_eq!(fast, want, "f64 acc kc={kc}");

            let brow32: Vec<f32> = (0..kc).map(|i| (i as f32 * 0.9).tan()).collect();
            let mut fast = [1.0f32; MR];
            let mut want = [1.0f32; MR];
            bt_f32_neon(kc, &ap32, &brow32, &mut fast);
            scalar::bt(kc, &ap32, &brow32, &mut want);
            assert_eq!(fast, want, "f32 bt kc={kc}");

            let brow64: Vec<f64> = (0..kc).map(|i| (i as f64 * 0.9).tan()).collect();
            let mut fast = [1.0f64; MR];
            let mut want = [1.0f64; MR];
            bt_f64_neon(kc, &ap64, &brow64, &mut fast);
            scalar::bt(kc, &ap64, &brow64, &mut want);
            assert_eq!(fast, want, "f64 bt kc={kc}");
        }
    }
}
