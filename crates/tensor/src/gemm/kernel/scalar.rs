//! Portable reference kernels.
//!
//! These loops define the bit-exactness contract every SIMD backend
//! must reproduce: each C element accumulates along its own unfused
//! multiply-add chain with `kk` ascending ([`crate::gemm::backend`]
//! module docs). LLVM autovectorizes them at the build target's
//! baseline width, which is also why they stay fast enough to be the
//! forced-scalar determinism oracle rather than a naive triple loop.

use crate::scalar::Scalar;

use crate::gemm::{MR, NR};

/// Reference packed-panel accumulate kernel
/// ([`crate::gemm::backend::AccFn`] shape).
///
/// `acc[i][j] += sum_kk ap(kk, i) * bp(kk, j)`; both panels are walked
/// front to back with unit stride (this is what packing buys us).
#[inline]
pub fn acc<T: Scalar>(kc: usize, ap: &[T], bp: &[T], acc: &mut [[T; NR]; MR]) {
    for (a_row, b_row) in ap[..kc * MR]
        .chunks_exact(MR)
        .zip(bp[..kc * NR].chunks_exact(NR))
    {
        for i in 0..MR {
            let ai = a_row[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] = ai.mul_add(b_row[j], row[j]);
            }
        }
    }
}

/// Reference streaming-B^T column kernel
/// ([`crate::gemm::backend::BtFn`] shape).
///
/// `acc[i] += sum_kk ap(kk, i) * brow[kk]` — one output column of an
/// `MR`-row micro-panel against a contiguous B row segment.
#[inline]
pub fn bt<T: Scalar>(kc: usize, ap: &[T], brow: &[T], acc: &mut [T; MR]) {
    for (a_row, &bv) in ap[..kc * MR].chunks_exact(MR).zip(&brow[..kc]) {
        for i in 0..MR {
            acc[i] = a_row[i].mul_add(bv, acc[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_matches_by_hand() {
        // kc = 2, ap(kk,i) = i+1 for kk=0 and 2(i+1) for kk=1,
        // bp(kk,j) = j for kk=0 and 1 for kk=1.
        let kc = 2;
        let mut ap = vec![0.0f32; kc * MR];
        let mut bp = vec![0.0f32; kc * NR];
        for i in 0..MR {
            ap[i] = (i + 1) as f32;
            ap[MR + i] = 2.0 * (i + 1) as f32;
        }
        for j in 0..NR {
            bp[j] = j as f32;
            bp[NR + j] = 1.0;
        }
        let mut out = [[0.0f32; NR]; MR];
        acc(kc, &ap, &bp, &mut out);
        for (i, row) in out.iter().enumerate() {
            for (j, &got) in row.iter().enumerate() {
                let want = (i + 1) as f32 * j as f32 + 2.0 * (i + 1) as f32;
                assert_eq!(got, want, "({i},{j})");
            }
        }
    }

    #[test]
    fn bt_matches_by_hand() {
        let kc = 3;
        let mut ap = vec![0.0f32; kc * MR];
        for kk in 0..kc {
            for i in 0..MR {
                ap[kk * MR + i] = (kk * MR + i) as f32;
            }
        }
        let brow = [1.0f32, -2.0, 0.5];
        let mut out = [0.0f32; MR];
        bt(kc, &ap, &brow, &mut out);
        for (i, &v) in out.iter().enumerate() {
            let want = i as f32 - 2.0 * (MR + i) as f32 + 0.5 * (2 * MR + i) as f32;
            assert_eq!(v, want, "column {i}");
        }
    }

    #[test]
    fn kc_zero_is_noop() {
        let mut a = [[1.0f32; NR]; MR];
        acc(0, &[], &[], &mut a);
        assert!(a.iter().all(|r| r.iter().all(|&v| v == 1.0)));
        let mut col = [2.0f64; MR];
        bt(0, &[], &[], &mut col);
        assert!(col.iter().all(|&v| v == 2.0));
    }
}
