//! Explicit AVX2 and AVX-512 microkernels (x86_64).
//!
//! The paper's QPX kernel broadcasts one A element against a vector of
//! B and accumulates an 8x8 C block in registers; these kernels are
//! the same dataflow in `std::arch` intrinsics. Crucially they use
//! **separate multiply and add** instructions — never `fmadd` — so
//! every lane performs exactly the unfused rounding sequence of
//! [`crate::scalar::Scalar::mul_add`], and results stay bit-identical
//! to the [`super::scalar`] reference (the backend contract in
//! [`crate::gemm::backend`]). That trades the FMA throughput win for
//! determinism across backends; the speedup here comes from register
//! width, not fusion.
//!
//! Each public kernel is a safe wrapper that asserts panel lengths and
//! runtime CPU support (a cached flag check, negligible next to the
//! `MR x NR x kc` FLOP loop) before entering the `#[target_feature]`
//! implementation. This module is inside the workspace's single
//! lint-sanctioned `unsafe` zone (`l7-unsafe-outside-kernel`).

use core::arch::x86_64::*;

use crate::gemm::{MR, NR};

// The register schedules below hardcode the 8x8 micro-tile.
const _: () = assert!(MR == 8 && NR == 8);

/// AVX2 f32 accumulate: one 8-lane ymm per micro-tile row.
pub fn acc_f32_avx2(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "acc_f32_avx2: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "acc_f32_avx2: B panel too short");
    kernel_precondition!(is_x86_feature_detected!("avx2"), "avx2 not available");
    // Safety: lengths and CPU support asserted above; `acc` is a
    // fixed-size 8x8 tile.
    unsafe {
        acc_f32_avx2_imp(
            kc,
            ap.as_ptr(),
            bp.as_ptr(),
            acc.as_flattened_mut().as_mut_ptr(),
        )
    }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: bp points-to len >= kc * NR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias
// kernel-contract: requires target_feature(avx2)
#[target_feature(enable = "avx2")]
unsafe fn acc_f32_avx2_imp(kc: usize, ap: *const f32, bp: *const f32, acc: *mut f32) {
    let mut r = [_mm256_setzero_ps(); MR];
    for (i, ri) in r.iter_mut().enumerate() {
        *ri = _mm256_loadu_ps(acc.add(i * NR));
    }
    for kk in 0..kc {
        let bv = _mm256_loadu_ps(bp.add(kk * NR));
        let a = ap.add(kk * MR);
        for (i, ri) in r.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(i));
            // mul then add, not fmadd: must match the unfused scalar
            // chain `ai * b + row` bit for bit.
            *ri = _mm256_add_ps(_mm256_mul_ps(av, bv), *ri);
        }
    }
    for (i, ri) in r.iter().enumerate() {
        _mm256_storeu_ps(acc.add(i * NR), *ri);
    }
}

/// AVX2 f64 accumulate: the 8 columns split into two 4-lane halves;
/// the half loop is outermost, so each element's `kk` chain is intact.
pub fn acc_f64_avx2(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "acc_f64_avx2: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "acc_f64_avx2: B panel too short");
    kernel_precondition!(is_x86_feature_detected!("avx2"), "avx2 not available");
    // Safety: lengths and CPU support asserted above.
    unsafe {
        acc_f64_avx2_imp(
            kc,
            ap.as_ptr(),
            bp.as_ptr(),
            acc.as_flattened_mut().as_mut_ptr(),
        )
    }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: bp points-to len >= kc * NR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias
// kernel-contract: requires target_feature(avx2)
#[target_feature(enable = "avx2")]
unsafe fn acc_f64_avx2_imp(kc: usize, ap: *const f64, bp: *const f64, acc: *mut f64) {
    for h in 0..2 {
        let mut r = [_mm256_setzero_pd(); MR];
        for (i, ri) in r.iter_mut().enumerate() {
            *ri = _mm256_loadu_pd(acc.add(i * NR + h * 4));
        }
        for kk in 0..kc {
            let bv = _mm256_loadu_pd(bp.add(kk * NR + h * 4));
            let a = ap.add(kk * MR);
            for (i, ri) in r.iter_mut().enumerate() {
                let av = _mm256_set1_pd(*a.add(i));
                *ri = _mm256_add_pd(_mm256_mul_pd(av, bv), *ri);
            }
        }
        for (i, ri) in r.iter().enumerate() {
            _mm256_storeu_pd(acc.add(i * NR + h * 4), *ri);
        }
    }
}

/// AVX-512 f32 accumulate: rows are paired, one 16-lane zmm covering
/// rows `2p` and `2p+1`; the B panel row is duplicated into both
/// 256-bit halves and each half multiplies its own broadcast A value.
pub fn acc_f32_avx512(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "acc_f32_avx512: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "acc_f32_avx512: B panel too short");
    kernel_precondition!(
        is_x86_feature_detected!("avx2")
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512dq"),
        "avx2/avx512f/avx512dq not available"
    );
    // Safety: lengths and CPU support asserted above.
    unsafe {
        acc_f32_avx512_imp(
            kc,
            ap.as_ptr(),
            bp.as_ptr(),
            acc.as_flattened_mut().as_mut_ptr(),
        )
    }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: bp points-to len >= kc * NR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias
// kernel-contract: requires target_feature(avx2, avx512f, avx512dq)
#[target_feature(enable = "avx2,avx512f,avx512dq")]
unsafe fn acc_f32_avx512_imp(kc: usize, ap: *const f32, bp: *const f32, acc: *mut f32) {
    let mut r = [_mm512_setzero_ps(); MR / 2];
    for (p, rp) in r.iter_mut().enumerate() {
        // One zmm spans two consecutive 8-wide rows of the tile.
        *rp = _mm512_loadu_ps(acc.add(p * 2 * NR));
    }
    for kk in 0..kc {
        let b8 = _mm256_loadu_ps(bp.add(kk * NR));
        let bdup = _mm512_broadcast_f32x8(b8);
        let a = ap.add(kk * MR);
        for (p, rp) in r.iter_mut().enumerate() {
            let av = _mm512_insertf32x8::<1>(
                _mm512_castps256_ps512(_mm256_set1_ps(*a.add(2 * p))),
                _mm256_set1_ps(*a.add(2 * p + 1)),
            );
            *rp = _mm512_add_ps(_mm512_mul_ps(av, bdup), *rp);
        }
    }
    for (p, rp) in r.iter().enumerate() {
        _mm512_storeu_ps(acc.add(p * 2 * NR), *rp);
    }
}

/// AVX-512 f64 accumulate: one 8-lane zmm per micro-tile row.
pub fn acc_f64_avx512(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "acc_f64_avx512: A panel too short");
    kernel_precondition!(bp.len() >= kc * NR, "acc_f64_avx512: B panel too short");
    kernel_precondition!(is_x86_feature_detected!("avx512f"), "avx512f not available");
    // Safety: lengths and CPU support asserted above.
    unsafe {
        acc_f64_avx512_imp(
            kc,
            ap.as_ptr(),
            bp.as_ptr(),
            acc.as_flattened_mut().as_mut_ptr(),
        )
    }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: bp points-to len >= kc * NR, noalias
// kernel-contract: acc points-to len >= MR * NR, noalias
// kernel-contract: requires target_feature(avx512f)
#[target_feature(enable = "avx512f")]
unsafe fn acc_f64_avx512_imp(kc: usize, ap: *const f64, bp: *const f64, acc: *mut f64) {
    let mut r = [_mm512_setzero_pd(); MR];
    for (i, ri) in r.iter_mut().enumerate() {
        *ri = _mm512_loadu_pd(acc.add(i * NR));
    }
    for kk in 0..kc {
        let bv = _mm512_loadu_pd(bp.add(kk * NR));
        let a = ap.add(kk * MR);
        for (i, ri) in r.iter_mut().enumerate() {
            let av = _mm512_set1_pd(*a.add(i));
            *ri = _mm512_add_pd(_mm512_mul_pd(av, bv), *ri);
        }
    }
    for (i, ri) in r.iter().enumerate() {
        _mm512_storeu_pd(acc.add(i * NR), *ri);
    }
}

/// AVX2 f32 streaming-B^T column kernel: all `MR` column accumulators
/// in one ymm; A panel columns are contiguous (`kk`-major packing), so
/// each step is one load + one broadcast.
pub fn bt_f32_avx2(kc: usize, ap: &[f32], brow: &[f32], acc: &mut [f32; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "bt_f32_avx2: A panel too short");
    kernel_precondition!(brow.len() >= kc, "bt_f32_avx2: B row too short");
    kernel_precondition!(is_x86_feature_detected!("avx2"), "avx2 not available");
    // Safety: lengths and CPU support asserted above.
    unsafe { bt_f32_avx2_imp(kc, ap.as_ptr(), brow.as_ptr(), acc.as_mut_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: brow points-to len >= kc, noalias
// kernel-contract: acc points-to len >= MR, noalias
// kernel-contract: requires target_feature(avx2)
#[target_feature(enable = "avx2")]
unsafe fn bt_f32_avx2_imp(kc: usize, ap: *const f32, brow: *const f32, acc: *mut f32) {
    let mut r = _mm256_loadu_ps(acc);
    for kk in 0..kc {
        let av = _mm256_loadu_ps(ap.add(kk * MR));
        let bv = _mm256_set1_ps(*brow.add(kk));
        r = _mm256_add_ps(_mm256_mul_ps(av, bv), r);
    }
    _mm256_storeu_ps(acc, r);
}

/// AVX2 f64 streaming-B^T column kernel: two 4-lane halves.
pub fn bt_f64_avx2(kc: usize, ap: &[f64], brow: &[f64], acc: &mut [f64; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "bt_f64_avx2: A panel too short");
    kernel_precondition!(brow.len() >= kc, "bt_f64_avx2: B row too short");
    kernel_precondition!(is_x86_feature_detected!("avx2"), "avx2 not available");
    // Safety: lengths and CPU support asserted above.
    unsafe { bt_f64_avx2_imp(kc, ap.as_ptr(), brow.as_ptr(), acc.as_mut_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: brow points-to len >= kc, noalias
// kernel-contract: acc points-to len >= MR, noalias
// kernel-contract: requires target_feature(avx2)
#[target_feature(enable = "avx2")]
unsafe fn bt_f64_avx2_imp(kc: usize, ap: *const f64, brow: *const f64, acc: *mut f64) {
    let mut r0 = _mm256_loadu_pd(acc);
    let mut r1 = _mm256_loadu_pd(acc.add(4));
    for kk in 0..kc {
        let a = ap.add(kk * MR);
        let bv = _mm256_set1_pd(*brow.add(kk));
        r0 = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(a), bv), r0);
        r1 = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(a.add(4)), bv), r1);
    }
    _mm256_storeu_pd(acc, r0);
    _mm256_storeu_pd(acc.add(4), r1);
}

/// AVX-512 f64 streaming-B^T column kernel: all `MR` accumulators in
/// one zmm. (f32 has no AVX-512 variant: one ymm already covers the
/// eight columns, so the AVX2 kernel is reused by the AVX-512
/// backend.)
pub fn bt_f64_avx512(kc: usize, ap: &[f64], brow: &[f64], acc: &mut [f64; MR]) {
    kernel_precondition!(ap.len() >= kc * MR, "bt_f64_avx512: A panel too short");
    kernel_precondition!(brow.len() >= kc, "bt_f64_avx512: B row too short");
    kernel_precondition!(is_x86_feature_detected!("avx512f"), "avx512f not available");
    // Safety: lengths and CPU support asserted above.
    unsafe { bt_f64_avx512_imp(kc, ap.as_ptr(), brow.as_ptr(), acc.as_mut_ptr()) }
}

// kernel-contract: ap points-to len >= kc * MR, noalias
// kernel-contract: brow points-to len >= kc, noalias
// kernel-contract: acc points-to len >= MR, noalias
// kernel-contract: requires target_feature(avx512f)
#[target_feature(enable = "avx512f")]
unsafe fn bt_f64_avx512_imp(kc: usize, ap: *const f64, brow: *const f64, acc: *mut f64) {
    let mut r = _mm512_loadu_pd(acc);
    for kk in 0..kc {
        let av = _mm512_loadu_pd(ap.add(kk * MR));
        let bv = _mm512_set1_pd(*brow.add(kk));
        r = _mm512_add_pd(_mm512_mul_pd(av, bv), r);
    }
    _mm512_storeu_pd(acc, r);
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;

    fn f32_panels(kc: usize) -> (Vec<f32>, Vec<f32>) {
        // Non-round values so any reassociation or fusion shows up in
        // the low bits.
        let ap = (0..kc * MR).map(|i| (i as f32).sin() * 3.7).collect();
        let bp = (0..kc * NR).map(|i| (i as f32).cos() * 1.3 - 0.4).collect();
        (ap, bp)
    }

    fn f64_panels(kc: usize) -> (Vec<f64>, Vec<f64>) {
        let ap = (0..kc * MR).map(|i| (i as f64).sin() * 3.7).collect();
        let bp = (0..kc * NR).map(|i| (i as f64).cos() * 1.3 - 0.4).collect();
        (ap, bp)
    }

    #[test]
    fn avx2_acc_bitwise_matches_scalar() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        for kc in [0, 1, 3, 17, 64] {
            let (ap, bp) = f32_panels(kc);
            let mut fast = [[0.5f32; NR]; MR];
            let mut want = [[0.5f32; NR]; MR];
            acc_f32_avx2(kc, &ap, &bp, &mut fast);
            scalar::acc(kc, &ap, &bp, &mut want);
            assert_eq!(fast, want, "f32 kc={kc}");

            let (ap, bp) = f64_panels(kc);
            let mut fast = [[0.5f64; NR]; MR];
            let mut want = [[0.5f64; NR]; MR];
            acc_f64_avx2(kc, &ap, &bp, &mut fast);
            scalar::acc(kc, &ap, &bp, &mut want);
            assert_eq!(fast, want, "f64 kc={kc}");
        }
    }

    #[test]
    fn avx512_acc_bitwise_matches_scalar() {
        if !(is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq")) {
            return;
        }
        for kc in [0, 1, 3, 17, 64] {
            let (ap, bp) = f32_panels(kc);
            let mut fast = [[-0.25f32; NR]; MR];
            let mut want = [[-0.25f32; NR]; MR];
            acc_f32_avx512(kc, &ap, &bp, &mut fast);
            scalar::acc(kc, &ap, &bp, &mut want);
            assert_eq!(fast, want, "f32 kc={kc}");

            let (ap, bp) = f64_panels(kc);
            let mut fast = [[-0.25f64; NR]; MR];
            let mut want = [[-0.25f64; NR]; MR];
            acc_f64_avx512(kc, &ap, &bp, &mut fast);
            scalar::acc(kc, &ap, &bp, &mut want);
            assert_eq!(fast, want, "f64 kc={kc}");
        }
    }

    #[test]
    fn bt_kernels_bitwise_match_scalar() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        for kc in [0, 1, 5, 33] {
            let (ap, _) = f32_panels(kc.max(1));
            let brow: Vec<f32> = (0..kc).map(|i| (i as f32 * 0.9).tan()).collect();
            let mut fast = [1.0f32; MR];
            let mut want = [1.0f32; MR];
            bt_f32_avx2(kc, &ap, &brow, &mut fast);
            scalar::bt(kc, &ap, &brow, &mut want);
            assert_eq!(fast, want, "f32 kc={kc}");

            let (ap, _) = f64_panels(kc.max(1));
            let brow: Vec<f64> = (0..kc).map(|i| (i as f64 * 0.9).tan()).collect();
            let mut fast = [1.0f64; MR];
            let mut want = [1.0f64; MR];
            bt_f64_avx2(kc, &ap, &brow, &mut fast);
            scalar::bt(kc, &ap, &brow, &mut want);
            assert_eq!(fast, want, "f64 kc={kc}");
            if is_x86_feature_detected!("avx512f") {
                let mut fast = [1.0f64; MR];
                bt_f64_avx512(kc, &ap, &brow, &mut fast);
                assert_eq!(fast, want, "f64 avx512 kc={kc}");
            }
        }
    }
}
