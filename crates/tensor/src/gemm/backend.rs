//! The compute-backend seam: runtime-dispatched microkernels.
//!
//! The paper's single-node speed comes from a hand-scheduled QPX
//! microkernel (Section V.A.2). Portable Rust reaches part of that via
//! autovectorization, but the baseline `x86-64` target only licenses
//! SSE2 — half (AVX2) or a quarter (AVX-512) of the register width the
//! host actually has. A [`ComputeBackend`] closes that gap: it hands
//! the blocked drivers explicit `std::arch` kernels selected *at
//! runtime* from the detected ISA, so one portable binary runs the
//! fastest kernel the machine supports — the same role the QPX kernel
//! played for BG/Q, behind a seam that later admits other devices.
//!
//! ## The bit-exactness contract
//!
//! Every backend must produce **bit-identical** results to
//! [`ScalarBackend`] for the same logical GEMM. Two properties make
//! that possible:
//!
//! 1. The blocked drivers accumulate each C element along a single
//!    dependency chain — `kk` ascending within a k-block, k-blocks
//!    merged in order — and the chain of one element never mixes with
//!    another's. A backend may therefore vectorize *across* elements
//!    (the `j` lanes of a micro-tile row, or row pairs) freely, as
//!    long as each lane performs the same scalar operations in the
//!    same order.
//! 2. [`crate::scalar::Scalar::mul_add`] is deliberately **unfused**
//!    (`a * b + c` as two roundings). SIMD kernels must use separate
//!    multiply and add intrinsics — never `fmadd` — to match it.
//!
//! The contract is what keeps the determinism gates (byte-identical
//! telemetry, the protocheck race detector, bitwise trained weights)
//! valid under every backend, and it is enforced by the parity tests
//! in `tests/backend_parity.rs`.
//!
//! ## Selection
//!
//! [`BackendConfig`] is a validating builder mirroring `HfConfig`:
//! `auto()` detection, forced selection, and a `PDNN_BACKEND`
//! environment override (`scalar | avx2 | avx512 | neon | auto`).
//! [`default_backend`] resolves once per process and is what
//! [`super::GemmContext`] constructors embed; tests that compare
//! backends in-process use [`super::GemmContext::with_backend`].

use std::sync::OnceLock;

use super::kernel;
use super::{MR, NR};

/// Packed-panel accumulate kernel: add the `kc`-deep product of one
/// `MR`-row A micro-panel (`kk`-major, first `kc * MR` elements of
/// `ap`) and one `NR`-column B micro-panel (first `kc * NR` elements
/// of `bp`) into `acc`.
///
/// Contract: `acc[i][j] += sum_kk ap(kk, i) * bp(kk, j)`, evaluated
/// per element as an unfused multiply-add chain with `kk` ascending —
/// the exact chain [`kernel::scalar::acc`] runs.
pub type AccFn<T> = fn(kc: usize, ap: &[T], bp: &[T], acc: &mut [[T; NR]; MR]);

/// Streaming-B^T column kernel for the `gemm_prepacked_a_bt` driver:
/// add the `kc`-deep product of one A micro-panel and a `kc`-long
/// contiguous B-row segment into the `MR` column accumulators.
///
/// Contract: `acc[i] += sum_kk ap(kk, i) * brow[kk]`, per element an
/// unfused multiply-add chain with `kk` ascending — the exact chain
/// [`kernel::scalar::bt`] runs.
pub type BtFn<T> = fn(kc: usize, ap: &[T], brow: &[T], acc: &mut [T; MR]);

/// Name of the environment variable that overrides backend selection.
pub const BACKEND_ENV: &str = "PDNN_BACKEND";

/// Instruction-set architectures a backend can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Isa {
    /// Portable reference kernels (autovectorized by LLVM at the
    /// build target's baseline, SSE2 on `x86-64`).
    Scalar,
    /// 256-bit AVX2 kernels (x86_64).
    Avx2,
    /// 512-bit AVX-512F/DQ kernels (x86_64).
    Avx512,
    /// 128-bit NEON kernels (aarch64).
    Neon,
}

impl Isa {
    /// Every ISA the workspace knows about, scalar first.
    pub const ALL: [Isa; 4] = [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon];

    /// Stable lowercase name, accepted back by [`parse_selection`].
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Is this ISA usable on the running machine?
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512dq")
                    && is_x86_feature_detected!("avx2")
            }
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => true, // NEON is baseline on aarch64
            #[allow(unreachable_patterns)] // foreign-arch ISAs
            _ => false,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The *fastest* ISA the running machine supports — not the widest.
///
/// On x86_64 this prefers AVX2 over AVX-512 even when both are
/// present: measured GEMM throughput on our kernels is higher under
/// AVX2 (BENCH_5: 29.0 vs 18.6 GFLOPS forward), consistent with the
/// well-known downclocking and port-width penalties of 512-bit ops on
/// many cores. `PDNN_BACKEND=avx512` still forces the wider kernels
/// for machines where they do win.
pub fn detect_best() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if Isa::Avx2.available() {
            return Isa::Avx2;
        }
        if Isa::Avx512.available() {
            return Isa::Avx512;
        }
    }
    #[cfg(target_arch = "aarch64")]
    if Isa::Neon.available() {
        return Isa::Neon;
    }
    Isa::Scalar
}

/// All ISAs usable on the running machine, scalar first.
pub fn available_isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.available()).collect()
}

/// One set of microkernels for the blocked GEMM drivers.
///
/// Implementations are stateless singletons handed out as `&'static`
/// references by [`backend_for`]; a [`super::GemmContext`] carries one
/// and the drivers fetch per-type kernel function pointers through
/// [`crate::scalar::Scalar::acc_kernel`] /
/// [`crate::scalar::Scalar::bt_kernel`] once per call. Every kernel a
/// backend returns must honor the module-level bit-exactness contract.
pub trait ComputeBackend: Send + Sync + std::fmt::Debug {
    /// Which ISA the kernels target.
    fn isa(&self) -> Isa;
    /// f32 packed-panel accumulate kernel.
    fn acc_f32(&self) -> AccFn<f32>;
    /// f64 packed-panel accumulate kernel.
    fn acc_f64(&self) -> AccFn<f64>;
    /// f32 streaming-B^T column kernel.
    fn bt_f32(&self) -> BtFn<f32>;
    /// f64 streaming-B^T column kernel.
    fn bt_f64(&self) -> BtFn<f64>;
}

/// Forced-scalar reference backend (always available).
#[derive(Debug)]
struct ScalarBackend;

impl ComputeBackend for ScalarBackend {
    fn isa(&self) -> Isa {
        Isa::Scalar
    }
    fn acc_f32(&self) -> AccFn<f32> {
        kernel::scalar::acc::<f32>
    }
    fn acc_f64(&self) -> AccFn<f64> {
        kernel::scalar::acc::<f64>
    }
    fn bt_f32(&self) -> BtFn<f32> {
        kernel::scalar::bt::<f32>
    }
    fn bt_f64(&self) -> BtFn<f64> {
        kernel::scalar::bt::<f64>
    }
}

#[cfg(target_arch = "x86_64")]
#[derive(Debug)]
struct Avx2Backend;

#[cfg(target_arch = "x86_64")]
impl ComputeBackend for Avx2Backend {
    fn isa(&self) -> Isa {
        Isa::Avx2
    }
    fn acc_f32(&self) -> AccFn<f32> {
        kernel::x86::acc_f32_avx2
    }
    fn acc_f64(&self) -> AccFn<f64> {
        kernel::x86::acc_f64_avx2
    }
    fn bt_f32(&self) -> BtFn<f32> {
        kernel::x86::bt_f32_avx2
    }
    fn bt_f64(&self) -> BtFn<f64> {
        kernel::x86::bt_f64_avx2
    }
}

#[cfg(target_arch = "x86_64")]
#[derive(Debug)]
struct Avx512Backend;

#[cfg(target_arch = "x86_64")]
impl ComputeBackend for Avx512Backend {
    fn isa(&self) -> Isa {
        Isa::Avx512
    }
    fn acc_f32(&self) -> AccFn<f32> {
        kernel::x86::acc_f32_avx512
    }
    fn acc_f64(&self) -> AccFn<f64> {
        kernel::x86::acc_f64_avx512
    }
    fn bt_f32(&self) -> BtFn<f32> {
        // One ymm covers all MR=8 column accumulators; the AVX2
        // kernel is already the right shape (and chain).
        kernel::x86::bt_f32_avx2
    }
    fn bt_f64(&self) -> BtFn<f64> {
        kernel::x86::bt_f64_avx512
    }
}

#[cfg(target_arch = "aarch64")]
#[derive(Debug)]
struct NeonBackend;

#[cfg(target_arch = "aarch64")]
impl ComputeBackend for NeonBackend {
    fn isa(&self) -> Isa {
        Isa::Neon
    }
    fn acc_f32(&self) -> AccFn<f32> {
        kernel::neon::acc_f32_neon
    }
    fn acc_f64(&self) -> AccFn<f64> {
        kernel::neon::acc_f64_neon
    }
    fn bt_f32(&self) -> BtFn<f32> {
        kernel::neon::bt_f32_neon
    }
    fn bt_f64(&self) -> BtFn<f64> {
        kernel::neon::bt_f64_neon
    }
}

static SCALAR: ScalarBackend = ScalarBackend;
#[cfg(target_arch = "x86_64")]
static AVX2: Avx2Backend = Avx2Backend;
#[cfg(target_arch = "x86_64")]
static AVX512: Avx512Backend = Avx512Backend;
#[cfg(target_arch = "aarch64")]
static NEON: NeonBackend = NeonBackend;

/// The forced-scalar reference backend.
pub fn scalar_backend() -> &'static dyn ComputeBackend {
    &SCALAR
}

/// Backend for `isa`, or an error if the running machine lacks it.
pub fn backend_for(isa: Isa) -> Result<&'static dyn ComputeBackend, BackendError> {
    if !isa.available() {
        return Err(BackendError::Unavailable(isa));
    }
    Ok(match isa {
        Isa::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => &AVX2,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => &AVX512,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => &NEON,
        #[allow(unreachable_patterns)] // foreign-arch ISAs fail available() above
        _ => unreachable!("ISA {isa} passed the availability check on an arch without it"),
    })
}

/// Why a backend selection could not be honored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The requested ISA is not available on the running machine.
    Unavailable(Isa),
    /// The selection string is not a known ISA name or `auto`.
    UnknownName(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unavailable(isa) => {
                write!(
                    f,
                    "compute backend `{isa}` is not available on this machine"
                )
            }
            BackendError::UnknownName(name) => write!(
                f,
                "unknown compute backend `{name}` (use scalar|avx2|avx512|neon|auto)"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Parse a selection string: `auto` means detect (`Ok(None)`), an ISA
/// name forces that ISA, anything else is an error.
pub fn parse_selection(s: &str) -> Result<Option<Isa>, BackendError> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    Isa::ALL
        .into_iter()
        .find(|isa| s.eq_ignore_ascii_case(isa.name()))
        .map(Some)
        .ok_or_else(|| BackendError::UnknownName(s.to_string()))
}

/// Validated backend selection policy.
///
/// Mirrors `HfConfig`: construct via [`BackendConfig::auto`] or the
/// [`BackendConfigBuilder`] (whose `build` rejects forcing an ISA the
/// machine lacks), then [`BackendConfig::resolve`] to a backend. By
/// default the `PDNN_BACKEND` environment variable overrides the
/// built selection at resolve time, so a whole process tree — tests
/// included — can be switched without touching call sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendConfig {
    /// `None` = auto-detect the widest available ISA.
    selection: Option<Isa>,
    /// Honor `PDNN_BACKEND` at resolve time.
    env_override: bool,
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self::auto()
    }
}

impl BackendConfig {
    /// Auto-detect, with the environment override honored.
    pub fn auto() -> Self {
        BackendConfig {
            selection: None,
            env_override: true,
        }
    }

    /// Fresh builder (auto selection, env override on).
    pub fn builder() -> BackendConfigBuilder {
        Self::auto().into_builder()
    }

    /// Builder seeded from this config.
    pub fn into_builder(self) -> BackendConfigBuilder {
        BackendConfigBuilder {
            selection: self.selection,
            by_name: None,
            env_override: self.env_override,
        }
    }

    /// The built selection (`None` = auto-detect), before any
    /// environment override.
    pub fn selection(&self) -> Option<Isa> {
        self.selection
    }

    /// Resolve to a backend: environment override (if enabled and
    /// set), else the built selection, else the detected best.
    pub fn resolve(&self) -> Result<&'static dyn ComputeBackend, BackendError> {
        let mut selection = self.selection;
        if self.env_override {
            if let Ok(v) = std::env::var(BACKEND_ENV) {
                if !v.trim().is_empty() {
                    selection = parse_selection(&v)?;
                }
            }
        }
        backend_for(selection.unwrap_or_else(detect_best))
    }
}

/// Builder for [`BackendConfig`]; `build` validates the selection.
#[derive(Clone, Debug)]
pub struct BackendConfigBuilder {
    selection: Option<Isa>,
    by_name: Option<String>,
    env_override: bool,
}

impl BackendConfigBuilder {
    /// Auto-detect the widest available ISA (the default).
    pub fn auto(mut self) -> Self {
        self.selection = None;
        self.by_name = None;
        self
    }

    /// Force a specific ISA.
    pub fn force(mut self, isa: Isa) -> Self {
        self.selection = Some(isa);
        self.by_name = None;
        self
    }

    /// Select by name (`scalar|avx2|avx512|neon|auto`), e.g. from a
    /// command-line flag; parsing is deferred to [`Self::build`].
    pub fn select_name(mut self, name: &str) -> Self {
        self.by_name = Some(name.to_string());
        self
    }

    /// Honor or ignore the `PDNN_BACKEND` environment variable at
    /// resolve time (on by default).
    pub fn env_override(mut self, on: bool) -> Self {
        self.env_override = on;
        self
    }

    /// Validate and build: a name must parse, and a forced ISA must be
    /// available on the running machine.
    pub fn build(self) -> Result<BackendConfig, BackendError> {
        let selection = match &self.by_name {
            Some(name) => parse_selection(name)?,
            None => self.selection,
        };
        if let Some(isa) = selection {
            if !isa.available() {
                return Err(BackendError::Unavailable(isa));
            }
        }
        Ok(BackendConfig {
            selection,
            env_override: self.env_override,
        })
    }
}

/// The process-wide default backend: `BackendConfig::auto()` resolved
/// once (so `PDNN_BACKEND` is read once) and cached.
///
/// This is what [`super::GemmContext::sequential`] and
/// [`super::GemmContext::threaded`] embed, which is how the selected
/// backend reaches every training call site without threading a new
/// parameter through `pdnn-dnn`/`pdnn-core`.
///
/// # Panics
/// If `PDNN_BACKEND` names an unknown or unavailable backend — a
/// misconfigured environment must fail loudly, not silently fall back
/// to a different kernel set.
pub fn default_backend() -> &'static dyn ComputeBackend {
    static DEFAULT: OnceLock<&'static dyn ComputeBackend> = OnceLock::new();
    *DEFAULT.get_or_init(|| match BackendConfig::auto().resolve() {
        Ok(backend) => backend,
        // pdnn-lint: allow(l3-no-unwrap): env misconfiguration is a startup contract violation; silently substituting a different kernel set would invalidate determinism comparisons
        Err(e) => panic!("{BACKEND_ENV}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(Isa::Scalar.available());
        assert_eq!(scalar_backend().isa(), Isa::Scalar);
        assert!(available_isas().contains(&Isa::Scalar));
    }

    #[test]
    fn detect_best_is_available() {
        let best = detect_best();
        assert!(best.available());
        assert_eq!(backend_for(best).map(|b| b.isa()), Ok(best));
    }

    #[test]
    fn auto_dispatch_prefers_avx2_over_avx512() {
        // BENCH_5 regression: auto-detection picked AVX-512 (18.6
        // GFLOPS forward) over AVX2 (29.0). Auto must resolve to AVX2
        // whenever it is available, even on AVX-512 machines; AVX-512
        // stays reachable only by explicit selection.
        if Isa::Avx2.available() {
            assert_eq!(detect_best(), Isa::Avx2);
            let cfg = BackendConfig::builder()
                .auto()
                .env_override(false)
                .build()
                .expect("auto must build");
            assert_eq!(cfg.resolve().map(|b| b.isa()), Ok(Isa::Avx2));
        } else {
            // Without AVX2 the preference question doesn't arise; auto
            // must still land on something available.
            assert!(detect_best().available());
        }
    }

    #[test]
    fn names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(parse_selection(isa.name()), Ok(Some(isa)));
        }
        assert_eq!(parse_selection("AUTO"), Ok(None));
        assert_eq!(parse_selection(" avx2 "), Ok(Some(Isa::Avx2)));
        assert!(matches!(
            parse_selection("qpx"),
            Err(BackendError::UnknownName(_))
        ));
    }

    #[test]
    fn builder_validates_availability() {
        // Scalar can always be forced.
        let cfg = BackendConfig::builder()
            .force(Isa::Scalar)
            .env_override(false)
            .build()
            .expect("scalar must build");
        assert_eq!(cfg.selection(), Some(Isa::Scalar));
        assert_eq!(cfg.resolve().map(|b| b.isa()), Ok(Isa::Scalar));

        // A foreign-arch ISA must be rejected at build time.
        let foreign = if cfg!(target_arch = "x86_64") {
            Isa::Neon
        } else {
            Isa::Avx2
        };
        assert_eq!(
            BackendConfig::builder().force(foreign).build(),
            Err(BackendError::Unavailable(foreign))
        );
    }

    #[test]
    fn builder_parses_names_at_build_time() {
        let cfg = BackendConfig::builder()
            .select_name("scalar")
            .env_override(false)
            .build()
            .expect("scalar by name must build");
        assert_eq!(cfg.selection(), Some(Isa::Scalar));
        assert_eq!(
            BackendConfig::builder().select_name("qpx").build(),
            Err(BackendError::UnknownName("qpx".into()))
        );
        let auto = BackendConfig::builder()
            .select_name("auto")
            .env_override(false)
            .build()
            .expect("auto by name must build");
        assert_eq!(auto.selection(), None);
        assert_eq!(auto.resolve().map(|b| b.isa()), Ok(detect_best()));
    }

    #[test]
    fn default_backend_is_consistent() {
        // Whatever the environment says, the cached default must be
        // one of the available ISAs and stable across calls.
        let a = default_backend();
        let b = default_backend();
        assert!(std::ptr::eq(a, b));
        assert!(a.isa().available());
    }

    #[test]
    fn every_available_backend_hands_out_kernels() {
        for isa in available_isas() {
            let backend = backend_for(isa).expect("listed as available");
            assert_eq!(backend.isa(), isa);
            // Smoke: run each kernel on a tiny panel pair and compare
            // against the scalar reference (full parity coverage lives
            // in tests/backend_parity.rs).
            let kc = 3;
            let ap: Vec<f32> = (0..kc * MR).map(|i| i as f32 * 0.25 - 1.0).collect();
            let bp: Vec<f32> = (0..kc * NR).map(|i| 2.0 - i as f32 * 0.125).collect();
            let mut acc = [[0.0f32; NR]; MR];
            let mut want = [[0.0f32; NR]; MR];
            backend.acc_f32()(kc, &ap, &bp, &mut acc);
            scalar_backend().acc_f32()(kc, &ap, &bp, &mut want);
            assert_eq!(acc, want, "acc_f32 parity for {isa}");

            let brow: Vec<f32> = (0..kc).map(|i| 0.5 + i as f32).collect();
            let mut col = [0.0f32; MR];
            let mut col_want = [0.0f32; MR];
            backend.bt_f32()(kc, &ap, &brow, &mut col);
            scalar_backend().bt_f32()(kc, &ap, &brow, &mut col_want);
            assert_eq!(col, col_want, "bt_f32 parity for {isa}");
        }
    }
}
