//! The `GemmOp` descriptor: one entry point for every product form.
//!
//! The free-function surface this replaces had grown six entries
//! (`gemm`, `matmul`, `gemm_naive`, and the four `gemm_prepacked*`
//! variants), each a different argument order over the same blocked
//! driver family. [`GemmOp`] names the operands once — plain matrix,
//! prepacked panel set, or streamed row-major `B^T` slice — scales
//! with [`GemmOp::alpha`]/[`GemmOp::beta`], and executes through the
//! context's [`crate::gemm::backend::ComputeBackend`] with
//! [`GemmOp::run`]. Operand combinations that have no driver (a plain
//! left matrix against a streamed `B^T`) are unrepresentable: the only
//! constructor taking a row slice also takes a [`PackedA`].
//!
//! ```
//! use pdnn_tensor::{Matrix, gemm::{GemmContext, GemmOp, Trans}};
//!
//! let a: Matrix<f32> = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
//! let b: Matrix<f32> = Matrix::from_fn(3, 2, |r, c| (r * c) as f32);
//! let mut c: Matrix<f32> = Matrix::zeros(2, 2);
//! GemmOp::ab(&a, Trans::N, &b, Trans::N).run(&GemmContext::sequential(), &mut c);
//! assert_eq!(c[(1, 1)], 1.0 * 0.0 + 2.0 * 1.0 + 3.0 * 2.0);
//! ```

use crate::matrix::Matrix;
use crate::scalar::Scalar;

use super::prepacked::{prepacked_a_bt_impl, prepacked_a_impl, prepacked_ab_impl, prepacked_impl};
use super::{gemm_impl, naive, GemmContext, PackedA, PackedB, Trans};

/// Left operand of a [`GemmOp`].
#[derive(Clone, Copy, Debug)]
enum OpA<'a, T: Scalar> {
    /// `op(A)` from a plain matrix.
    Mat(&'a Matrix<T>, Trans),
    /// A prepacked left operand.
    Packed(&'a PackedA<T>),
}

/// Right operand of a [`GemmOp`].
#[derive(Clone, Copy, Debug)]
enum OpB<'a, T: Scalar> {
    /// `op(B)` from a plain matrix.
    Mat(&'a Matrix<T>, Trans),
    /// A prepacked right operand.
    Packed(&'a PackedB<T>),
    /// `B^T` streamed in place from an `n x k` row-major slice.
    RowsT(&'a [T]),
}

/// A described product `C = alpha * op(A) * op(B) + beta * C`, built
/// from named operands and executed on a [`GemmContext`].
///
/// `alpha` defaults to one and `beta` to zero (overwrite, NaN-safe).
#[derive(Clone, Copy, Debug)]
pub struct GemmOp<'a, T: Scalar> {
    a: OpA<'a, T>,
    b: OpB<'a, T>,
    alpha: T,
    beta: T,
}

impl<'a, T: Scalar> GemmOp<'a, T> {
    fn new(a: OpA<'a, T>, b: OpB<'a, T>) -> Self {
        GemmOp {
            a,
            b,
            alpha: T::ONE,
            beta: T::ZERO,
        }
    }

    /// Plain two-matrix product `op(A) * op(B)`.
    pub fn ab(a: &'a Matrix<T>, ta: Trans, b: &'a Matrix<T>, tb: Trans) -> Self {
        Self::new(OpA::Mat(a, ta), OpB::Mat(b, tb))
    }

    /// `op(A) * B_packed` — the training forward/backward hot path,
    /// where the weights are packed once per step.
    pub fn packed_b(a: &'a Matrix<T>, ta: Trans, b: &'a PackedB<T>) -> Self {
        Self::new(OpA::Mat(a, ta), OpB::Packed(b))
    }

    /// `A_packed * op(B)` — the CG loop's fixed-activations side.
    pub fn packed_a(a: &'a PackedA<T>, b: &'a Matrix<T>, tb: Trans) -> Self {
        Self::new(OpA::Packed(a), OpB::Mat(b, tb))
    }

    /// `A_packed * B_packed` — both operands prepacked; nothing is
    /// packed or allocated inside the multiply.
    pub fn packed_ab(a: &'a PackedA<T>, b: &'a PackedB<T>) -> Self {
        Self::new(OpA::Packed(a), OpB::Packed(b))
    }

    /// `A_packed * B^T` with `B` an `n x k` row-major slice streamed
    /// in place (no packing of the right operand at all) — wins when
    /// `op(A)` is short; see the prepacked module docs.
    pub fn packed_a_bt(a: &'a PackedA<T>, b_rows: &'a [T]) -> Self {
        Self::new(OpA::Packed(a), OpB::RowsT(b_rows))
    }

    /// Set the product scale (default one).
    pub fn alpha(mut self, alpha: T) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the existing-C scale (default zero = overwrite, NaN-safe).
    pub fn beta(mut self, beta: T) -> Self {
        self.beta = beta;
        self
    }

    /// Execute on `ctx`, dispatching to the driver matching the
    /// operand forms; the microkernels come from `ctx`'s backend.
    ///
    /// # Panics
    /// On shape mismatch between the operands and `c` (each driver's
    /// shape contract is unchanged from its free-function days).
    pub fn run(self, ctx: &GemmContext, c: &mut Matrix<T>) {
        let (alpha, beta) = (self.alpha, self.beta);
        match (self.a, self.b) {
            (OpA::Mat(a, ta), OpB::Mat(b, tb)) => gemm_impl(ctx, ta, tb, alpha, a, b, beta, c),
            (OpA::Mat(a, ta), OpB::Packed(b)) => prepacked_impl(ctx, ta, alpha, a, b, beta, c),
            (OpA::Packed(a), OpB::Mat(b, tb)) => prepacked_a_impl(ctx, alpha, a, tb, b, beta, c),
            (OpA::Packed(a), OpB::Packed(b)) => prepacked_ab_impl(ctx, alpha, a, b, beta, c),
            (OpA::Packed(a), OpB::RowsT(b_rows)) => {
                prepacked_a_bt_impl(ctx, alpha, a, b_rows, beta, c)
            }
            (OpA::Mat(..), OpB::RowsT(..)) => {
                unreachable!("no constructor builds a plain-A x streamed-B^T op")
            }
        }
    }

    /// Execute via the naive triple-loop reference instead of the
    /// blocked driver — the correctness oracle for tests and the
    /// "untuned library" baseline in benches.
    ///
    /// # Panics
    /// If either operand is prepacked (the reference reads plain
    /// matrices only), or on shape mismatch.
    pub fn run_reference(self, c: &mut Matrix<T>) {
        match (self.a, self.b) {
            (OpA::Mat(a, ta), OpB::Mat(b, tb)) => {
                naive::reference(ta, tb, self.alpha, a, b, self.beta, c)
            }
            // pdnn-lint: allow(l3-no-unwrap): API misuse guard — the reference path is defined for plain matrices only, and silently falling back to the blocked driver would defeat its oracle role
            _ => panic!("GemmOp::run_reference requires plain matrix operands"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{scalar_backend, Blocking};
    use pdnn_util::Prng;

    fn rand(r: usize, c: usize, seed: u64) -> Matrix<f32> {
        let mut rng = Prng::new(seed);
        Matrix::random_normal(r, c, 1.0, &mut rng)
    }

    #[test]
    fn ab_matches_driver_bitwise() {
        let ctx = GemmContext::sequential();
        let a = rand(17, 23, 1);
        let b = rand(23, 9, 2);
        let c0 = rand(17, 9, 3);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm_impl(&ctx, Trans::N, Trans::N, 1.5f32, &a, &b, -0.5, &mut c1);
        GemmOp::ab(&a, Trans::N, &b, Trans::N)
            .alpha(1.5)
            .beta(-0.5)
            .run(&ctx, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn default_alpha_beta_overwrite() {
        let ctx = GemmContext::sequential();
        let a: Matrix<f32> = Matrix::eye(3);
        let b = rand(3, 4, 4);
        // beta defaults to 0: NaN-seeded C must be overwritten.
        let mut c = Matrix::filled(3, 4, f32::NAN);
        GemmOp::ab(&a, Trans::N, &b, Trans::N).run(&ctx, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn every_packed_form_matches_plain_bitwise() {
        let ctx = GemmContext::sequential();
        let (m, k, n) = (21, 33, 17);
        let a = rand(m, k, 5);
        let b = rand(n, k, 6); // used transposed: op(B) = B^T is k x n
        let pa = PackedA::new(&a, Trans::N, ctx.blocking());
        let pb = PackedB::new(&b, Trans::T, ctx.blocking());
        let c0 = rand(m, n, 7);

        let mut want = c0.clone();
        gemm_impl(&ctx, Trans::N, Trans::T, 0.5f32, &a, &b, 2.0, &mut want);

        let forms: [(&str, GemmOp<'_, f32>); 4] = [
            ("packed_b", GemmOp::packed_b(&a, Trans::N, &pb)),
            ("packed_a", GemmOp::packed_a(&pa, &b, Trans::T)),
            ("packed_ab", GemmOp::packed_ab(&pa, &pb)),
            ("packed_a_bt", GemmOp::packed_a_bt(&pa, b.as_slice())),
        ];
        for (label, op) in forms {
            let mut c = c0.clone();
            op.alpha(0.5).beta(2.0).run(&ctx, &mut c);
            assert_eq!(c, want, "{label}");
        }
    }

    #[test]
    fn run_reference_is_the_naive_oracle() {
        let a = rand(9, 7, 8);
        let b = rand(9, 13, 9); // used transposed
        let mut c1: Matrix<f32> = Matrix::zeros(7, 13);
        let mut c2 = c1.clone();
        naive::reference(Trans::T, Trans::N, 1.0f32, &a, &b, 0.0, &mut c1);
        GemmOp::ab(&a, Trans::T, &b, Trans::N).run_reference(&mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "plain matrix operands")]
    fn run_reference_rejects_packed_operands() {
        let a = rand(8, 8, 10);
        let pa = PackedA::new(&a, Trans::N, Blocking::default());
        let mut c: Matrix<f32> = Matrix::zeros(8, 8);
        GemmOp::packed_a_bt(&pa, a.as_slice()).run_reference(&mut c);
    }

    #[test]
    fn respects_context_backend() {
        // Forced-scalar and default-backend contexts must agree
        // bitwise (the backend contract).
        let a = rand(40, 31, 11);
        let b = rand(31, 26, 12);
        let mut c1: Matrix<f32> = Matrix::zeros(40, 26);
        let mut c2 = c1.clone();
        GemmOp::ab(&a, Trans::N, &b, Trans::N).run(
            &GemmContext::sequential().with_backend(scalar_backend()),
            &mut c1,
        );
        GemmOp::ab(&a, Trans::N, &b, Trans::N).run(&GemmContext::sequential(), &mut c2);
        assert_eq!(c1, c2);
    }
}
