//! # pdnn-tensor — dense kernels for DNN training
//!
//! The compute substrate of the workspace: a row-major [`Matrix`],
//! level-1 vector kernels ([`blas1`]), and a blocked, packed,
//! multi-threaded [`gemm`] whose structure mirrors the tuned SGEMM the
//! paper built for Blue Gene/Q (Section V.A): register-blocked 8x8
//! microkernel, stride-one packed panels, MC/KC/NC cache blocking, and
//! thread-level parallelism over disjoint C stripes.
//!
//! Single precision (`f32`) is the workhorse type — the paper notes
//! the BG/Q kernel was specifically extended for single-precision
//! arithmetic because DNN training is SGEMM-bound — but every kernel
//! is generic over [`Scalar`] so f64 comparisons are one type
//! parameter away.
//!
//! Products are described by a [`GemmOp`] (plain, prepacked, or
//! streamed-`B^T` operands) and executed on a [`GemmContext`], whose
//! [`ComputeBackend`] supplies runtime-dispatched `std::arch`
//! microkernels (AVX2/AVX-512/NEON) that are bit-identical to the
//! forced-scalar reference — see the [`gemm::backend`] module docs for
//! the contract.
//!
//! ```
//! use pdnn_tensor::{Matrix, gemm::{GemmContext, GemmOp, Trans}};
//!
//! let a: Matrix<f32> = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
//! let b: Matrix<f32> = Matrix::from_fn(3, 2, |r, c| (r * c) as f32);
//! let mut c: Matrix<f32> = Matrix::zeros(2, 2);
//! GemmOp::ab(&a, Trans::N, &b, Trans::N).run(&GemmContext::sequential(), &mut c);
//! assert_eq!(c[(1, 1)], 1.0 * 0.0 + 2.0 * 1.0 + 3.0 * 2.0);
//! ```

pub mod blas1;
pub mod gemm;
pub mod matrix;
pub mod scalar;
pub mod workspace;

pub use gemm::{
    available_isas, backend_for, default_backend, detect_best, scalar_backend, BackendConfig,
    BackendConfigBuilder, BackendError, ComputeBackend, GemmContext, GemmOp, Isa, PackedA, PackedB,
    Trans, BACKEND_ENV,
};
#[allow(deprecated)]
pub use gemm::{
    gemm as gemm_into, gemm_prepacked, gemm_prepacked_a, gemm_prepacked_a_bt, gemm_prepacked_ab,
    matmul,
};
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use workspace::{Workspace, WorkspaceStats};
