//! Dense row-major matrix.
//!
//! `Matrix<T>` is the storage type used throughout the workspace:
//! activations are `[frames x units]`, weights `[out x in]`. Row-major
//! layout means a batch of frames is a contiguous stack of feature
//! rows, which is what the packing routines in [`crate::gemm`] expect.

use crate::scalar::Scalar;
use pdnn_util::Prng;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `rows x cols` elements.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T: Scalar = f32> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Identity-like matrix (ones on the main diagonal).
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { T::ONE } else { T::ZERO })
    }

    /// Matrix with i.i.d. `N(0, stddev^2)` entries from `rng`.
    pub fn random_normal(rows: usize, cols: usize, stddev: f64, rng: &mut Prng) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(T::from_f64(rng.normal() * stddev));
        }
        Matrix { rows, cols, data }
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut Prng) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(T::from_f64(rng.range(lo, hi)));
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A new matrix holding rows `r0..r1` (half-open), copied.
    pub fn rows_copy(&self, r0: usize, r1: usize) -> Matrix<T> {
        assert!(r0 <= r1 && r1 <= self.rows, "rows_copy range {r0}..{r1}");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Borrow rows `r0..r1` as one contiguous slice (row-major).
    pub fn rows_slice(&self, r0: usize, r1: usize) -> &[T] {
        assert!(r0 <= r1 && r1 <= self.rows, "rows_slice range {r0}..{r1}");
        &self.data[r0 * self.cols..r1 * self.cols]
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// New matrix with `f` applied elementwise.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `self += other`, elementwise.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other`, elementwise.
    pub fn axpy(&mut self, alpha: T, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = alpha.mul_add(b, *a);
        }
    }

    /// Scale every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Elementwise (Hadamard) product into self.
    pub fn hadamard_assign(&mut self, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Add `bias[c]` to every element of column `c` (row-vector broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[T]) {
        assert_eq!(bias.len(), self.cols, "bias length != cols");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Sum over rows: returns a length-`cols` vector of column sums.
    pub fn column_sums(&self) -> Vec<T> {
        let mut out = vec![T::ZERO; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum over rows into a caller-provided buffer (allocation-free
    /// [`Self::column_sums`]; identical accumulation order, so results
    /// are bitwise equal).
    pub fn column_sums_into(&self, out: &mut [T]) {
        assert_eq!(out.len(), self.cols, "column_sums_into: out length != cols");
        out.fill(T::ZERO);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
    }

    /// Index of the largest element in each row (ties -> lowest index).
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm, accumulated in `f64`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| {
                let x = v.to_f64();
                x * x
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m: Matrix<f32> = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _: Matrix<f32> = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let m: Matrix<f64> = Matrix::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Prng::new(1);
        let m: Matrix<f32> = Matrix::random_normal(5, 7, 1.0, &mut rng);
        let tt = m.transposed().transposed();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m: Matrix<f32> = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn add_axpy_scale() {
        let a: Matrix<f32> = Matrix::filled(2, 2, 1.0);
        let mut b: Matrix<f32> = Matrix::filled(2, 2, 2.0);
        b.add_assign(&a);
        assert_eq!(b[(0, 0)], 3.0);
        b.axpy(0.5, &a);
        assert_eq!(b[(1, 1)], 3.5);
        b.scale(2.0);
        assert_eq!(b[(0, 1)], 7.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_shape_checked() {
        let a: Matrix<f32> = Matrix::zeros(2, 2);
        let mut b: Matrix<f32> = Matrix::zeros(2, 3);
        b.add_assign(&a);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m: Matrix<f32> = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m[(2, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        let sums = m.column_sums();
        assert_eq!(sums, vec![3.0, 6.0]);
    }

    #[test]
    fn row_argmax_breaks_ties_low() {
        let m: Matrix<f32> = Matrix::from_vec(2, 3, vec![0.0, 5.0, 5.0, 7.0, 1.0, 2.0]);
        assert_eq!(m.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn rows_copy_extracts_contiguous_block() {
        let m: Matrix<f32> = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let sub = m.rows_copy(1, 3);
        assert_eq!(sub.shape(), (2, 2));
        assert_eq!(sub[(0, 0)], 2.0);
        assert_eq!(sub[(1, 1)], 5.0);
        assert_eq!(m.rows_slice(1, 3), sub.as_slice());
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m: Matrix<f32> = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a: Matrix<f32> = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mut b: Matrix<f32> = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        b.hadamard_assign(&a);
        assert_eq!(b.as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a: Matrix<f32> = Matrix::zeros(2, 2);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b[(1, 0)] = 0.25;
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_normal_has_requested_spread() {
        let mut rng = Prng::new(99);
        let m: Matrix<f64> = Matrix::random_normal(100, 100, 2.0, &mut rng);
        let mean: f64 = m.as_slice().iter().sum::<f64>() / 10_000.0;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn map_does_not_mutate_original() {
        let a: Matrix<f32> = Matrix::filled(2, 2, 2.0);
        let b = a.map(|x| x * x);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(b[(0, 0)], 4.0);
    }
}
