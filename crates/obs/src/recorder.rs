//! The recorder API: one sink-agnostic surface for all telemetry.
//!
//! Instrumented code talks to a [`Recorder`] and nothing else: it
//! opens RAII [`SpanGuard`]s around phases, bumps counters, sets
//! gauges, and emits structured events. Sinks decide what happens to
//! the data — [`InMemoryRecorder`] accumulates a [`Telemetry`]
//! snapshot (tests, JSONL export, rendering), [`NullRecorder`]
//! discards everything at zero cost.

use crate::event::{Event, Telemetry, Value};
use crate::span::{SpanKind, SpanRecord};
use pdnn_util::sync::locked;
use pdnn_util::timing::{Clock, WallClock};
use std::borrow::Cow;
use std::sync::{Arc, Mutex};

/// Object-safe telemetry sink.
///
/// All methods take `&self`: recorders are shared across call stacks
/// (and, via `Arc`, across threads), so sinks synchronize internally.
pub trait Recorder: Send + Sync {
    /// Current time in seconds since the recorder's epoch.
    fn now(&self) -> f64;

    /// Store one completed span.
    fn record_span(&self, span: SpanRecord);

    /// Add `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Set the named gauge to `value` (last write wins).
    fn gauge_set(&self, name: &'static str, value: f64);

    /// Emit a structured event stamped with [`Recorder::now`].
    fn event(&self, name: &'static str, fields: Vec<(Cow<'static, str>, Value)>);
}

/// Ergonomic helpers over any [`Recorder`], sized or not.
pub trait RecorderExt: Recorder {
    /// Open a span; it records itself when the guard drops.
    fn span(&self, phase: impl Into<Cow<'static, str>>, kind: SpanKind) -> SpanGuard<'_, Self> {
        SpanGuard {
            rec: self,
            phase: phase.into(),
            kind,
            start: self.now(),
        }
    }

    /// Record a span with explicit endpoints (for simulated time).
    fn span_at(&self, phase: impl Into<Cow<'static, str>>, kind: SpanKind, start: f64, end: f64) {
        self.record_span(SpanRecord::new(phase, kind, start, end));
    }
}

impl<R: Recorder + ?Sized> RecorderExt for R {}

/// RAII guard for one in-flight span.
///
/// Created by [`RecorderExt::span`]; records a [`SpanRecord`] from the
/// guard's creation time to its drop time.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard<'a, R: Recorder + ?Sized> {
    rec: &'a R,
    phase: Cow<'static, str>,
    kind: SpanKind,
    start: f64,
}

impl<R: Recorder + ?Sized> Drop for SpanGuard<'_, R> {
    fn drop(&mut self) {
        let phase = std::mem::take(&mut self.phase);
        let end = self.rec.now();
        // Monotonicity can wobble with a manual clock wound backwards;
        // clamp rather than panic inside drop.
        let end = end.max(self.start);
        self.rec
            .record_span(SpanRecord::new(phase, self.kind, self.start, end));
    }
}

enum ClockSource {
    /// Injected time source (wall clock by default; see
    /// [`InMemoryRecorder::with_clock`]). All wall-clock reads go
    /// through `pdnn_util::timing` per lint rule `l1-sim-wall-clock`.
    External(Arc<dyn Clock>),
    /// Explicitly advanced simulated time.
    Manual(f64),
}

struct Inner {
    clock: ClockSource,
    data: Telemetry,
}

/// Accumulating sink: everything recorded lands in a [`Telemetry`].
///
/// Thread-safe; clone an `Arc<InMemoryRecorder>` into each
/// instrumented component and [`take`](InMemoryRecorder::take) the
/// snapshot at the end of the run.
pub struct InMemoryRecorder {
    inner: Mutex<Inner>,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Recorder whose epoch is its creation instant (wall clock).
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// Recorder reading time from an injected [`Clock`] (e.g. a shared
    /// `pdnn_util::ManualClock` in deterministic simulated runs).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        InMemoryRecorder {
            inner: Mutex::new(Inner {
                clock: ClockSource::External(clock),
                data: Telemetry::default(),
            }),
        }
    }

    /// Recorder driven by an explicit clock starting at `0.0`.
    ///
    /// Used by tests and by simulated-time producers that call
    /// [`InMemoryRecorder::advance_clock`] themselves.
    pub fn with_manual_clock() -> Self {
        InMemoryRecorder {
            inner: Mutex::new(Inner {
                clock: ClockSource::Manual(0.0),
                data: Telemetry::default(),
            }),
        }
    }

    /// Advance a manual clock by `dt` seconds.
    ///
    /// # Panics
    /// Panics on a wall-clock recorder or negative `dt`.
    pub fn advance_clock(&self, dt: f64) {
        assert!(dt >= 0.0, "clock must advance forward");
        let mut inner = locked(&self.inner);
        match &mut inner.clock {
            ClockSource::Manual(t) => *t += dt,
            // pdnn-lint: allow(l3-no-unwrap): documented contract panic (see "# Panics" above); mixing manual advance with an injected clock is a wiring bug
            ClockSource::External(_) => panic!("advance_clock on an externally clocked recorder"),
        }
    }

    /// Take the accumulated telemetry, resetting the recorder's data
    /// (the clock keeps running).
    pub fn take(&self) -> Telemetry {
        std::mem::take(&mut locked(&self.inner).data)
    }

    /// Clone of the telemetry accumulated so far.
    pub fn snapshot(&self) -> Telemetry {
        locked(&self.inner).data.clone()
    }
}

impl Recorder for InMemoryRecorder {
    fn now(&self) -> f64 {
        match &locked(&self.inner).clock {
            ClockSource::External(clock) => clock.now(),
            ClockSource::Manual(t) => *t,
        }
    }

    fn record_span(&self, span: SpanRecord) {
        locked(&self.inner).data.spans.push(span);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *locked(&self.inner)
            .data
            .counters
            .entry(Cow::Borrowed(name))
            .or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        locked(&self.inner)
            .data
            .gauges
            .insert(Cow::Borrowed(name), value);
    }

    fn event(&self, name: &'static str, fields: Vec<(Cow<'static, str>, Value)>) {
        let t = self.now();
        locked(&self.inner).data.events.push(Event {
            t,
            name: Cow::Borrowed(name),
            fields,
        });
    }
}

/// Discards everything; the zero-overhead default sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn now(&self) -> f64 {
        0.0
    }

    fn record_span(&self, _span: SpanRecord) {}

    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    fn gauge_set(&self, _name: &'static str, _value: f64) {}

    fn event(&self, _name: &'static str, _fields: Vec<(Cow<'static, str>, Value)>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_inner_before_outer() {
        let rec = InMemoryRecorder::with_manual_clock();
        {
            let _outer = rec.span("outer", SpanKind::Scalar);
            rec.advance_clock(1.0);
            {
                let _inner = rec.span("inner", SpanKind::DenseCompute);
                rec.advance_clock(2.0);
            }
            rec.advance_clock(1.0);
        }
        let t = rec.take();
        assert_eq!(t.spans.len(), 2);
        // Inner guard drops first, so it lands first.
        assert_eq!(t.spans[0].name(), "inner");
        assert_eq!(t.spans[1].name(), "outer");
        assert!((t.spans[0].start - 1.0).abs() < 1e-12);
        assert!((t.spans[0].end - 3.0).abs() < 1e-12);
        assert!((t.spans[1].start - 0.0).abs() < 1e-12);
        assert!((t.spans[1].end - 4.0).abs() < 1e-12);
        // The outer span fully contains the inner one.
        assert!(t.spans[1].start <= t.spans[0].start && t.spans[0].end <= t.spans[1].end);
    }

    #[test]
    fn overlapping_guards_may_interleave() {
        let rec = InMemoryRecorder::with_manual_clock();
        let a = rec.span("a", SpanKind::Scalar);
        rec.advance_clock(1.0);
        let b = rec.span("b", SpanKind::Scalar);
        rec.advance_clock(1.0);
        drop(a); // a: [0, 2]
        rec.advance_clock(1.0);
        drop(b); // b: [1, 3]
        let t = rec.take();
        assert_eq!(t.spans[0].name(), "a");
        assert!((t.spans[0].end - 2.0).abs() < 1e-12);
        assert_eq!(t.spans[1].name(), "b");
        assert!((t.spans[1].start - 1.0).abs() < 1e-12);
        assert!((t.spans[1].end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_gauges_and_events_accumulate() {
        let rec = InMemoryRecorder::with_manual_clock();
        rec.counter_add("cg_iters", 5);
        rec.counter_add("cg_iters", 3);
        rec.gauge_set("lambda", 1.0);
        rec.gauge_set("lambda", 0.25);
        rec.advance_clock(2.0);
        rec.event("hf_iteration", vec![("iter".into(), 1u64.into())]);
        let t = rec.snapshot();
        assert_eq!(t.counter("cg_iters"), 8);
        assert_eq!(t.gauge("lambda"), Some(0.25));
        assert_eq!(t.events.len(), 1);
        assert!((t.events[0].t - 2.0).abs() < 1e-12);
        // take() drains; a second take sees nothing.
        let drained = rec.take();
        assert_eq!(drained.counter("cg_iters"), 8);
        assert!(rec.take().is_empty());
    }

    #[test]
    fn span_at_records_simulated_intervals() {
        let rec = InMemoryRecorder::with_manual_clock();
        rec.span_at("sim", SpanKind::CommCollective, 10.0, 12.5);
        let t = rec.take();
        assert_eq!(t.spans.len(), 1);
        assert!((t.spans[0].seconds() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let rec = InMemoryRecorder::new();
        let a = rec.now();
        let b = rec.now();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn null_recorder_discards_everything() {
        let rec = NullRecorder;
        {
            let _g = rec.span("ignored", SpanKind::Scalar);
        }
        rec.counter_add("x", 1);
        rec.gauge_set("y", 2.0);
        rec.event("z", Vec::new());
        assert_eq!(rec.now(), 0.0);
    }

    #[test]
    fn trait_object_recorders_still_open_spans() {
        let rec = InMemoryRecorder::with_manual_clock();
        let dynrec: &dyn Recorder = &rec;
        {
            let _g = dynrec.span("via_dyn", SpanKind::Scalar);
            rec.advance_clock(1.0);
        }
        let t = rec.take();
        assert_eq!(t.spans[0].name(), "via_dyn");
        assert!((t.spans[0].seconds() - 1.0).abs() < 1e-12);
    }
}
