//! Structured events and the aggregate telemetry snapshot.
//!
//! An [`Event`] is a point-in-time record with named fields (e.g. one
//! per HF iteration, carrying `rho`, `lambda`, `cg_iters`). A
//! [`Telemetry`] is everything one recorder captured: spans, counters,
//! gauges, events, and communication statistics.

use crate::metrics::CommStats;
use crate::span::SpanRecord;
use pdnn_util::timing::PhaseTimer;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// A typed event-field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, iteration numbers).
    U64(u64),
    /// Floating-point measurement.
    F64(f64),
    /// Free-form label.
    Str(String),
}

impl Value {
    /// Numeric view; integers widen, strings are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            Value::Str(_) => None,
        }
    }

    /// String view; numbers are `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::U64(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// One structured event on a recorder's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Timestamp in seconds (recorder-defined epoch).
    pub t: f64,
    /// Event name (`hf_iteration`, `phase_attribution`, …).
    pub name: Cow<'static, str>,
    /// Named fields, in insertion order.
    pub fields: Vec<(Cow<'static, str>, Value)>,
}

impl Event {
    /// First field with the given name, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| v)
    }
}

/// Everything one recorder captured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<Cow<'static, str>, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<Cow<'static, str>, f64>,
    /// Structured events in emission order.
    pub events: Vec<Event>,
    /// Communication statistics (Figures 4–5).
    pub comm: CommStats,
    /// Seed of the schedule perturbation this snapshot ran under
    /// (`None` for unperturbed runs). Set by the protocheck pass-2
    /// harness so a JSONL dump records which schedule produced it; the
    /// byte-identity comparison normalizes this line away.
    pub schedule_seed: Option<u64>,
}

impl Telemetry {
    /// True when nothing was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.events.is_empty()
            && self.comm == CommStats::default()
            && self.schedule_seed.is_none()
    }

    /// Aggregate span durations into a per-phase timer.
    ///
    /// This is how the legacy `PhaseTimer` views (`master_phases`,
    /// `worker_phases`) are derived from span telemetry.
    pub fn phase_totals(&self) -> PhaseTimer {
        let mut timer = PhaseTimer::new();
        for span in &self.spans {
            timer.add(span.phase.clone(), span.seconds());
        }
        timer
    }

    /// Counter value, zero when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Merge another snapshot into this one (e.g. across ranks).
    ///
    /// Spans and events append; counters sum; gauges take the other
    /// side's latest value; comm statistics sum.
    pub fn merge(&mut self, other: &Telemetry) {
        self.spans.extend(other.spans.iter().cloned());
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        self.events.extend(other.events.iter().cloned());
        self.comm.merge(&other.comm);
        if other.schedule_seed.is_some() {
            self.schedule_seed = other.schedule_seed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    #[test]
    fn event_field_lookup() {
        let e = Event {
            t: 1.0,
            name: "hf_iteration".into(),
            fields: vec![("iter".into(), 3u64.into()), ("rho".into(), 0.8.into())],
        };
        assert_eq!(e.get("iter").and_then(Value::as_f64), Some(3.0));
        assert_eq!(e.get("rho").and_then(Value::as_f64), Some(0.8));
        assert!(e.get("nope").is_none());
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::from("x").as_f64().is_none());
    }

    #[test]
    fn phase_totals_aggregate_spans() {
        let mut t = Telemetry::default();
        t.spans
            .push(SpanRecord::new("grad", SpanKind::DenseCompute, 0.0, 1.0));
        t.spans
            .push(SpanRecord::new("grad", SpanKind::DenseCompute, 2.0, 2.5));
        t.spans
            .push(SpanRecord::new("sync", SpanKind::CommCollective, 1.0, 2.0));
        let phases = t.phase_totals();
        let grad = phases.get("grad");
        assert_eq!(grad.calls, 2);
        assert!((grad.seconds - 1.5).abs() < 1e-12);
        assert!((phases.get("sync").seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_all_sections() {
        let mut a = Telemetry::default();
        a.counters.insert("cg_iters".into(), 5);
        a.gauges.insert("lambda".into(), 1.0);
        let mut b = Telemetry::default();
        b.counters.insert("cg_iters".into(), 3);
        b.gauges.insert("lambda".into(), 0.5);
        b.spans
            .push(SpanRecord::new("x", SpanKind::Scalar, 0.0, 1.0));
        b.comm.collectives_completed = 2;
        a.merge(&b);
        assert_eq!(a.counter("cg_iters"), 8);
        assert_eq!(a.gauge("lambda"), Some(0.5));
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.comm.collectives_completed, 2);
        assert!(!a.is_empty());
        assert!(Telemetry::default().is_empty());
    }
}
