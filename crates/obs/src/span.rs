//! Timed spans: the unit of phase attribution.
//!
//! A [`SpanRecord`] is a named, closed interval of (virtual or wall)
//! time tagged with a [`SpanKind`]. The kind determines how the BG/Q
//! cycle model buckets the interval (dense FPU work, memory-bound
//! work, scalar control flow, communication, waiting), mirroring how
//! the paper attributes hardware-counter cycles to functions.

use std::borrow::Cow;

/// What a span's time was spent on.
///
/// This is the telemetry-side vocabulary; `pdnn_bgq` maps it onto its
/// `PhaseKind` cycle-model categories when reproducing Figures 2–3.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum SpanKind {
    /// Dense floating-point work (matrix products, CG updates).
    DenseCompute,
    /// Streaming/memory-bandwidth-bound work (weight sync, shuffles).
    MemoryBound,
    /// Scalar bookkeeping and control flow.
    Scalar,
    /// Point-to-point communication (sends/recvs to one peer).
    CommP2p,
    /// Collective communication (bcast, reduce, allreduce, …).
    CommCollective,
    /// Blocked waiting on another rank or resource.
    Wait,
    /// File or checkpoint I/O.
    Io,
}

impl SpanKind {
    /// Stable lower-snake name used in JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::DenseCompute => "dense_compute",
            SpanKind::MemoryBound => "memory_bound",
            SpanKind::Scalar => "scalar",
            SpanKind::CommP2p => "comm_p2p",
            SpanKind::CommCollective => "comm_collective",
            SpanKind::Wait => "wait",
            SpanKind::Io => "io",
        }
    }

    /// Inverse of [`SpanKind::as_str`]; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "dense_compute" => SpanKind::DenseCompute,
            "memory_bound" => SpanKind::MemoryBound,
            "scalar" => SpanKind::Scalar,
            "comm_p2p" => SpanKind::CommP2p,
            "comm_collective" => SpanKind::CommCollective,
            "wait" => SpanKind::Wait,
            "io" => SpanKind::Io,
            _ => return None,
        })
    }
}

/// A completed span: one named interval on a rank's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Phase name (`gradient_loss`, `sync_weights_master`, …).
    pub phase: Cow<'static, str>,
    /// What the time was spent on.
    pub kind: SpanKind,
    /// Start time in seconds (epoch is recorder-defined).
    pub start: f64,
    /// End time in seconds; never before `start`.
    pub end: f64,
}

impl SpanRecord {
    /// Build a span, validating the interval.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(phase: impl Into<Cow<'static, str>>, kind: SpanKind, start: f64, end: f64) -> Self {
        let phase = phase.into();
        assert!(
            end >= start,
            "span '{phase}' ends before it starts ({end} < {start})"
        );
        SpanRecord {
            phase,
            kind,
            start,
            end,
        }
    }

    /// Phase name as a plain string slice.
    pub fn name(&self) -> &str {
        &self.phase
    }

    /// Duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            SpanKind::DenseCompute,
            SpanKind::MemoryBound,
            SpanKind::Scalar,
            SpanKind::CommP2p,
            SpanKind::CommCollective,
            SpanKind::Wait,
            SpanKind::Io,
        ] {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("warp_drive"), None);
    }

    #[test]
    fn span_reports_duration() {
        let s = SpanRecord::new("grad", SpanKind::DenseCompute, 1.0, 3.5);
        assert_eq!(s.name(), "grad");
        assert!((s.seconds() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_span_rejected() {
        SpanRecord::new("bad", SpanKind::Scalar, 2.0, 1.0);
    }
}
