//! `pdnn-obs` — the unified telemetry subsystem.
//!
//! Every instrumented component in the workspace (the HF optimizer,
//! the CG inner loop, the distributed master/worker protocol, the
//! mpisim collectives, the perfmodel figure generators) talks to one
//! [`Recorder`] API: RAII [`span`](RecorderExt::span) guards for phase
//! timing, counters and gauges for scalar metrics, and structured
//! [`Event`]s for per-iteration records. Sinks are pluggable:
//! [`InMemoryRecorder`] accumulates a [`Telemetry`] snapshot for tests
//! and post-processing, [`jsonl`] exports/imports snapshots as
//! machine-readable JSONL under `results/`, and [`render`] draws
//! terminal Gantt charts and summary tables.
//!
//! # Paper-figure map
//!
//! Each figure/table of the source paper (*Parallel Deep Neural
//! Network Training for Big Data on Blue Gene/Q*, SC'14) is
//! reproduced from a specific sink and field of this crate:
//!
//! | Paper artifact | Sink / field that reproduces it |
//! |---|---|
//! | Fig. 1 (scaling) | `Telemetry::phase_totals()` per configuration — end-to-end seconds per phase feed `pdnn_perfmodel::figures::fig1` |
//! | Figs. 2–3 (cycle breakdown per function) | [`SpanRecord`]s: each span's [`SpanKind`] maps onto `pdnn_bgq::PhaseKind` via `classify_span`, splitting the span's cycles into committed / IU-empty / AXU-stall / FXU-stall / other; exported as `"span"` JSONL lines and `"phase_attribution"` events (fields `committed_gcyc`, `iu_empty_gcyc`, `axu_gcyc`, `fxu_gcyc`, `other_gcyc`) |
//! | Figs. 4–5 (MPI collective vs point-to-point time per function) | [`CommStats`]: `p2p`/`collective` [`ClassTotals`] (`seconds`, `bytes_sent`, `bytes_received`, `sends`, `recvs`) plus `collectives_completed`; exported as `"comm"` and `"collectives"` JSONL lines and the `mpi_coll_s`/`mpi_p2p_s` fields of `"phase_attribution"` events |
//! | Table I (per-iteration timing) | counters (`cg_iters`, `hf_iterations`) and the per-iteration `"hf_iteration"` events (fields `iter`, `train_loss`, `rho`, `lambda`, `cg_iters`, `accepted`) |
//!
//! The `fig2_3` and `fig4_5` bench binaries write a JSONL attribution
//! with [`jsonl::write_jsonl`], read it back with
//! [`jsonl::read_jsonl`], and build their tables from the parsed
//! [`Telemetry`] — the export format *is* the figure pipeline, not a
//! side channel.

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod recorder;
pub mod render;
pub mod span;

pub use event::{Event, Telemetry, Value};
pub use metrics::{ClassTotals, CommClass, CommStats};
pub use recorder::{InMemoryRecorder, NullRecorder, Recorder, RecorderExt, SpanGuard};
pub use render::{comm_table, phase_table, render_gantt};
pub use span::{SpanKind, SpanRecord};

// Re-export the table primitive so sinks and their consumers share it.
pub use pdnn_util::report::Table;
