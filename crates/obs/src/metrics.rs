//! Per-rank communication accounting.
//!
//! The paper's Figures 4 and 5 break each process's MPI time into
//! *collective* and *point-to-point* categories per function. These
//! types record, for every rank, time blocked in and bytes moved by
//! each category. They are the single definition of the accounting
//! structures; `pdnn_mpisim::trace` re-exports them unchanged.

/// Communication category, matching the paper's figure split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommClass {
    /// Direct send/recv traffic (e.g. the master's `load_data`).
    PointToPoint,
    /// Traffic inside a collective (e.g. `sync_weights` broadcast).
    Collective,
}

impl CommClass {
    /// Stable lower-snake name used in JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            CommClass::PointToPoint => "p2p",
            CommClass::Collective => "collective",
        }
    }
}

/// Totals for one category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassTotals {
    /// Seconds spent in blocking send/recv calls.
    pub seconds: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Number of send operations.
    pub sends: u64,
    /// Number of receive operations.
    pub recvs: u64,
}

/// Per-rank communication statistics.
///
/// Historically `pdnn_mpisim::CommTrace`; the old name remains as a
/// type alias. The accounting *primitives* ([`CommStats::add_seconds`],
/// [`CommStats::on_send`], [`CommStats::on_recv`],
/// [`CommStats::on_collective_done`]) live here so the communication
/// layer carries no bookkeeping logic of its own.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point totals.
    pub p2p: ClassTotals,
    /// Collective totals.
    pub collective: ClassTotals,
    /// Completed collective operations (barrier counts as one).
    pub collectives_completed: u64,
}

impl CommStats {
    /// Mutable totals for a class.
    pub fn class_mut(&mut self, class: CommClass) -> &mut ClassTotals {
        match class {
            CommClass::PointToPoint => &mut self.p2p,
            CommClass::Collective => &mut self.collective,
        }
    }

    /// Totals for a class.
    pub fn class(&self, class: CommClass) -> &ClassTotals {
        match class {
            CommClass::PointToPoint => &self.p2p,
            CommClass::Collective => &self.collective,
        }
    }

    /// Attribute blocked seconds to a class.
    pub fn add_seconds(&mut self, class: CommClass, seconds: f64) {
        self.class_mut(class).seconds += seconds;
    }

    /// Account one completed send of `bytes` payload bytes.
    pub fn on_send(&mut self, class: CommClass, bytes: u64) {
        let t = self.class_mut(class);
        t.bytes_sent += bytes;
        t.sends += 1;
    }

    /// Account one completed receive of `bytes` payload bytes.
    pub fn on_recv(&mut self, class: CommClass, bytes: u64) {
        let t = self.class_mut(class);
        t.bytes_received += bytes;
        t.recvs += 1;
    }

    /// Account one completed collective operation.
    pub fn on_collective_done(&mut self) {
        self.collectives_completed += 1;
    }

    /// Total seconds across both classes.
    pub fn total_seconds(&self) -> f64 {
        self.p2p.seconds + self.collective.seconds
    }

    /// Total bytes moved (sent + received, both classes).
    pub fn total_bytes(&self) -> u64 {
        self.p2p.bytes_sent
            + self.p2p.bytes_received
            + self.collective.bytes_sent
            + self.collective.bytes_received
    }

    /// Merge another trace (e.g. summing across ranks).
    pub fn merge(&mut self, other: &CommStats) {
        for class in [CommClass::PointToPoint, CommClass::Collective] {
            let o = *other.class(class);
            let t = self.class_mut(class);
            t.seconds += o.seconds;
            t.bytes_sent += o.bytes_sent;
            t.bytes_received += o.bytes_received;
            t.sends += o.sends;
            t.recvs += o.recvs;
        }
        self.collectives_completed += other.collectives_completed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accessors_route_correctly() {
        let mut t = CommStats::default();
        t.class_mut(CommClass::PointToPoint).bytes_sent = 10;
        t.class_mut(CommClass::Collective).bytes_sent = 20;
        assert_eq!(t.p2p.bytes_sent, 10);
        assert_eq!(t.collective.bytes_sent, 20);
        assert_eq!(t.class(CommClass::Collective).bytes_sent, 20);
        assert_eq!(t.total_bytes(), 30);
    }

    #[test]
    fn accounting_primitives_update_the_right_class() {
        let mut t = CommStats::default();
        t.on_send(CommClass::PointToPoint, 64);
        t.on_recv(CommClass::Collective, 128);
        t.add_seconds(CommClass::Collective, 0.25);
        t.on_collective_done();
        assert_eq!(t.p2p.sends, 1);
        assert_eq!(t.p2p.bytes_sent, 64);
        assert_eq!(t.collective.recvs, 1);
        assert_eq!(t.collective.bytes_received, 128);
        assert!((t.collective.seconds - 0.25).abs() < 1e-12);
        assert_eq!(t.collectives_completed, 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CommStats::default();
        a.p2p.seconds = 1.0;
        a.p2p.sends = 2;
        a.collectives_completed = 1;
        let mut b = CommStats::default();
        b.p2p.seconds = 0.5;
        b.collective.recvs = 3;
        b.collectives_completed = 4;
        a.merge(&b);
        assert!((a.p2p.seconds - 1.5).abs() < 1e-12);
        assert_eq!(a.p2p.sends, 2);
        assert_eq!(a.collective.recvs, 3);
        assert_eq!(a.collectives_completed, 5);
        assert!((a.total_seconds() - 1.5).abs() < 1e-12);
    }
}
