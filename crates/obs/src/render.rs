//! Terminal rendering: ASCII Gantt charts and summary tables.
//!
//! This subsumes the old `pdnn_mpisim::timeline::render_gantt` (which
//! now delegates here) and builds on [`pdnn_util::report::Table`] for
//! aligned text / CSV output, so every sink shares one table
//! implementation.

use crate::event::Telemetry;
use crate::metrics::CommClass;
use crate::span::SpanRecord;
use pdnn_util::report::Table;

/// Render per-rank span lists as an ASCII Gantt chart of `width`
/// columns. Rank rows are in input order; spans are drawn with the
/// first character of their name, idle time as `.`, and overlaps
/// resolved last-writer-wins.
pub fn render_gantt(ranks: &[Vec<SpanRecord>], width: usize) -> String {
    assert!(width >= 10, "chart needs at least 10 columns");
    let t_max = ranks
        .iter()
        .flat_map(|spans| spans.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);
    if t_max <= 0.0 {
        return String::from("(empty timeline)\n");
    }
    let scale = width as f64 / t_max;
    let mut out = String::new();
    let mut legend: Vec<&str> = Vec::new();
    for (rank, spans) in ranks.iter().enumerate() {
        let mut row = vec!['.'; width];
        for span in spans {
            if !legend.contains(&span.name()) {
                legend.push(span.name());
            }
            let c = span.name().chars().next().unwrap_or('?');
            let lo = (span.start * scale).floor() as usize;
            let hi = ((span.end * scale).ceil() as usize).clamp(lo + 1, width);
            for slot in row.iter_mut().take(hi.min(width)).skip(lo.min(width - 1)) {
                *slot = c;
            }
        }
        out.push_str(&format!(
            "rank {rank:>3} |{}|\n",
            row.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "          0{}{:.4}s\n",
        " ".repeat(width.saturating_sub(8)),
        t_max
    ));
    out.push_str("legend: ");
    for name in legend {
        out.push_str(&format!("{}={} ", name.chars().next().unwrap_or('?'), name));
    }
    out.push('\n');
    out
}

/// Per-phase summary of one telemetry snapshot, longest phase first.
pub fn phase_table(title: &str, telemetry: &Telemetry) -> Table {
    let phases = telemetry.phase_totals();
    let total: f64 = phases.total_seconds().max(f64::MIN_POSITIVE);
    let mut rows: Vec<(String, f64, u64)> = phases
        .phases()
        .map(|(name, tot)| (name.to_string(), tot.seconds, tot.calls))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut table = Table::new(title, &["phase", "seconds", "calls", "share"]);
    for (name, seconds, calls) in rows {
        table.row(&[
            name,
            format!("{seconds:.6}"),
            calls.to_string(),
            format!("{:.1}%", 100.0 * seconds / total),
        ]);
    }
    table
}

/// Per-rank communication summary (the Figures 4–5 split).
pub fn comm_table(title: &str, per_rank: &[(u64, Telemetry)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "rank",
            "class",
            "seconds",
            "bytes sent",
            "bytes recv",
            "sends",
            "recvs",
        ],
    );
    for (rank, telemetry) in per_rank {
        for class in [CommClass::PointToPoint, CommClass::Collective] {
            let t = telemetry.comm.class(class);
            table.row(&[
                rank.to_string(),
                class.as_str().to_string(),
                format!("{:.6}", t.seconds),
                t.bytes_sent.to_string(),
                t.bytes_received.to_string(),
                t.sends.to_string(),
                t.recvs.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CommClass;
    use crate::span::SpanKind;

    fn span(name: &'static str, start: f64, end: f64) -> SpanRecord {
        SpanRecord::new(name, SpanKind::Scalar, start, end)
    }

    #[test]
    fn gantt_shows_proportional_blocks() {
        let ranks = vec![
            vec![span("compute", 0.0, 8.0), span("reduce", 8.0, 10.0)],
            vec![span("compute", 0.0, 10.0)],
        ];
        let chart = render_gantt(&ranks, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("rank   0"));
        let row0: String = lines[0].chars().filter(|&c| c == 'c' || c == 'r').collect();
        assert!(row0.matches('c').count() >= 14, "{chart}");
        assert!(row0.matches('r').count() >= 3, "{chart}");
        let row1: String = lines[1].chars().filter(|&c| c == 'c').collect();
        assert_eq!(row1.len(), 20, "{chart}");
        assert!(chart.contains("legend: c=compute r=reduce"));
    }

    #[test]
    fn idle_time_renders_as_dots() {
        let ranks = vec![vec![span("w", 5.0, 10.0)]];
        let chart = render_gantt(&ranks, 20);
        let row = chart.lines().next().unwrap();
        assert!(row.contains('.'), "{chart}");
        assert!(row.contains('w'), "{chart}");
        let bar: String = row
            .chars()
            .skip_while(|&c| c != '|')
            .skip(1)
            .take(20)
            .collect();
        assert!(bar.starts_with(".........."), "{chart}");
    }

    #[test]
    fn empty_timeline_is_handled() {
        assert_eq!(render_gantt(&[], 20), "(empty timeline)\n");
        assert_eq!(render_gantt(&[vec![]], 20), "(empty timeline)\n");
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn narrow_chart_rejected() {
        render_gantt(&[], 2);
    }

    #[test]
    fn phase_table_sorts_by_share() {
        let mut t = Telemetry::default();
        t.spans.push(span("small", 0.0, 1.0));
        t.spans.push(span("big", 1.0, 10.0));
        let table = phase_table("phases", &t);
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        let big_pos = csv.find("big").unwrap();
        let small_pos = csv.find("small").unwrap();
        assert!(big_pos < small_pos, "{csv}");
        assert!(csv.contains("90.0%"), "{csv}");
    }

    #[test]
    fn comm_table_lists_both_classes_per_rank() {
        let mut t = Telemetry::default();
        t.comm.on_send(CommClass::Collective, 256);
        let table = comm_table("comm", &[(0, t.clone()), (1, t)]);
        assert_eq!(table.len(), 4);
        let csv = table.to_csv();
        assert!(csv.contains("collective"));
        assert!(csv.contains("256"));
    }
}
