//! JSONL export and import of [`Telemetry`] snapshots.
//!
//! One line per record, one file per run, all ranks interleaved. The
//! writer and parser are hand-rolled (the workspace takes no
//! serialization dependency) and cover exactly the subset of JSON the
//! writer emits: flat objects of strings, numbers, `null`, and one
//! level of nested object for event fields.
//!
//! Line shapes (`rank` appears in every line):
//!
//! ```text
//! {"type":"span","rank":0,"phase":"gradient_loss","kind":"dense_compute","start":0.0,"end":1.5}
//! {"type":"counter","rank":0,"name":"cg_iters","value":8}
//! {"type":"gauge","rank":0,"name":"lambda","value":0.25}
//! {"type":"event","rank":0,"t":2.0,"name":"hf_iteration","fields":{"iter":1,"rho":0.8}}
//! {"type":"comm","rank":0,"class":"p2p","seconds":0.1,"bytes_sent":64,"bytes_received":0,"sends":1,"recvs":0}
//! {"type":"collectives","rank":0,"completed":3}
//! {"type":"schedule","rank":0,"seed":42}
//! ```
//!
//! The `schedule` line only appears for snapshots taken under a
//! perturbed schedule (see `Telemetry::schedule_seed`); protocheck's
//! determinism harness strips it before comparing dumps byte-for-byte.
//!
//! Floats are written with Rust's shortest round-trip formatting
//! (always containing `.` or `e`), so the parser can reconstruct the
//! original integer-vs-float distinction. Non-finite floats are
//! written as `null` and read back as NaN.

use crate::event::{Event, Telemetry, Value};
use crate::metrics::{ClassTotals, CommClass};
use crate::span::{SpanKind, SpanRecord};
use pdnn_util::Error;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

// ---------------------------------------------------------------- writing

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn push_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => push_f64(*x, out),
        Value::Str(s) => esc(s, out),
    }
}

fn push_comm_line(rank: u64, class: CommClass, t: &ClassTotals, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"comm\",\"rank\":{rank},\"class\":\"{}\",\"seconds\":",
        class.as_str()
    );
    push_f64(t.seconds, out);
    let _ = writeln!(
        out,
        ",\"bytes_sent\":{},\"bytes_received\":{},\"sends\":{},\"recvs\":{}}}",
        t.bytes_sent, t.bytes_received, t.sends, t.recvs
    );
}

/// Serialize one rank's telemetry as JSONL.
pub fn to_jsonl_string(rank: u64, telemetry: &Telemetry) -> String {
    let mut out = String::new();
    for span in &telemetry.spans {
        let _ = write!(out, "{{\"type\":\"span\",\"rank\":{rank},\"phase\":");
        esc(&span.phase, &mut out);
        let _ = write!(out, ",\"kind\":\"{}\",\"start\":", span.kind.as_str());
        push_f64(span.start, &mut out);
        out.push_str(",\"end\":");
        push_f64(span.end, &mut out);
        out.push_str("}\n");
    }
    for (name, value) in &telemetry.counters {
        let _ = write!(out, "{{\"type\":\"counter\",\"rank\":{rank},\"name\":");
        esc(name, &mut out);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (name, value) in &telemetry.gauges {
        let _ = write!(out, "{{\"type\":\"gauge\",\"rank\":{rank},\"name\":");
        esc(name, &mut out);
        out.push_str(",\"value\":");
        push_f64(*value, &mut out);
        out.push_str("}\n");
    }
    for event in &telemetry.events {
        let _ = write!(out, "{{\"type\":\"event\",\"rank\":{rank},\"t\":");
        push_f64(event.t, &mut out);
        out.push_str(",\"name\":");
        esc(&event.name, &mut out);
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(key, &mut out);
            out.push(':');
            push_value(value, &mut out);
        }
        out.push_str("}}\n");
    }
    push_comm_line(rank, CommClass::PointToPoint, &telemetry.comm.p2p, &mut out);
    push_comm_line(
        rank,
        CommClass::Collective,
        &telemetry.comm.collective,
        &mut out,
    );
    let _ = writeln!(
        out,
        "{{\"type\":\"collectives\",\"rank\":{rank},\"completed\":{}}}",
        telemetry.comm.collectives_completed
    );
    if let Some(seed) = telemetry.schedule_seed {
        let _ = writeln!(
            out,
            "{{\"type\":\"schedule\",\"rank\":{rank},\"seed\":{seed}}}"
        );
    }
    out
}

/// Write per-rank telemetry to `path` (rank = slice index).
pub fn write_jsonl(path: impl AsRef<Path>, per_rank: &[Telemetry]) -> Result<(), Error> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::new();
    for (rank, telemetry) in per_rank.iter().enumerate() {
        out.push_str(&to_jsonl_string(rank as u64, telemetry));
    }
    fs::write(path, out)?;
    Ok(())
}

// ---------------------------------------------------------------- parsing

enum Json {
    Str(String),
    U64(u64),
    F64(f64),
    Obj(Vec<(String, Json)>),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Self {
        Parser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> Error {
        Error::Parse(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.fail("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.fail("dangling escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if token.is_empty() {
            return Err(self.fail("expected a number"));
        }
        let looks_float = token.contains(['.', 'e', 'E', '-']);
        if !looks_float {
            if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        token
            .parse::<f64>()
            .map(Json::F64)
            .map_err(|_| Error::Parse(format!("bad number '{token}'")))
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(self.fail("expected null"))
                }
            }
            Some(_) => self.number(),
            None => Err(self.fail("unexpected end of line")),
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

fn field<'j>(fields: &'j [(String, Json)], name: &str) -> Result<&'j Json, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::Parse(format!("missing field '{name}'")))
}

fn as_str(j: &Json, name: &str) -> Result<String, Error> {
    match j {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(Error::Parse(format!("field '{name}' is not a string"))),
    }
}

fn as_u64(j: &Json, name: &str) -> Result<u64, Error> {
    match j {
        Json::U64(n) => Ok(*n),
        _ => Err(Error::Parse(format!("field '{name}' is not an integer"))),
    }
}

fn as_f64(j: &Json, name: &str) -> Result<f64, Error> {
    match j {
        Json::U64(n) => Ok(*n as f64),
        Json::F64(x) => Ok(*x),
        Json::Null => Ok(f64::NAN),
        _ => Err(Error::Parse(format!("field '{name}' is not a number"))),
    }
}

fn as_value(j: &Json, name: &str) -> Result<Value, Error> {
    match j {
        Json::U64(n) => Ok(Value::U64(*n)),
        Json::F64(x) => Ok(Value::F64(*x)),
        Json::Null => Ok(Value::F64(f64::NAN)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Obj(_) => Err(Error::Parse(format!("field '{name}' is not a scalar"))),
    }
}

fn apply_line(
    fields: &[(String, Json)],
    per_rank: &mut BTreeMap<u64, Telemetry>,
) -> Result<(), Error> {
    let kind = as_str(field(fields, "type")?, "type")?;
    let rank = as_u64(field(fields, "rank")?, "rank")?;
    let telemetry = per_rank.entry(rank).or_default();
    match kind.as_str() {
        "span" => {
            let phase = as_str(field(fields, "phase")?, "phase")?;
            let kind_name = as_str(field(fields, "kind")?, "kind")?;
            let span_kind = SpanKind::parse(&kind_name)
                .ok_or_else(|| Error::Parse(format!("unknown span kind '{kind_name}'")))?;
            let start = as_f64(field(fields, "start")?, "start")?;
            let end = as_f64(field(fields, "end")?, "end")?;
            if end < start {
                return Err(Error::Parse(format!(
                    "span '{phase}' ends before it starts"
                )));
            }
            telemetry
                .spans
                .push(SpanRecord::new(phase, span_kind, start, end));
        }
        "counter" => {
            let name = as_str(field(fields, "name")?, "name")?;
            let value = as_u64(field(fields, "value")?, "value")?;
            *telemetry.counters.entry(name.into()).or_insert(0) += value;
        }
        "gauge" => {
            let name = as_str(field(fields, "name")?, "name")?;
            let value = as_f64(field(fields, "value")?, "value")?;
            telemetry.gauges.insert(name.into(), value);
        }
        "event" => {
            let t = as_f64(field(fields, "t")?, "t")?;
            let name = as_str(field(fields, "name")?, "name")?;
            let Json::Obj(raw) = field(fields, "fields")? else {
                return Err(Error::Parse("event 'fields' is not an object".into()));
            };
            let mut parsed = Vec::with_capacity(raw.len());
            for (key, value) in raw {
                parsed.push((key.clone().into(), as_value(value, key)?));
            }
            telemetry.events.push(Event {
                t,
                name: name.into(),
                fields: parsed,
            });
        }
        "comm" => {
            let class = match as_str(field(fields, "class")?, "class")?.as_str() {
                "p2p" => CommClass::PointToPoint,
                "collective" => CommClass::Collective,
                other => return Err(Error::Parse(format!("unknown comm class '{other}'"))),
            };
            let totals = telemetry.comm.class_mut(class);
            totals.seconds += as_f64(field(fields, "seconds")?, "seconds")?;
            totals.bytes_sent += as_u64(field(fields, "bytes_sent")?, "bytes_sent")?;
            totals.bytes_received += as_u64(field(fields, "bytes_received")?, "bytes_received")?;
            totals.sends += as_u64(field(fields, "sends")?, "sends")?;
            totals.recvs += as_u64(field(fields, "recvs")?, "recvs")?;
        }
        "collectives" => {
            telemetry.comm.collectives_completed +=
                as_u64(field(fields, "completed")?, "completed")?;
        }
        "schedule" => {
            telemetry.schedule_seed = Some(as_u64(field(fields, "seed")?, "seed")?);
        }
        other => return Err(Error::Parse(format!("unknown line type '{other}'"))),
    }
    Ok(())
}

/// Parse JSONL text into `(rank, telemetry)` pairs, ascending by rank.
pub fn parse_jsonl(text: &str) -> Result<Vec<(u64, Telemetry)>, Error> {
    let mut per_rank: BTreeMap<u64, Telemetry> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Parser::new(line)
            .object()
            .map_err(|e| Error::Parse(format!("line {}: {e}", lineno + 1)))?;
        let Json::Obj(fields) = parsed else {
            unreachable!("object() only returns objects")
        };
        apply_line(&fields, &mut per_rank)
            .map_err(|e| Error::Parse(format!("line {}: {e}", lineno + 1)))?;
    }
    Ok(per_rank.into_iter().collect())
}

/// Read and parse a JSONL telemetry file.
pub fn read_jsonl(path: impl AsRef<Path>) -> Result<Vec<(u64, Telemetry)>, Error> {
    parse_jsonl(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder, RecorderExt};

    fn sample() -> Telemetry {
        let rec = InMemoryRecorder::with_manual_clock();
        {
            let _g = rec.span("gradient_loss", SpanKind::DenseCompute);
            rec.advance_clock(1.5);
        }
        rec.span_at("sync_weights", SpanKind::CommCollective, 1.5, 2.0);
        rec.counter_add("cg_iters", 8);
        rec.gauge_set("lambda", 0.25);
        rec.event(
            "hf_iteration",
            vec![
                ("iter".into(), 1u64.into()),
                ("rho".into(), 0.8.into()),
                ("note".into(), "accepted, with \"quotes\"".into()),
            ],
        );
        let mut t = rec.take();
        t.comm.on_send(CommClass::PointToPoint, 64);
        t.comm.add_seconds(CommClass::Collective, 0.125);
        t.comm.on_collective_done();
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample();
        let text = to_jsonl_string(3, &original);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 3);
        assert_eq!(parsed[0].1, original);
    }

    #[test]
    fn multiple_ranks_come_back_sorted() {
        let a = sample();
        let mut text = to_jsonl_string(2, &a);
        text.push_str(&to_jsonl_string(0, &a));
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(
            parsed.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(parsed[0].1, parsed[1].1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("pdnn-obs-jsonl-{}", std::process::id()));
        let path = dir.join("run.jsonl");
        let ranks = vec![sample(), Telemetry::default()];
        write_jsonl(&path, &ranks).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].1, ranks[0]);
        assert_eq!(back[1].1, ranks[1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_jsonl("{\"type\":\"span\"").is_err());
        assert!(parse_jsonl("{\"type\":\"mystery\",\"rank\":0}").is_err());
        assert!(parse_jsonl("{\"type\":\"span\",\"rank\":0,\"phase\":\"x\",\"kind\":\"scalar\",\"start\":2.0,\"end\":1.0}").is_err());
        let err = parse_jsonl("{\"type\":\"gauge\",\"rank\":0,\"name\":\"x\"}").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", to_jsonl_string(0, &sample()));
        assert_eq!(parse_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn escaped_strings_survive() {
        let rec = InMemoryRecorder::with_manual_clock();
        rec.span_at("tab\there \"and\" back\\slash", SpanKind::Io, 0.0, 1.0);
        let t = rec.take();
        let parsed = parse_jsonl(&to_jsonl_string(0, &t)).unwrap();
        assert_eq!(parsed[0].1, t);
    }

    #[test]
    fn schedule_seed_round_trips() {
        let mut t = sample();
        t.schedule_seed = Some(42);
        let text = to_jsonl_string(1, &t);
        assert!(text.contains("{\"type\":\"schedule\",\"rank\":1,\"seed\":42}"));
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].1.schedule_seed, Some(42));
        // Unperturbed snapshots emit no schedule line at all.
        assert!(!to_jsonl_string(0, &sample()).contains("\"schedule\""));
    }

    #[test]
    fn non_finite_floats_become_nan() {
        let rec = InMemoryRecorder::with_manual_clock();
        rec.gauge_set("bad", f64::INFINITY);
        let t = rec.take();
        let parsed = parse_jsonl(&to_jsonl_string(0, &t)).unwrap();
        assert!(parsed[0].1.gauge("bad").unwrap().is_nan());
    }
}
