//! Property tests for the two invariants `pdnn-protocheck` pass 2
//! leans on (ISSUE 3 satellite):
//!
//! * **Arrival-order independence** — collectives run under a seeded
//!   schedule perturbation ([`run_world_perturbed`]) return bitwise
//!   the same results as the unperturbed deterministic world, with an
//!   empty happens-before log.
//! * **Tree vs flat bit-identity** — the binomial-tree `reduce` and
//!   recursive-doubling `allreduce` are bitwise equal to a local
//!   single-process replay of the same combine schedule; with exact
//!   (integer) arithmetic the tree collapses to the flat rank-order
//!   fold, so tree and flat must agree to the bit.

use pdnn_mpisim::{run_world, run_world_deterministic, run_world_perturbed, ReduceOp};
use proptest::prelude::*;

/// Local replay of the binomial-tree reduce schedule used by
/// `Comm::reduce` (root 0): at each doubling `mask`, vrank `v` with
/// `v & mask == 0` absorbs the subtree rooted at `v | mask`, with its
/// own accumulator as the left operand.
fn tree_reduce_replay(per_rank: &[Vec<f32>]) -> Vec<f32> {
    let size = per_rank.len();
    let mut acc: Vec<Vec<f32>> = per_rank.to_vec();
    let mut mask = 1usize;
    while mask < size {
        let mut v = 0usize;
        while v < size {
            if v & mask == 0 && v | mask < size {
                let (left, right) = acc.split_at_mut(v | mask);
                for (x, &y) in left[v].iter_mut().zip(right[0].iter()) {
                    *x += y;
                }
            }
            v += mask << 1;
        }
        mask <<= 1;
    }
    acc.swap_remove(0)
}

/// Local replay of the recursive-doubling allreduce schedule: a
/// balanced binary tree over rank order, lower-rank data always the
/// left operand (exactly the rank-independent order the distributed
/// code uses).
fn doubling_allreduce_replay(per_rank: &[Vec<f32>]) -> Vec<f32> {
    let mut level: Vec<Vec<f32>> = per_rank.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                let mut left = pair[0].clone();
                for (x, &y) in left.iter_mut().zip(pair[1].iter()) {
                    *x += y;
                }
                left
            })
            .collect();
    }
    level.swap_remove(0)
}

fn rank_data(size: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..size)
        .map(|rank| {
            let mut rng = pdnn_util::Prng::new(seed ^ ((rank as u64 + 1) * 0x9e37));
            (0..len).map(|_| rng.range(-8.0, 8.0) as f32).collect()
        })
        .collect()
}

proptest! {
    // Thread-spawning tests: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn perturbed_collectives_are_arrival_order_independent(
        size in 2usize..7,
        len in 1usize..40,
        seed in 0u64..1000,
        sched_seed in 1u64..1000,
    ) {
        let body = move |comm: &mut pdnn_mpisim::Comm| {
            let mut rng = pdnn_util::Prng::new(seed ^ comm.rank() as u64);
            let mut v: Vec<f64> = (0..len).map(|_| rng.range(-4.0, 4.0)).collect();
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
            let mut m: Vec<f64> = vec![comm.rank() as f64];
            comm.reduce(&mut m, ReduceOp::Max, 0).unwrap();
            comm.barrier().unwrap();
            let gathered = comm.allgather(vec![comm.rank() as u64]).unwrap();
            (v, m, gathered)
        };
        let baseline = run_world_deterministic(size, body);
        let perturbed = run_world_perturbed(size, sched_seed, body);
        for (b, p) in baseline.iter().zip(perturbed.iter()) {
            prop_assert!(p.hb.is_empty(), "rank {}: HB violations {:?}", p.rank, p.hb);
            // Bitwise identity, not approximate equality.
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&b.result.0), bits(&p.result.0));
            prop_assert_eq!(bits(&b.result.1), bits(&p.result.1));
            prop_assert_eq!(&b.result.2, &p.result.2);
        }
    }

    #[test]
    fn binomial_reduce_is_bit_identical_to_tree_replay(
        size in 1usize..9,
        len in 1usize..50,
        seed in 0u64..1000,
    ) {
        let data = rank_data(size, len, seed);
        let expect: Vec<u32> = tree_reduce_replay(&data).iter().map(|x| x.to_bits()).collect();
        let results = run_world(size, move |comm| {
            let mut buf = data[comm.rank()].clone();
            comm.reduce(&mut buf, ReduceOp::Sum, 0).unwrap();
            buf
        });
        let got: Vec<u32> = results[0].result.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn doubling_allreduce_is_bit_identical_to_tree_replay_on_every_rank(
        log_size in 0u32..4,
        len in 1usize..50,
        seed in 0u64..1000,
    ) {
        let size = 1usize << log_size;
        let data = rank_data(size, len, seed);
        let expect: Vec<u32> =
            doubling_allreduce_replay(&data).iter().map(|x| x.to_bits()).collect();
        let results = run_world(size, move |comm| {
            let mut buf = data[comm.rank()].clone();
            comm.allreduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for r in &results {
            let got: Vec<u32> = r.result.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&got, &expect, "rank {} diverged from the replay", r.rank);
        }
    }

    #[test]
    fn exact_arithmetic_collapses_tree_to_flat_fold(
        size in 1usize..9,
        len in 1usize..30,
        seed in 0u64..1000,
    ) {
        // With u64 sums the combine order cannot matter, so the tree
        // reduce must equal the flat rank-order fold exactly — and the
        // two allreduce algorithms must agree with it too.
        let data: Vec<Vec<u64>> = (0..size)
            .map(|rank| {
                let mut rng = pdnn_util::Prng::new(seed ^ rank as u64);
                (0..len).map(|_| rng.below(1 << 20)).collect()
            })
            .collect();
        let flat: Vec<u64> = (0..len)
            .map(|j| data.iter().map(|d| d[j]).sum())
            .collect();
        let results = run_world(size, move |comm| {
            let mut tree = data[comm.rank()].clone();
            comm.reduce(&mut tree, ReduceOp::Sum, 0).unwrap();
            let mut doubling = data[comm.rank()].clone();
            comm.allreduce(&mut doubling, ReduceOp::Sum).unwrap();
            let mut raben = data[comm.rank()].clone();
            comm.allreduce_rabenseifner(&mut raben, ReduceOp::Sum).unwrap();
            (tree, doubling, raben)
        });
        prop_assert_eq!(&results[0].result.0, &flat);
        for r in &results {
            prop_assert_eq!(&r.result.1, &flat);
            prop_assert_eq!(&r.result.2, &flat);
        }
    }
}
