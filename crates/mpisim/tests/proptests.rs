//! Property-based tests for the collectives: for arbitrary world
//! sizes, vector lengths, and contents, every collective must agree
//! with its local (single-process) definition.

use pdnn_mpisim::{run_world, ReduceOp};
use proptest::prelude::*;

proptest! {
    // Thread-spawning tests: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_delivers_root_data(
        size in 1usize..9,
        root_pick in 0usize..9,
        data in proptest::collection::vec(-1e3f32..1e3, 0..50),
    ) {
        let root = root_pick % size;
        let expect = data.clone();
        let results = run_world(size, move |comm| {
            let mut buf = if comm.rank() == root { data.clone() } else { vec![999.0] };
            comm.bcast(&mut buf, root).unwrap();
            buf
        });
        for r in results {
            prop_assert_eq!(&r.result, &expect);
        }
    }

    #[test]
    fn reduce_sum_matches_local_sum(
        size in 1usize..9,
        root_pick in 0usize..9,
        len in 1usize..40,
        seed in 0u64..500,
    ) {
        let root = root_pick % size;
        let results = run_world(size, move |comm| {
            let mut rng = pdnn_util::Prng::new(seed ^ comm.rank() as u64);
            let data: Vec<f64> = (0..len).map(|_| rng.range(-10.0, 10.0)).collect();
            let mut buf = data.clone();
            comm.reduce(&mut buf, ReduceOp::Sum, root).unwrap();
            (data, buf)
        });
        // Recompute the expected sum from each rank's contribution.
        for j in 0..len {
            let expect: f64 = results.iter().map(|r| r.result.0[j]).sum();
            let got = results[root].result.1[j];
            prop_assert!((got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "elem {j}: {got} vs {expect}");
        }
    }

    #[test]
    fn allreduce_max_matches_local_max(
        size in 1usize..9,
        len in 1usize..30,
        seed in 0u64..500,
    ) {
        let results = run_world(size, move |comm| {
            let mut rng = pdnn_util::Prng::new(seed.wrapping_add(comm.rank() as u64 * 77));
            let data: Vec<f64> = (0..len).map(|_| rng.range(-5.0, 5.0)).collect();
            let mut buf = data.clone();
            comm.allreduce(&mut buf, ReduceOp::Max).unwrap();
            (data, buf)
        });
        for j in 0..len {
            let expect = results
                .iter()
                .map(|r| r.result.0[j])
                .fold(f64::NEG_INFINITY, f64::max);
            for r in &results {
                prop_assert_eq!(r.result.1[j], expect);
            }
        }
    }

    #[test]
    fn allgather_collects_everyone_in_order(
        size in 1usize..9,
        len in 0usize..20,
    ) {
        let results = run_world(size, move |comm| {
            let data: Vec<u64> = (0..len).map(|i| (comm.rank() * 1000 + i) as u64).collect();
            comm.allgather(data).unwrap()
        });
        for r in &results {
            prop_assert_eq!(r.result.len(), size);
            for (rank, chunk) in r.result.iter().enumerate() {
                let expect: Vec<u64> = (0..len).map(|i| (rank * 1000 + i) as u64).collect();
                prop_assert_eq!(chunk, &expect);
            }
        }
    }

    #[test]
    fn scatter_then_gather_roundtrips(
        size in 1usize..8,
        len in 1usize..10,
    ) {
        let results = run_world(size, move |comm| {
            let chunks = if comm.rank() == 0 {
                Some((0..size).map(|r| vec![r as f32; len]).collect())
            } else {
                None
            };
            let mine = comm.scatter(chunks, 0).unwrap();
            comm.gather(mine, 0).unwrap()
        });
        let gathered = results[0].result.as_ref().unwrap();
        for (r, chunk) in gathered.iter().enumerate() {
            prop_assert_eq!(chunk, &vec![r as f32; len]);
        }
    }

    #[test]
    fn rabenseifner_agrees_with_standard_allreduce(
        log_size in 1u32..4,
        len in 1usize..120,
        seed in 0u64..300,
    ) {
        let size = 1usize << log_size;
        let results = run_world(size, move |comm| {
            let mut rng = pdnn_util::Prng::new(seed ^ (comm.rank() as u64) << 3);
            let data: Vec<f64> = (0..len).map(|_| rng.range(-3.0, 3.0)).collect();
            let mut a = data.clone();
            let mut b = data;
            comm.allreduce(&mut a, ReduceOp::Sum).unwrap();
            comm.allreduce_rabenseifner(&mut b, ReduceOp::Sum).unwrap();
            (a, b)
        });
        for r in &results {
            for (x, y) in r.result.0.iter().zip(r.result.1.iter()) {
                prop_assert!((x - y).abs() < 1e-11 * (1.0 + x.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn collective_sequences_stay_in_lockstep(
        size in 2usize..7,
        rounds in 1usize..6,
    ) {
        // Many back-to-back collectives of varying kinds must never
        // cross-match (the per-invocation tag window).
        let results = run_world(size, move |comm| {
            let mut acc = 0.0f64;
            for round in 0..rounds {
                let mut v = vec![(comm.rank() + round) as f64];
                comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
                acc += v[0];
                comm.barrier().unwrap();
                let mut b = vec![round as f64];
                comm.bcast(&mut b, round % size).unwrap();
                acc += b[0];
            }
            acc
        });
        for r in &results[1..] {
            prop_assert_eq!(r.result, results[0].result);
        }
    }
}
