//! The communicator: point-to-point messaging with MPI-style tag and
//! source matching.
//!
//! Ranks are OS threads inside one process; each rank owns a `Comm`
//! holding an unbounded receive channel and sender handles to every
//! peer. Messages that arrive before they are wanted are parked in a
//! pending list, so receive order is governed by `(src, tag)` matching
//! exactly like MPI, not by arrival order.

use crate::collectives::CollElem;
use crate::events::CommEvent;
use crate::fault::{FaultAction, FaultPlan, FAULT_TICK};
use crate::hb::{HbTracker, HbViolation};
use crate::message::{Packet, Payload, Src};
use crate::trace::{CommClass, CommTrace};
use crate::vtime::LinkModel;
use crate::wire::{self, WireCodec};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use pdnn_obs::{InMemoryRecorder, Recorder, Telemetry};
use pdnn_util::timing::{Clock, WallClock};
use pdnn_util::Prng;
use std::sync::Arc;
use std::time::Duration;

/// Communication failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The peer's receive endpoint is gone (rank exited or died).
    Disconnected {
        /// Rank whose endpoint is closed.
        peer: usize,
    },
    /// A timed receive expired with no matching message.
    Timeout,
    /// All senders to this rank dropped while waiting.
    WorldShutDown,
    /// A matched message carried the wrong payload kind — a protocol
    /// bug (mismatched send/recv pair), distinct from the transport
    /// faults above so callers and the protocol checker can tell them
    /// apart.
    TypeMismatch {
        /// Sending rank.
        src: usize,
        /// Tag the receive matched on.
        tag: u64,
        /// Payload kind the receiver expected.
        expected: &'static str,
        /// Payload kind actually received.
        got: &'static str,
    },
    /// A rank known to have died was named as the peer of a receive
    /// or collective. Carries the dead rank so a recovery layer can
    /// re-partition its work.
    RankDead {
        /// The dead rank.
        rank: usize,
    },
    /// This rank was killed by the fault plan; every communication
    /// call returns this from the injection point on.
    Killed,
    /// This rank was evicted by a collective root after missing its
    /// timeout window; it must stop participating in the protocol.
    Evicted,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected { peer } => write!(f, "rank {peer} disconnected"),
            CommError::Timeout => write!(f, "receive timed out"),
            CommError::WorldShutDown => write!(f, "all peers disconnected"),
            CommError::TypeMismatch {
                src,
                tag,
                expected,
                got,
            } => write!(
                f,
                "type-mismatched receive from rank {src} (tag {tag}): \
                 expected {expected}, got {got}"
            ),
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::Killed => write!(f, "this rank was killed by the fault plan"),
            CommError::Evicted => write!(f, "this rank was evicted after a missed timeout"),
        }
    }
}

impl std::error::Error for CommError {}

/// Unwrap a communication result in code that cannot return one.
///
/// Rank bodies running under [`run_world`](crate::run_world) often
/// implement traits whose signatures have no error channel (e.g. the
/// `HfProblem` phase methods). In this in-process runtime a failed
/// collective means a peer rank already panicked — its panic is what
/// `run_world` propagates — so the only useful thing left to do on
/// this rank is fail fast with context naming the operation. This
/// helper is the single audited place that does so; call sites stay
/// free of `unwrap`/`expect` (lint rule `l3-no-unwrap`).
pub fn comm_ok<T>(res: Result<T, CommError>, what: &str) -> T {
    match res {
        Ok(v) => v,
        // pdnn-lint: allow(l3-no-unwrap): centralized comm failure path — a failed op means a peer already panicked and that panic is propagating via run_world
        Err(e) => panic!("{what}: {e}"),
    }
}

impl From<CommError> for pdnn_util::Error {
    fn from(e: CommError) -> Self {
        pdnn_util::Error::Comm(e.to_string())
    }
}

/// Per-rank communicator.
pub struct Comm {
    rank: usize,
    size: usize,
    inbox: Receiver<Packet>,
    peers: Vec<Sender<Packet>>,
    pending: Vec<Packet>,
    pub(crate) trace: CommTrace,
    /// Ordered protocol-visible event trace (see `crate::events`):
    /// point-to-point ops outside collectives plus one entry per
    /// completed collective invocation. Replayed by `pdnn-protomc`
    /// for trace conformance against the abstract protocol model.
    events: Vec<CommEvent>,
    /// Shared telemetry sink: spans opened by collectives and by user
    /// code running on this rank all land here.
    recorder: Arc<InMemoryRecorder>,
    /// Set while inside a collective so inner p2p traffic is
    /// attributed to the collective class.
    pub(crate) in_collective: bool,
    /// Sequence number giving each collective invocation a unique tag
    /// window (all ranks call collectives in the same order).
    pub(crate) coll_seq: u64,
    /// Virtual clock (seconds) advanced by the link model and by
    /// explicit compute charges; see `crate::vtime`.
    vtime: f64,
    /// Optional cost model driving the virtual clock.
    link_model: Option<Arc<dyn LinkModel>>,
    /// Vector-clock happens-before tracker (`None` = off; see
    /// `crate::hb`). Enabled by perturbed worlds.
    hb: Option<HbTracker>,
    /// Seeded schedule-perturbation stream (`None` = deterministic
    /// FIFO behaviour). When set, sends inject seeded yield points and
    /// `Src::Any` receives pick randomly among the per-source heads of
    /// the parked messages — legal reorderings under MPI's
    /// non-overtaking guarantee (per-(src, tag) order is preserved).
    perturb: Option<Prng>,
    /// Injectable wall-clock source: real elapsed time charged to the
    /// communication trace is read from here, never from
    /// `std::time::Instant` directly, so simulated runs can freeze it
    /// (pdnn-lint rule `l1-sim-wall-clock`).
    clock: Arc<dyn Clock>,
    /// Ranks this rank knows to be dead (learned from `CTRL_DEATH`
    /// packets or by evicting a timed-out peer).
    dead: Vec<usize>,
    /// Dead ranks whose failure the application has acknowledged
    /// (recovered from); timed collectives skip these silently
    /// instead of re-reporting [`CommError::RankDead`].
    acked: Vec<usize>,
    /// This rank's own fault status.
    fate: Fate,
    /// Fault-injection context (`None` = fault-free world; every
    /// injection hook is a no-op).
    fault: Option<FaultCtx>,
    /// Wire codec applied to `F32` payloads while a codec-armed
    /// collective is running (see `crate::wire`).
    wire_codec: WireCodec,
    /// Set by the collectives that are safe under a lossy codec
    /// (broadcast/reduce shapes and the ring/tree allreduces);
    /// [`Comm::send`] only encodes while this is on.
    pub(crate) codec_armed: bool,
}

/// Tag bit reserved for collective-internal messages; user tags must
/// stay below this.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 48;

/// Tag space reserved for fault-tolerance control packets. Control
/// packets never surface to user code: the receive loop intercepts
/// them, updates the communicator's fault state, and keeps matching.
pub(crate) const CTRL_TAG_BASE: u64 = 1 << 60;
/// "I am dead": a killed rank's farewell. Per-pair FIFO means every
/// real message the dead rank sent is already delivered (or parked)
/// when a peer observes this, so detection is deterministic.
pub(crate) const CTRL_DEATH: u64 = CTRL_TAG_BASE;
/// "You are evicted": sent by a collective root to a rank that missed
/// its timeout window; the recipient must stop participating.
pub(crate) const CTRL_EVICT: u64 = CTRL_TAG_BASE + 1;

/// What the fault plan has done to this rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fate {
    Alive,
    Killed,
    Evicted,
}

/// Per-rank fault-injection state: the shared plan plus this rank's
/// per-link send counters (the logical-progress index that
/// drop/delay actions key on).
struct FaultCtx {
    plan: Arc<FaultPlan>,
    sent_counts: Vec<u64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        inbox: Receiver<Packet>,
        peers: Vec<Sender<Packet>>,
    ) -> Self {
        Self::with_clock(rank, size, inbox, peers, Arc::new(WallClock::new()))
    }

    /// Build a communicator whose trace timing *and* telemetry
    /// recorder both read the given clock. With a
    /// `pdnn_util::ManualClock` the rank's entire telemetry output
    /// becomes bit-reproducible run to run.
    pub(crate) fn with_clock(
        rank: usize,
        size: usize,
        inbox: Receiver<Packet>,
        peers: Vec<Sender<Packet>>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Comm {
            rank,
            size,
            inbox,
            peers,
            pending: Vec::new(),
            trace: CommTrace::default(),
            events: Vec::new(),
            recorder: Arc::new(InMemoryRecorder::with_clock(clock.clone())),
            in_collective: false,
            coll_seq: 0,
            vtime: 0.0,
            link_model: None,
            hb: None,
            perturb: None,
            clock,
            dead: Vec::new(),
            acked: Vec::new(),
            fate: Fate::Alive,
            fault: None,
            wire_codec: WireCodec::None,
            codec_armed: false,
        }
    }

    /// Set the wire codec applied to `F32` payloads inside
    /// codec-armed collectives (default [`WireCodec::None`]).
    pub fn set_wire_codec(&mut self, codec: WireCodec) {
        self.wire_codec = codec;
    }

    /// The wire codec currently configured on this rank.
    pub fn wire_codec(&self) -> WireCodec {
        self.wire_codec
    }

    /// Encode a payload under this rank's codec (identity when the
    /// codec is `None` or the payload is not `F32`). Collectives that
    /// must distribute one canonical wire image (broadcast shapes)
    /// call this once at the data's origin and forward the image
    /// untouched, so every receiver decodes identical bytes.
    pub(crate) fn codec_encode(&self, payload: Payload) -> Payload {
        wire::encode(self.wire_codec, payload)
    }

    /// Arm fault injection against the given plan. Every rank of a
    /// faulted world shares one plan and applies it against its own
    /// logical progress (collective sequence numbers, per-link send
    /// counts), so injection is bit-deterministic.
    pub fn enable_faults(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(FaultCtx {
            plan,
            sent_counts: vec![0; self.size],
        });
    }

    /// Whether this rank knows `rank` to be dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.contains(&rank)
    }

    /// Ranks this rank knows to be dead, in discovery order.
    pub fn dead_ranks(&self) -> &[usize] {
        &self.dead
    }

    /// Acknowledge a rank's death after recovering from it: timed
    /// collectives stop reporting [`CommError::RankDead`] for this
    /// rank and simply run without it. An unacknowledged death is
    /// re-reported by every collective that misses the rank, so a
    /// failure can never be silently absorbed.
    pub fn ack_dead(&mut self, rank: usize) {
        self.mark_dead(rank);
        if !self.acked.contains(&rank) {
            self.acked.push(rank);
        }
    }

    pub(crate) fn is_acked(&self, rank: usize) -> bool {
        self.acked.contains(&rank)
    }

    /// Deliberately silent (no telemetry): *when* a rank pulls the
    /// death packet out of its inbox is scheduling-dependent, and an
    /// event here would make telemetry nondeterministic. Deterministic
    /// fault events are emitted by the code that *acts* on a death
    /// (the collective root and the recovery layer).
    pub(crate) fn mark_dead(&mut self, rank: usize) {
        if !self.dead.contains(&rank) {
            self.dead.push(rank);
        }
    }

    /// Whether fault tolerance is armed (collectives dispatch to
    /// their timed variants when it is). An armed but *empty* plan
    /// does not count: the timed variants have different message
    /// shapes (flat star vs tree/dissemination), and a faulted world
    /// running an empty plan must stay byte-identical to the
    /// fault-free run.
    pub(crate) fn ft(&self) -> bool {
        matches!(&self.fault, Some(ctx) if !ctx.plan.actions.is_empty())
    }

    /// Timeout window for a timed collective: the root runs the short
    /// detection window; everyone else waits out the generous worker
    /// window (it must outlast a whole recovery cycle at the root).
    pub(crate) fn ft_timeout_for_root(&self, root: usize) -> Duration {
        match &self.fault {
            Some(ctx) if self.rank == root => ctx.plan.detect_timeout,
            Some(ctx) => ctx.plan.worker_timeout,
            None => Duration::from_secs(30),
        }
    }

    /// Timeout window for a peer hop in the masterless ring/tree
    /// collectives: every survivor runs the short detection window —
    /// there is no asymmetric root to out-wait, and the
    /// membership-agreement round re-synchronizes the survivors after
    /// a failure.
    pub(crate) fn ft_timeout_peer(&self) -> Duration {
        match &self.fault {
            Some(ctx) => ctx.plan.detect_timeout,
            None => Duration::from_secs(30),
        }
    }

    /// Lowest-numbered dead rank whose failure has not been
    /// acknowledged yet — the failure the masterless recovery layer
    /// agrees on next. Rank order, not discovery order, so every
    /// survivor picks the same one.
    pub(crate) fn lowest_unacked_dead(&self) -> Option<usize> {
        self.dead
            .iter()
            .copied()
            .filter(|r| !self.acked.contains(r))
            .min()
    }

    /// Normalize a failed timed hop in a masterless collective into
    /// the death the recovery layer should act on. A timeout while an
    /// unacknowledged peer death is already known is attributed to
    /// that death — the hop peer is merely starved downstream of the
    /// dead rank and must *not* be evicted. A timeout with no known
    /// death evicts the hop peer itself (it went silent). A
    /// `RankDead` report is re-pointed at the lowest unacknowledged
    /// death so every survivor recovers the same failure first.
    pub(crate) fn hop_failure(&mut self, peer: usize, e: CommError) -> CommError {
        match e {
            CommError::Timeout => match self.lowest_unacked_dead() {
                Some(dead) => CommError::RankDead { rank: dead },
                None => {
                    self.evict(peer);
                    CommError::RankDead { rank: peer }
                }
            },
            CommError::RankDead { rank } => {
                let rank = self.lowest_unacked_dead().unwrap_or(rank);
                CommError::RankDead { rank }
            }
            other => other,
        }
    }

    fn fate_check(&self) -> Result<(), CommError> {
        match self.fate {
            Fate::Alive => Ok(()),
            Fate::Killed => Err(CommError::Killed),
            Fate::Evicted => Err(CommError::Evicted),
        }
    }

    /// Raw control-packet send: bypasses tracing, happens-before
    /// stamping, and fault injection. Failures are ignored — the
    /// recipient being gone is exactly the situation control packets
    /// exist to report.
    pub(crate) fn ctrl_send(&mut self, dst: usize, tag: u64) {
        if dst == self.rank {
            return;
        }
        let _ = self.peers[dst].send(Packet {
            src: self.rank,
            tag,
            sent_vtime: self.vtime,
            clock: None,
            payload: Payload::Empty,
        });
    }

    /// Dead ranks whose failure has not been acknowledged yet, in
    /// rank order — the set a masterless recovery round must agree on
    /// and then [`Comm::ack_dead`]. Empty once every known death is
    /// acknowledged.
    pub fn unacked_dead(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .dead
            .iter()
            .copied()
            .filter(|r| !self.acked.contains(r))
            .collect();
        out.sort_unstable();
        out
    }

    /// Declare `rank` dead after it missed a timeout window: mark it
    /// locally and send it `CTRL_EVICT` so that, if it is merely
    /// stalled, it stops participating instead of corrupting later
    /// tag windows. Public so recovery layers (the master's
    /// checkpoint-restart driver, the masterless membership round) can
    /// expel a coordinator or reporter that went silent.
    pub fn evict(&mut self, rank: usize) {
        self.recorder.event(
            "rank_evicted",
            vec![
                ("rank".into(), (rank as u64).into()),
                ("by".into(), (self.rank as u64).into()),
            ],
        );
        self.mark_dead(rank);
        self.ctrl_send(rank, CTRL_EVICT);
    }

    /// Fault-plan hook run at the top of every collective, *before*
    /// the collective claims its tag window. Applies any `Kill` or
    /// `Stall` scheduled for this rank at the current collective
    /// sequence number. A killed rank's last act is sending
    /// `CTRL_DEATH` to every peer.
    pub(crate) fn fault_gate(&mut self) -> Result<(), CommError> {
        self.fate_check()?;
        let Some(ctx) = &self.fault else {
            return Ok(());
        };
        let plan = ctx.plan.clone();
        for action in &plan.actions {
            match *action {
                FaultAction::Kill {
                    rank,
                    before_collective,
                } if rank == self.rank && before_collective == self.coll_seq => {
                    for dst in 0..self.size {
                        self.ctrl_send(dst, CTRL_DEATH);
                    }
                    self.fate = Fate::Killed;
                    self.recorder.event(
                        "fault_kill",
                        vec![
                            ("rank".into(), (self.rank as u64).into()),
                            ("collective".into(), self.coll_seq.into()),
                        ],
                    );
                    return Err(CommError::Killed);
                }
                FaultAction::Stall {
                    rank,
                    before_collective,
                    ticks,
                } if rank == self.rank && before_collective == self.coll_seq => {
                    self.recorder.event(
                        "fault_stall",
                        vec![
                            ("rank".into(), (self.rank as u64).into()),
                            ("collective".into(), self.coll_seq.into()),
                            ("ticks".into(), u64::from(ticks).into()),
                        ],
                    );
                    std::thread::sleep(FAULT_TICK * ticks);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Switch on vector-clock happens-before tracking: every
    /// subsequent send stamps this rank's clock onto the packet and
    /// every receive checks the delivery/consumption invariants.
    /// Collect results with [`Comm::hb_finish`].
    pub fn enable_hb(&mut self) {
        self.hb = Some(HbTracker::new(self.rank, self.size));
    }

    /// Switch on seeded schedule perturbation (see the `perturb` field
    /// docs). Distinct seeds explore distinct legal schedules; the
    /// protocol's observable behaviour must not depend on the choice.
    pub fn enable_perturbation(&mut self, seed: u64) {
        self.perturb = Some(Prng::new(seed));
    }

    /// Seeded yield jitter at rank-body start, so perturbed worlds
    /// also vary which rank's first sends win the initial races.
    pub(crate) fn startup_jitter(&mut self) {
        if let Some(prng) = &mut self.perturb {
            for _ in 0..prng.index(4) {
                std::thread::yield_now();
            }
        }
    }

    /// Finish happens-before tracking: drain in-flight messages, flag
    /// anything parked or undelivered as unconsumed-at-exit, and
    /// return every violation recorded on this rank. Returns empty
    /// when tracking was never enabled.
    pub fn hb_finish(&mut self) -> Vec<HbViolation> {
        if self.hb.is_none() {
            return Vec::new();
        }
        while let Ok(pkt) = self.inbox.try_recv() {
            if pkt.tag >= CTRL_TAG_BASE {
                self.on_ctrl(&pkt);
                continue;
            }
            if let Some(hb) = &mut self.hb {
                hb.on_delivered(&pkt);
            }
            self.pending.push(pkt);
        }
        let Some(mut hb) = self.hb.take() else {
            return Vec::new();
        };
        for pkt in &self.pending {
            hb.on_unconsumed(pkt);
        }
        hb.take_violations()
    }

    /// Replace the wall-clock source feeding the communication trace
    /// (e.g. with a `pdnn_util::ManualClock` for bit-reproducible
    /// simulated runs). The telemetry recorder keeps its own clock;
    /// build the world with [`crate::build_world_deterministic`] to
    /// freeze both together.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Attach a link cost model: every subsequent send advances this
    /// rank's virtual clock by the modeled transfer time, and receives
    /// synchronize the clock with the sender's completion time. The
    /// collectives are built on point-to-point messages, so their
    /// virtual cost emerges as the tree critical path — no separate
    /// collective model is needed.
    pub fn set_link_model(&mut self, model: Arc<dyn LinkModel>) {
        self.link_model = Some(model);
    }

    /// Current virtual time (0 until a link model is attached or
    /// compute is charged).
    pub fn vtime(&self) -> f64 {
        self.vtime
    }

    /// Charge modeled compute time to this rank's virtual clock.
    pub fn advance_vtime(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot advance time backwards");
        self.vtime += seconds;
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication trace accumulated so far.
    pub fn trace(&self) -> &CommTrace {
        &self.trace
    }

    /// Take the trace, leaving an empty one (used by the runner at
    /// rank exit).
    pub fn take_trace(&mut self) -> CommTrace {
        std::mem::take(&mut self.trace)
    }

    /// Ordered comm-event trace accumulated so far (see
    /// `crate::events`).
    pub fn events(&self) -> &[CommEvent] {
        &self.events
    }

    /// Take the comm-event trace, leaving an empty one (used by the
    /// runner at rank exit).
    pub fn take_events(&mut self) -> Vec<CommEvent> {
        std::mem::take(&mut self.events)
    }

    /// Record one completed collective invocation on the event trace
    /// (called by the collective implementations).
    pub(crate) fn push_event(&mut self, ev: CommEvent) {
        self.events.push(ev);
    }

    /// Timeout window for protocol point-to-point receives outside
    /// collectives (the `CMD_LOAD_DATA` shard transfers): the worker
    /// window when fault tolerance is armed — it must outlast a whole
    /// recovery cycle at the root — else the generous fault-free
    /// default.
    pub fn p2p_timeout(&self) -> Duration {
        match &self.fault {
            Some(ctx) => ctx.plan.worker_timeout,
            None => Duration::from_secs(30),
        }
    }

    /// This rank's telemetry sink. Clone the `Arc` into components
    /// that should record spans, counters, or events for this rank.
    pub fn recorder(&self) -> &Arc<InMemoryRecorder> {
        &self.recorder
    }

    /// Take everything recorded on this rank — spans, counters,
    /// gauges, events, *and* the communication trace — as one
    /// [`Telemetry`] snapshot, leaving the rank's sinks empty.
    pub fn take_telemetry(&mut self) -> Telemetry {
        let mut telemetry = self.recorder.take();
        telemetry.comm = self.take_trace();
        telemetry
    }

    fn class(&self) -> CommClass {
        if self.in_collective {
            CommClass::Collective
        } else {
            CommClass::PointToPoint
        }
    }

    /// Send `payload` to `dst` with `tag`.
    ///
    /// User tags must be below `2^48` (the collective tag window).
    pub fn send(&mut self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        assert!(dst < self.size, "send: rank {dst} out of range");
        debug_assert!(
            self.in_collective || tag < COLLECTIVE_TAG_BASE,
            "user tag {tag} collides with collective tag space"
        );
        self.fate_check()?;
        // Wire compression: narrow F32 payloads while a codec-armed
        // collective is running, so byte accounting below sees the
        // encoded size. Non-F32 payloads (including already-encoded
        // wire images being forwarded) pass through untouched.
        let payload = if self.codec_armed {
            wire::encode(self.wire_codec, payload)
        } else {
            payload
        };
        let start = self.clock.now();
        let bytes = payload.size_bytes();
        let kind = payload.kind();
        let elems = payload.elems();
        let class = self.class();
        // Fault injection: drop/delay actions key on the per-link send
        // count (logical progress), so the same plan hits the same
        // message every run.
        let link_fault = match &mut self.fault {
            Some(ctx) => {
                let n = ctx.sent_counts[dst];
                ctx.sent_counts[dst] += 1;
                Some((ctx.plan.clone(), n))
            }
            None => None,
        };
        if let Some((plan, n)) = link_fault {
            for action in &plan.actions {
                match *action {
                    FaultAction::DropMessage { from, to, nth }
                        if from == self.rank && to == dst && nth == n =>
                    {
                        self.recorder.counter_add("fault_dropped_sends", 1);
                        self.trace.add_seconds(class, self.clock.now() - start);
                        return Ok(());
                    }
                    FaultAction::DelayMessage {
                        from,
                        to,
                        nth,
                        ticks,
                    } if from == self.rank && to == dst && nth == n => {
                        std::thread::sleep(FAULT_TICK * ticks);
                    }
                    _ => {}
                }
            }
        }
        // Virtual timing: injection serializes on the sender (the
        // mechanism behind the master's fan-out bottleneck).
        if let Some(model) = &self.link_model {
            self.vtime += model.p2p_seconds(bytes);
        }
        // Perturbation: a seeded yield before injection varies which
        // sender wins cross-source delivery races.
        if let Some(prng) = &mut self.perturb {
            if prng.bernoulli(0.4) {
                std::thread::yield_now();
            }
        }
        let hb_clock = self.hb.as_mut().map(HbTracker::on_send);
        let result = match self.peers[dst].send(Packet {
            src: self.rank,
            tag,
            sent_vtime: self.vtime,
            clock: hb_clock,
            payload,
        }) {
            Ok(()) => Ok(()),
            // Faulted worlds: a closed channel means the destination
            // rank already exited (it died or finished). The message
            // would never be consumed either way, so treat it as sent
            // — keeping the sender's behaviour and trace independent
            // of how the dead rank's teardown raced this call.
            Err(_) if self.fault.is_some() => Ok(()),
            Err(_) => Err(CommError::Disconnected { peer: dst }),
        };
        self.trace.add_seconds(class, self.clock.now() - start);
        if result.is_ok() {
            self.trace.on_send(class, bytes);
            if !self.in_collective {
                self.events.push(CommEvent::Send {
                    to: dst,
                    tag,
                    kind,
                    len: elems,
                });
            }
        }
        result
    }

    /// Send to self is allowed (the message lands in the pending list
    /// on the next receive).
    fn match_pending(&mut self, src: Src, tag: u64) -> Option<Packet> {
        // Perturbed `Src::Any`: choose randomly among the *heads* of
        // each source's parked subsequence. Per-(src, tag) FIFO is
        // preserved (only the first match per source is a candidate),
        // so this explores exactly the schedules MPI's non-overtaking
        // rule permits.
        if self.perturb.is_some() && matches!(src, Src::Any) {
            let mut heads: Vec<usize> = Vec::new();
            let mut seen_srcs: Vec<usize> = Vec::new();
            for (i, p) in self.pending.iter().enumerate() {
                if p.tag == tag && !seen_srcs.contains(&p.src) {
                    heads.push(i);
                    seen_srcs.push(p.src);
                }
            }
            if heads.is_empty() {
                return None;
            }
            let choice = match &mut self.perturb {
                Some(prng) => heads[prng.index(heads.len())],
                None => heads[0],
            };
            return Some(self.pending.remove(choice));
        }
        let idx = self
            .pending
            .iter()
            .position(|p| p.tag == tag && src.matches(p.src))?;
        Some(self.pending.remove(idx))
    }

    /// Pull every already-delivered message off the transport channel
    /// into the pending list (non-blocking), so perturbed matching
    /// sees the full set of concurrently-available messages.
    fn drain_inbox(&mut self) {
        while let Ok(pkt) = self.inbox.try_recv() {
            if pkt.tag >= CTRL_TAG_BASE {
                self.on_ctrl(&pkt);
                continue;
            }
            if let Some(hb) = &mut self.hb {
                hb.on_delivered(&pkt);
            }
            self.pending.push(pkt);
        }
    }

    /// Apply a fault-tolerance control packet to this rank's state.
    /// Control packets are consumed here; they never reach user code,
    /// tracing, or happens-before tracking.
    fn on_ctrl(&mut self, pkt: &Packet) {
        match pkt.tag {
            CTRL_DEATH => self.mark_dead(pkt.src),
            CTRL_EVICT => self.fate = Fate::Evicted,
            _ => {}
        }
    }

    /// Blocking receive of the next message matching `(src, tag)`.
    pub fn recv(&mut self, src: Src, tag: u64) -> Result<Packet, CommError> {
        self.recv_deadline(src, tag, None)
    }

    /// Receive with a timeout.
    pub fn recv_timeout(
        &mut self,
        src: Src,
        tag: u64,
        timeout: Duration,
    ) -> Result<Packet, CommError> {
        let deadline = self.clock.now() + timeout.as_secs_f64();
        self.recv_deadline(src, tag, Some(deadline))
    }

    fn recv_deadline(
        &mut self,
        src: Src,
        tag: u64,
        deadline: Option<f64>,
    ) -> Result<Packet, CommError> {
        let start = self.clock.now();
        let class = self.class();
        let result = loop {
            if let Err(e) = self.fate_check() {
                break Err(e);
            }
            if self.perturb.is_some() {
                // See the full set of already-delivered messages before
                // matching, so the perturbed Any-source choice is among
                // everything genuinely concurrent.
                self.drain_inbox();
            }
            if let Some(pkt) = self.match_pending(src, tag) {
                break Ok(pkt);
            }
            // Dead-source check *after* match_pending: per-pair FIFO
            // guarantees every real message the dead rank sent was
            // already delivered before its death packet, so anything it
            // owed us is in the pending list by the time it is marked
            // dead — an empty match means the message will never come.
            if let Src::Of(s) = src {
                if self.dead.contains(&s) {
                    break Err(CommError::RankDead { rank: s });
                }
            }
            let received = match deadline {
                None => self.inbox.recv().map_err(|_| CommError::WorldShutDown),
                Some(d) => {
                    let now = self.clock.now();
                    if now >= d {
                        break Err(CommError::Timeout);
                    }
                    let remaining = Duration::from_secs_f64(d - now);
                    self.inbox.recv_timeout(remaining).map_err(|e| match e {
                        RecvTimeoutError::Timeout => CommError::Timeout,
                        RecvTimeoutError::Disconnected => CommError::WorldShutDown,
                    })
                }
            };
            match received {
                Ok(pkt) => {
                    if pkt.tag >= CTRL_TAG_BASE {
                        self.on_ctrl(&pkt);
                        continue;
                    }
                    if let Some(hb) = &mut self.hb {
                        hb.on_delivered(&pkt);
                    }
                    if pkt.tag == tag && src.matches(pkt.src) {
                        break Ok(pkt);
                    }
                    self.pending.push(pkt);
                }
                Err(e) => break Err(e),
            }
        };
        self.trace.add_seconds(class, self.clock.now() - start);
        if let Ok(pkt) = &result {
            if let Some(hb) = &mut self.hb {
                hb.on_consumed(pkt);
            }
            self.trace.on_recv(class, pkt.payload.size_bytes());
            if !self.in_collective {
                self.events.push(CommEvent::Recv {
                    from: pkt.src,
                    tag: pkt.tag,
                    kind: pkt.payload.kind(),
                    len: pkt.payload.elems(),
                });
            }
            // Virtual timing: the message is available no earlier than
            // the sender's completion time.
            if pkt.sent_vtime > self.vtime {
                self.vtime = pkt.sent_vtime;
            }
        }
        result
    }

    /// Typed receive: match `(src, tag)` like [`Comm::recv`], then
    /// check the payload kind against `T`. A mismatch surfaces as
    /// [`CommError::TypeMismatch`] — a protocol bug the caller can
    /// distinguish from transport faults — instead of a panic deep in
    /// a payload extractor.
    pub fn recv_vec<T: CollElem>(&mut self, src: Src, tag: u64) -> Result<Vec<T>, CommError> {
        let pkt = self.recv(src, tag)?;
        Self::typed(pkt, tag)
    }

    /// Typed receive with a timeout: [`Comm::recv_vec`] semantics, but
    /// gives up with [`CommError::Timeout`] after `timeout`, or
    /// [`CommError::RankDead`] as soon as the awaited source is known
    /// dead. The timed collectives are built on this.
    pub fn recv_vec_timeout<T: CollElem>(
        &mut self,
        src: Src,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        let pkt = self.recv_timeout(src, tag, timeout)?;
        Self::typed(pkt, tag)
    }

    pub(crate) fn typed<T: CollElem>(pkt: Packet, tag: u64) -> Result<Vec<T>, CommError> {
        let src_rank = pkt.src;
        let got = pkt.payload.kind();
        // Decode wire images first: F16/QI8 payloads only originate
        // from the codec narrowing an F32 payload, so decoding is
        // always the right inverse. The mismatch diagnostic keeps the
        // on-wire kind.
        T::unwrap_checked(wire::decode(pkt.payload)).map_err(|_| CommError::TypeMismatch {
            src: src_rank,
            tag,
            expected: T::KIND,
            got,
        })
    }

    /// Number of parked (received but unmatched) messages.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_world;

    #[test]
    fn ping_pong() {
        let results = run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, Payload::F32(vec![1.0, 2.0])).unwrap();
                let back = comm.recv(Src::Of(1), 8).unwrap();
                back.payload.into_f32()
            } else {
                let pkt = comm.recv(Src::Of(0), 7).unwrap();
                let mut v = pkt.payload.into_f32();
                for x in &mut v {
                    *x *= 10.0;
                }
                comm.send(0, 8, Payload::F32(v.clone())).unwrap();
                v
            }
        });
        assert_eq!(results[0].result, vec![10.0, 20.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let results = run_world(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1.
                comm.send(1, 2, Payload::U64(vec![222])).unwrap();
                comm.send(1, 1, Payload::U64(vec![111])).unwrap();
                vec![]
            } else {
                // Receive tag 1 first — must skip the tag-2 packet.
                let first = comm.recv(Src::Of(0), 1).unwrap().payload.into_u64();
                assert_eq!(comm.pending_len(), 1);
                let second = comm.recv(Src::Of(0), 2).unwrap().payload.into_u64();
                vec![first[0], second[0]]
            }
        });
        assert_eq!(results[1].result, vec![111, 222]);
    }

    #[test]
    fn any_source_matches_whoever_arrives() {
        let results = run_world(3, |comm| {
            if comm.rank() == 0 {
                let a = comm.recv(Src::Any, 5).unwrap();
                let b = comm.recv(Src::Any, 5).unwrap();
                let mut srcs = vec![a.src, b.src];
                srcs.sort_unstable();
                srcs
            } else {
                comm.send(0, 5, Payload::Empty).unwrap();
                vec![]
            }
        });
        assert_eq!(results[0].result, vec![1, 2]);
    }

    #[test]
    fn recv_timeout_expires() {
        let results = run_world(2, |comm| {
            if comm.rank() == 0 {
                let r = comm.recv_timeout(Src::Of(1), 99, Duration::from_millis(30));
                matches!(r, Err(CommError::Timeout))
            } else {
                true // rank 1 sends nothing
            }
        });
        assert!(results[0].result);
    }

    #[test]
    fn trace_counts_bytes_and_ops() {
        let results = run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F32(vec![0.0; 100])).unwrap();
            } else {
                comm.recv(Src::Of(0), 1).unwrap();
            }
        });
        assert_eq!(results[0].trace.p2p.bytes_sent, 400);
        assert_eq!(results[0].trace.p2p.sends, 1);
        assert_eq!(results[1].trace.p2p.bytes_received, 400);
        assert_eq!(results[1].trace.p2p.recvs, 1);
    }

    #[test]
    fn self_send_is_received() {
        let results = run_world(1, |comm| {
            comm.send(0, 3, Payload::U64(vec![42])).unwrap();
            comm.recv(Src::Of(0), 3).unwrap().payload.into_u64()[0]
        });
        assert_eq!(results[0].result, 42);
    }

    #[test]
    fn message_order_per_pair_is_fifo() {
        let results = run_world(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u64 {
                    comm.send(1, 4, Payload::U64(vec![i])).unwrap();
                }
                vec![]
            } else {
                (0..50u64)
                    .map(|_| comm.recv(Src::Of(0), 4).unwrap().payload.into_u64()[0])
                    .collect()
            }
        });
        assert_eq!(results[1].result, (0..50).collect::<Vec<u64>>());
    }
}
