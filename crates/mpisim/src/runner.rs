//! World construction: spawn `n` ranks as threads, wire up their
//! channels, run a closure per rank, and collect results plus
//! communication traces in rank order.

use crate::comm::Comm;
use crate::events::CommEvent;
use crate::fault::FaultPlan;
use crate::hb::HbViolation;
use crate::message::Packet;
use crate::trace::CommTrace;
use crossbeam::channel::unbounded;
use pdnn_obs::Telemetry;
use pdnn_util::timing::Clock;
use pdnn_util::ManualClock;
use std::sync::Arc;

/// Result of one rank's execution.
#[derive(Clone, Debug)]
pub struct RankOutcome<R> {
    /// Rank id.
    pub rank: usize,
    /// The closure's return value.
    pub result: R,
    /// Communication trace accumulated by the rank (also available as
    /// `telemetry.comm`; kept as a field for convenience).
    pub trace: CommTrace,
    /// Full telemetry snapshot for the rank: spans opened by
    /// collectives and user code, counters, gauges, events, and the
    /// communication trace.
    pub telemetry: Telemetry,
    /// Happens-before violations detected by the vector-clock tracker
    /// (always empty unless the world ran under
    /// [`run_world_perturbed`] or tracking was enabled by hand).
    pub hb: Vec<HbViolation>,
    /// Ordered comm-event trace: every point-to-point op outside a
    /// collective plus one entry per completed collective (see
    /// `crate::events`). Replayed by `pdnn-protomc` for trace
    /// conformance against the abstract protocol model.
    pub events: Vec<CommEvent>,
}

/// Build the communicators for an `n`-rank world without spawning
/// threads (for single-threaded tests or custom schedulers).
pub fn build_world(n: usize) -> Vec<Comm> {
    assert!(n > 0, "world needs at least one rank");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| Comm::new(rank, n, rx, senders.clone()))
        .collect()
}

/// Like [`build_world`], but every rank's trace timing and telemetry
/// recorder read one shared frozen `ManualClock`, so two identical
/// runs produce byte-identical telemetry (all wall-clock reads return
/// the same simulated instant; virtual time from link models is
/// unaffected).
pub fn build_world_deterministic(n: usize) -> Vec<Comm> {
    assert!(n > 0, "world needs at least one rank");
    let clock: Arc<dyn Clock> = ManualClock::shared();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| Comm::with_clock(rank, n, rx, senders.clone(), clock.clone()))
        .collect()
}

/// Run `f` on every rank of an `n`-rank world (one OS thread per
/// rank) and return outcomes in rank order.
///
/// A panic in any rank propagates out of `run_world` after the other
/// ranks finish or deadlock-free ranks exit; tests rely on this.
pub fn run_world<R, F>(n: usize, f: F) -> Vec<RankOutcome<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_on(build_world(n), f)
}

/// [`run_world`] over a world built by [`build_world_deterministic`]:
/// same execution, but all telemetry timestamps come from one frozen
/// simulated clock, so repeated identical runs emit byte-identical
/// telemetry.
pub fn run_world_deterministic<R, F>(n: usize, f: F) -> Vec<RankOutcome<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_on(build_world_deterministic(n), f)
}

/// [`run_world_deterministic`] under a seeded schedule perturbation:
/// message delivery and rank progress are jittered within the legal
/// reorderings (per-(src, tag) FIFO preserved; `Src::Any` choice
/// randomized among concurrent sources), and every rank runs a
/// vector-clock happens-before tracker whose findings ride
/// [`RankOutcome::hb`].
///
/// A schedule-independent protocol produces identical results,
/// telemetry, and zero violations for every `seed`; that is exactly
/// what `pdnn-protocheck` pass 2 asserts across K seeds.
pub fn run_world_perturbed<R, F>(n: usize, seed: u64, f: F) -> Vec<RankOutcome<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let base = pdnn_util::Prng::new(seed);
    let mut comms = build_world_deterministic(n);
    for comm in &mut comms {
        comm.enable_hb();
        comm.enable_perturbation(base.split(comm.rank() as u64 + 1).next_u64());
    }
    run_on(comms, |comm: &mut Comm| {
        comm.startup_jitter();
        f(comm)
    })
}

/// [`run_world_deterministic`] under a seeded [`FaultPlan`]: every
/// rank applies the plan against its own logical progress, so kills,
/// stalls, and message drops land at the same point run after run and
/// the whole execution — failure, detection, recovery — is
/// bit-deterministic.
///
/// Rank closures must be written against the timed collective
/// semantics: `bcast`/`reduce`/`barrier` return
/// [`CommError::RankDead`](crate::CommError::RankDead) (or
/// `Timeout`) instead of blocking when a peer is gone, and a killed
/// rank sees [`CommError::Killed`](crate::CommError::Killed) from the
/// injection point on (it should unwind its closure normally, not
/// panic).
pub fn run_world_faulted<R, F>(n: usize, plan: &FaultPlan, f: F) -> Vec<RankOutcome<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(n > 0, "world needs at least one rank");
    let clock: Arc<dyn Clock> = ManualClock::shared();
    let plan = Arc::new(plan.clone());
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    let comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            let mut comm = Comm::with_clock(rank, n, rx, senders.clone(), clock.clone());
            comm.enable_faults(plan.clone());
            comm
        })
        .collect();
    run_on(comms, f)
}

fn run_on<R, F>(comms: Vec<Comm>, f: F) -> Vec<RankOutcome<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let n = comms.len();
    let mut outcomes: Vec<Option<RankOutcome<R>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, mut comm) in comms.into_iter().enumerate() {
            let f = &f;
            handles.push((
                rank,
                scope.spawn(move || {
                    let result = f(&mut comm);
                    let hb = comm.hb_finish();
                    let events = comm.take_events();
                    let telemetry = comm.take_telemetry();
                    let trace = telemetry.comm.clone();
                    RankOutcome {
                        rank,
                        result,
                        trace,
                        telemetry,
                        hb,
                        events,
                    }
                }),
            ));
        }
        for (rank, handle) in handles {
            match handle.join() {
                Ok(outcome) => outcomes[rank] = Some(outcome),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    outcomes
        .into_iter()
        // pdnn-lint: allow(l3-no-unwrap): the join loop above either filled every slot or resumed a rank panic
        .map(|o| o.expect("every rank joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;

    #[test]
    fn results_are_in_rank_order() {
        let results = run_world(5, |comm| comm.rank() * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.result, i * 2);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_world(1, |comm| {
            let mut v = vec![5.0f64];
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
            comm.barrier().unwrap();
            v[0]
        });
        assert_eq!(results[0].result, 5.0);
    }

    #[test]
    #[should_panic(expected = "deliberate rank failure")]
    fn rank_panic_propagates() {
        run_world(3, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate rank failure");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_world_rejected() {
        build_world(0);
    }

    #[test]
    fn build_world_wires_every_pair() {
        use crate::message::{Payload, Src};
        let mut comms = build_world(3);
        // Drive manually without threads: 0 -> 2, then 2 reads.
        comms[0].send(2, 1, Payload::U64(vec![9])).unwrap();
        let pkt = comms[2].recv(Src::Of(0), 1).unwrap();
        assert_eq!(pkt.payload.into_u64(), vec![9]);
    }

    #[test]
    fn traces_survive_into_outcomes() {
        let results = run_world(2, |comm| {
            let mut v = vec![1.0f32; 10];
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
        });
        for r in &results {
            assert!(r.trace.collective.seconds >= 0.0);
            assert!(r.trace.collective.bytes_sent > 0);
            // The same numbers ride the telemetry snapshot.
            assert_eq!(r.telemetry.comm, r.trace);
        }
    }

    #[test]
    fn collectives_emit_named_spans() {
        let results = run_world(2, |comm| {
            let mut v = vec![1.0f32; 10];
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
            comm.barrier().unwrap();
        });
        for r in &results {
            let names: Vec<&str> = r.telemetry.spans.iter().map(|s| s.name()).collect();
            assert!(names.contains(&"allreduce"), "{names:?}");
            assert!(names.contains(&"barrier"), "{names:?}");
            assert!(r
                .telemetry
                .spans
                .iter()
                .all(|s| s.kind == pdnn_obs::SpanKind::CommCollective));
        }
    }
}
