//! Deterministic fault injection for simulated worlds.
//!
//! A [`FaultPlan`] is a declarative schedule of failures threaded
//! through [`crate::run_world_faulted`]: kill rank R right before its
//! K-th collective, stall a rank for D sim-ticks, or drop/delay the
//! N-th point-to-point message on a link. Injection points are indexed
//! by *logical* progress (per-rank collective sequence numbers,
//! per-link message counts), never by wall-clock time, so the same
//! plan reproduces the same failure — and the same recovery — bit for
//! bit, run after run.
//!
//! Death is propagated by control packets, not by timeouts: a killed
//! rank's last act is to send `CTRL_DEATH` to every peer. Channels are
//! FIFO per pair, so by the time a peer observes the death packet it
//! has already received every real message the dead rank sent — peers
//! learn of the death at a deterministic point in their own receive
//! streams. Timeouts exist only as a safety net for *silent* failures
//! (a stalled rank that never reports in), where the collective root
//! evicts the missing rank with `CTRL_EVICT` after its window expires.

use pdnn_util::Prng;
use std::time::Duration;

/// Duration of one simulated tick used by [`FaultAction::Stall`] and
/// [`FaultAction::DelayMessage`].
pub const FAULT_TICK: Duration = Duration::from_millis(1);

/// One scheduled failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Rank `rank` dies immediately before starting its
    /// `before_collective`-th collective (0-based per-rank count).
    /// It notifies every peer with a `CTRL_DEATH` control packet and
    /// then returns [`crate::CommError::Killed`] from every subsequent
    /// communication call.
    Kill {
        /// Victim rank.
        rank: usize,
        /// Per-rank collective sequence number to die before.
        before_collective: u64,
    },
    /// Rank `rank` sleeps `ticks` × [`FAULT_TICK`] immediately before
    /// starting its `before_collective`-th collective. Long stalls
    /// exercise the timeout/eviction path.
    Stall {
        /// Stalled rank.
        rank: usize,
        /// Per-rank collective sequence number to stall before.
        before_collective: u64,
        /// Stall length in sim-ticks.
        ticks: u32,
    },
    /// Delay the `nth` message (0-based, counted per `(from, to)`
    /// link) by `ticks` × [`FAULT_TICK`] before injection.
    DelayMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based message index on the link.
        nth: u64,
        /// Delay in sim-ticks.
        ticks: u32,
    },
    /// Silently drop the `nth` message (0-based, counted per
    /// `(from, to)` link). The receiver can only discover the loss via
    /// its timeout window.
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based message index on the link.
        nth: u64,
    },
}

/// A deterministic, seeded schedule of failures for one world run.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed this plan was derived from (recorded for reproduction; the
    /// actions themselves are already fully explicit).
    pub seed: u64,
    /// Scheduled failures, applied by every rank against its own
    /// logical progress.
    pub actions: Vec<FaultAction>,
    /// How long a collective *root* waits for each contribution before
    /// evicting the missing rank. Kills are detected via death packets
    /// (deterministic); this window only catches silent stalls and
    /// dropped messages.
    pub detect_timeout: Duration,
    /// How long a non-root rank waits on the root before giving up.
    /// Generous by default: a worker must outlast the master's whole
    /// recovery cycle without falsely declaring the world dead.
    pub worker_timeout: Duration,
}

impl FaultPlan {
    /// An empty plan (no failures) with default timeout windows.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            actions: Vec::new(),
            detect_timeout: Duration::from_secs(2),
            worker_timeout: Duration::from_secs(60),
        }
    }

    /// Add a [`FaultAction::Kill`].
    pub fn kill(mut self, rank: usize, before_collective: u64) -> Self {
        self.actions.push(FaultAction::Kill {
            rank,
            before_collective,
        });
        self
    }

    /// Add a [`FaultAction::Stall`].
    pub fn stall(mut self, rank: usize, before_collective: u64, ticks: u32) -> Self {
        self.actions.push(FaultAction::Stall {
            rank,
            before_collective,
            ticks,
        });
        self
    }

    /// Add a [`FaultAction::DelayMessage`].
    pub fn delay_message(mut self, from: usize, to: usize, nth: u64, ticks: u32) -> Self {
        self.actions.push(FaultAction::DelayMessage {
            from,
            to,
            nth,
            ticks,
        });
        self
    }

    /// Add a [`FaultAction::DropMessage`].
    pub fn drop_message(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.actions
            .push(FaultAction::DropMessage { from, to, nth });
        self
    }

    /// Override both timeout windows.
    pub fn with_timeouts(mut self, detect: Duration, worker: Duration) -> Self {
        self.detect_timeout = detect;
        self.worker_timeout = worker;
        self
    }

    /// Seeded single-kill plan: derive the victim (a non-root rank in
    /// `1..world`) and its death point (a collective index in
    /// `0..max_collective`) deterministically from `seed`. The same
    /// seed always produces the same plan.
    pub fn seeded_kill(seed: u64, world: usize, max_collective: u64) -> Self {
        assert!(world >= 2, "a seeded kill needs at least one non-root rank");
        assert!(max_collective >= 1, "need a non-empty collective range");
        let mut rng = Prng::new(seed ^ 0xFA17_FA17_FA17_FA17);
        let victim = 1 + rng.index(world - 1);
        let at = rng.index(usize::try_from(max_collective).unwrap_or(usize::MAX)) as u64;
        FaultPlan::new(seed).kill(victim, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_actions() {
        let plan = FaultPlan::new(7)
            .kill(2, 5)
            .stall(1, 3, 10)
            .delay_message(0, 1, 4, 2)
            .drop_message(1, 0, 0)
            .with_timeouts(Duration::from_millis(100), Duration::from_secs(5));
        assert_eq!(plan.actions.len(), 4);
        assert_eq!(plan.detect_timeout, Duration::from_millis(100));
        assert_eq!(
            plan.actions[0],
            FaultAction::Kill {
                rank: 2,
                before_collective: 5
            }
        );
    }

    #[test]
    fn seeded_kill_is_reproducible_and_in_range() {
        let a = FaultPlan::seeded_kill(42, 4, 20);
        let b = FaultPlan::seeded_kill(42, 4, 20);
        assert_eq!(a.actions, b.actions);
        let FaultAction::Kill {
            rank,
            before_collective,
        } = a.actions[0]
        else {
            panic!("expected a kill");
        };
        assert!((1..4).contains(&rank));
        assert!(before_collective < 20);
        // A different seed explores a different plan at least sometimes.
        let plans: Vec<_> = (0..16)
            .map(|s| FaultPlan::seeded_kill(s, 4, 20).actions)
            .collect();
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
    }
}
