//! # pdnn-mpisim — in-process MPI-style message passing
//!
//! The communication substrate standing in for MPI-on-BG/Q (see
//! DESIGN.md substitutions): ranks are OS threads inside one process,
//! point-to-point messages carry MPI semantics (tag and source
//! matching, per-pair FIFO, `ANY_SOURCE`), and the textbook collective
//! algorithms are built on top — binomial broadcast/reduce, recursive-
//! doubling allreduce, dissemination barrier, ring allgather.
//!
//! Functional correctness of the distributed trainer is tested on this
//! runtime for real (actual threads, actual data movement, actual
//! synchronization); large-scale *timing* comes from the machine model
//! in `pdnn-bgq`. Each rank accumulates a [`CommTrace`] splitting its
//! communication into point-to-point and collective classes, mirroring
//! the paper's Figures 4–5 breakdown.
//!
//! Telemetry types ([`CommTrace`], [`ClassTotals`], [`Span`]) are
//! defined in `pdnn-obs` and re-exported here under their historical
//! names; every rank additionally carries a `pdnn_obs` recorder
//! ([`Comm::recorder`]) whose snapshot rides [`RankOutcome::telemetry`].
//!
//! ```
//! use pdnn_mpisim::{run_world, ReduceOp};
//!
//! let results = run_world(4, |comm| {
//!     let mut v = vec![comm.rank() as f64];
//!     comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
//!     v[0]
//! });
//! assert!(results.iter().all(|r| r.result == 6.0));
//! ```

pub mod collectives;
pub mod comm;
pub mod events;
pub mod fault;
pub mod hb;
pub mod message;
pub mod runner;
pub mod timeline;
pub mod trace;
pub mod vtime;
pub mod wire;

pub use collectives::{CollElem, ReduceOp};
pub use comm::{comm_ok, Comm, CommError};
pub use events::{events_from_jsonl, events_to_jsonl, CommEvent};
pub use fault::{FaultAction, FaultPlan, FAULT_TICK};
pub use hb::{HbTracker, HbViolation};
pub use message::{Packet, Payload, Src};
pub use runner::{
    build_world, build_world_deterministic, run_world, run_world_deterministic, run_world_faulted,
    run_world_perturbed, RankOutcome,
};
pub use timeline::{render_gantt, Span, SpanKind, SpanRecorder};
pub use trace::{ClassTotals, CommClass, CommTrace};
pub use vtime::{AlphaBeta, LinkModel};
pub use wire::WireCodec;
