//! Per-rank communication accounting — adapter over [`pdnn_obs`].
//!
//! The paper's Figures 4 and 5 break each process's MPI time into
//! *collective* and *point-to-point* categories per function. The
//! accounting structures and their logic live in
//! [`pdnn_obs::metrics`]; this module re-exports them under their
//! historical names so existing mpisim consumers keep compiling.
//! There is exactly one definition of [`ClassTotals`] in the
//! workspace, and it is not here.

pub use pdnn_obs::{ClassTotals, CommClass};

/// Historical name for [`pdnn_obs::CommStats`].
pub type CommTrace = pdnn_obs::CommStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_names_reach_the_obs_definitions() {
        let mut t = CommTrace::default();
        t.class_mut(CommClass::PointToPoint).bytes_sent = 10;
        t.class_mut(CommClass::Collective).bytes_sent = 20;
        assert_eq!(t.p2p.bytes_sent, 10);
        assert_eq!(t.class(CommClass::Collective).bytes_sent, 20);
        assert_eq!(t.total_bytes(), 30);
        let mut sum = CommTrace::default();
        sum.merge(&t);
        sum.merge(&t);
        assert_eq!(sum.total_bytes(), 60);
        // Same type, not a parallel definition.
        let _: &pdnn_obs::CommStats = &t;
        let _: ClassTotals = pdnn_obs::ClassTotals::default();
    }
}
