//! Per-rank communication accounting.
//!
//! The paper's Figures 4 and 5 break each process's MPI time into
//! *collective* and *point-to-point* categories per function. The
//! tracer records, for every rank, time blocked in and bytes moved by
//! each category, so functional runs produce the same breakdown at
//! laptop scale (and validate the shape of the large-scale model).

/// Communication category, matching the paper's figure split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommClass {
    /// Direct send/recv traffic (e.g. the master's `load_data`).
    PointToPoint,
    /// Traffic inside a collective (e.g. `sync_weights` broadcast).
    Collective,
}

/// Totals for one category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassTotals {
    /// Seconds spent in blocking send/recv calls.
    pub seconds: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Number of send operations.
    pub sends: u64,
    /// Number of receive operations.
    pub recvs: u64,
}

/// Per-rank communication trace.
#[derive(Clone, Debug, Default)]
pub struct CommTrace {
    /// Point-to-point totals.
    pub p2p: ClassTotals,
    /// Collective totals.
    pub collective: ClassTotals,
    /// Completed collective operations (barrier counts as one).
    pub collectives_completed: u64,
}

impl CommTrace {
    /// Mutable totals for a class.
    pub fn class_mut(&mut self, class: CommClass) -> &mut ClassTotals {
        match class {
            CommClass::PointToPoint => &mut self.p2p,
            CommClass::Collective => &mut self.collective,
        }
    }

    /// Totals for a class.
    pub fn class(&self, class: CommClass) -> &ClassTotals {
        match class {
            CommClass::PointToPoint => &self.p2p,
            CommClass::Collective => &self.collective,
        }
    }

    /// Total seconds across both classes.
    pub fn total_seconds(&self) -> f64 {
        self.p2p.seconds + self.collective.seconds
    }

    /// Total bytes moved (sent + received, both classes).
    pub fn total_bytes(&self) -> u64 {
        self.p2p.bytes_sent
            + self.p2p.bytes_received
            + self.collective.bytes_sent
            + self.collective.bytes_received
    }

    /// Merge another trace (e.g. summing across ranks).
    pub fn merge(&mut self, other: &CommTrace) {
        for class in [CommClass::PointToPoint, CommClass::Collective] {
            let o = *other.class(class);
            let t = self.class_mut(class);
            t.seconds += o.seconds;
            t.bytes_sent += o.bytes_sent;
            t.bytes_received += o.bytes_received;
            t.sends += o.sends;
            t.recvs += o.recvs;
        }
        self.collectives_completed += other.collectives_completed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accessors_route_correctly() {
        let mut t = CommTrace::default();
        t.class_mut(CommClass::PointToPoint).bytes_sent = 10;
        t.class_mut(CommClass::Collective).bytes_sent = 20;
        assert_eq!(t.p2p.bytes_sent, 10);
        assert_eq!(t.collective.bytes_sent, 20);
        assert_eq!(t.class(CommClass::Collective).bytes_sent, 20);
        assert_eq!(t.total_bytes(), 30);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CommTrace::default();
        a.p2p.seconds = 1.0;
        a.p2p.sends = 2;
        a.collectives_completed = 1;
        let mut b = CommTrace::default();
        b.p2p.seconds = 0.5;
        b.collective.recvs = 3;
        b.collectives_completed = 4;
        a.merge(&b);
        assert!((a.p2p.seconds - 1.5).abs() < 1e-12);
        assert_eq!(a.p2p.sends, 2);
        assert_eq!(a.collective.recvs, 3);
        assert_eq!(a.collectives_completed, 5);
        assert!((a.total_seconds() - 1.5).abs() < 1e-12);
    }
}
