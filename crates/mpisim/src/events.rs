//! Comm-event trace: the ordered, per-rank record of every abstract
//! protocol action a rank performed.
//!
//! Where [`CommTrace`](crate::CommTrace) aggregates *how much* a rank
//! communicated (bytes, ops, seconds), the event trace records *what*
//! it did, in order: each point-to-point send/receive outside a
//! collective, and each completed collective invocation. This is the
//! hook `pdnn-protomc` replays through the abstract protocol automata
//! to prove the model checker's guarantees cover the real code
//! (trace conformance), so events carry exactly the protocol-visible
//! shape of an operation — peer, tag, payload kind, element count,
//! and for collectives the operation name, root, and the first `u64`
//! element (which makes command-header opcodes observable).
//!
//! Serialization is hand-rolled JSONL like every other report in the
//! workspace (no serde); [`events_to_jsonl`] and
//! [`events_from_jsonl`] round-trip exactly.

use std::fmt::Write as _;

/// One observable communication action on a rank, in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommEvent {
    /// Point-to-point send issued outside any collective.
    Send {
        /// Destination rank.
        to: usize,
        /// User tag.
        tag: u64,
        /// Payload kind name (`"F32"`, `"U64"`, …).
        kind: &'static str,
        /// Element count of the payload.
        len: usize,
    },
    /// Point-to-point receive completed outside any collective.
    Recv {
        /// Source rank the message actually came from.
        from: usize,
        /// Tag the receive matched.
        tag: u64,
        /// Payload kind name.
        kind: &'static str,
        /// Element count of the payload.
        len: usize,
    },
    /// One completed collective invocation on this rank.
    Coll {
        /// Operation name (`"bcast"`, `"reduce"`, `"barrier"`, …).
        op: &'static str,
        /// Root rank (0 for unrooted operations).
        root: usize,
        /// Element kind name of the buffer.
        kind: &'static str,
        /// Element count of the buffer.
        len: usize,
        /// First element when the buffer is `u64` — the command
        /// opcode for protocol header broadcasts.
        first: Option<u64>,
        /// Whether the invocation succeeded on this rank. A timed
        /// root drains every contribution even after observing a
        /// failure, so its event stream stays command-aligned; the
        /// failure is recorded here as `ok: false`.
        ok: bool,
    },
}

/// Intern a payload-kind name back to the `'static` strings the
/// writer used (the parser's inverse of [`Payload::kind`]).
///
/// [`Payload::kind`]: crate::Payload::kind
fn intern_kind(s: &str) -> Option<&'static str> {
    match s {
        "Empty" => Some("Empty"),
        "F32" => Some("F32"),
        "F64" => Some("F64"),
        "U64" => Some("U64"),
        "Bytes" => Some("Bytes"),
        "F16" => Some("F16"),
        "QI8" => Some("QI8"),
        _ => None,
    }
}

/// Intern a collective operation name.
fn intern_op(s: &str) -> Option<&'static str> {
    match s {
        "bcast" => Some("bcast"),
        "reduce" => Some("reduce"),
        "barrier" => Some("barrier"),
        "allreduce" => Some("allreduce"),
        "allreduce_rabenseifner" => Some("allreduce_rabenseifner"),
        "allreduce_ring" => Some("allreduce_ring"),
        "allreduce_tree" => Some("allreduce_tree"),
        "gather" => Some("gather"),
        "scatter" => Some("scatter"),
        "allgather" => Some("allgather"),
        _ => None,
    }
}

impl CommEvent {
    /// Render this event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            CommEvent::Send { to, tag, kind, len } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"send\",\"to\":{to},\"tag\":{tag},\"kind\":\"{kind}\",\"len\":{len}}}"
                );
            }
            CommEvent::Recv {
                from,
                tag,
                kind,
                len,
            } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"recv\",\"from\":{from},\"tag\":{tag},\"kind\":\"{kind}\",\"len\":{len}}}"
                );
            }
            CommEvent::Coll {
                op,
                root,
                kind,
                len,
                first,
                ok,
            } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"coll\",\"op\":\"{op}\",\"root\":{root},\"kind\":\"{kind}\",\"len\":{len},\"first\":"
                );
                match first {
                    Some(v) => {
                        let _ = write!(out, "{v}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"ok\":{ok}}}");
            }
        }
        out
    }

    /// Parse one JSON object produced by [`CommEvent::to_json`].
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing field {key:?} in {line:?}"))
        };
        let usize_of = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse::<usize>()
                .map_err(|e| format!("bad {key} in {line:?}: {e}"))
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse::<u64>()
                .map_err(|e| format!("bad {key} in {line:?}: {e}"))
        };
        let kind_of = |key: &str| -> Result<&'static str, String> {
            let raw = get(key)?;
            intern_kind(raw).ok_or_else(|| format!("unknown payload kind {raw:?}"))
        };
        match get("ev")? {
            "send" => Ok(CommEvent::Send {
                to: usize_of("to")?,
                tag: u64_of("tag")?,
                kind: kind_of("kind")?,
                len: usize_of("len")?,
            }),
            "recv" => Ok(CommEvent::Recv {
                from: usize_of("from")?,
                tag: u64_of("tag")?,
                kind: kind_of("kind")?,
                len: usize_of("len")?,
            }),
            "coll" => {
                let raw_op = get("op")?;
                let op =
                    intern_op(raw_op).ok_or_else(|| format!("unknown collective op {raw_op:?}"))?;
                let first = match get("first")? {
                    "null" => None,
                    v => Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("bad first in {line:?}: {e}"))?,
                    ),
                };
                let ok = match get("ok")? {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad ok value {other:?}")),
                };
                Ok(CommEvent::Coll {
                    op,
                    root: usize_of("root")?,
                    kind: kind_of("kind")?,
                    len: usize_of("len")?,
                    first,
                    ok,
                })
            }
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

/// Split one flat JSON object (no nesting, string values without
/// escapes — exactly what [`CommEvent::to_json`] emits) into
/// `(key, raw value)` pairs; string values are returned unquoted.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut fields = Vec::new();
    for part in body.split(',') {
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed field {part:?}"))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("malformed key {k:?}"))?;
        let value = v.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(value);
        fields.push((key, value));
    }
    Ok(fields)
}

/// Serialize an event trace as JSONL (one event per line, trailing
/// newline after each).
pub fn events_to_jsonl(events: &[CommEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Parse a JSONL event trace produced by [`events_to_jsonl`].
pub fn events_from_jsonl(text: &str) -> Result<Vec<CommEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(CommEvent::from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CommEvent> {
        vec![
            CommEvent::Send {
                to: 1,
                tag: 17,
                kind: "U64",
                len: 5,
            },
            CommEvent::Recv {
                from: 0,
                tag: 17,
                kind: "U64",
                len: 5,
            },
            CommEvent::Coll {
                op: "bcast",
                root: 0,
                kind: "U64",
                len: 1,
                first: Some(2),
                ok: true,
            },
            CommEvent::Coll {
                op: "reduce",
                root: 0,
                kind: "F32",
                len: 1024,
                first: None,
                ok: false,
            },
            CommEvent::Coll {
                op: "barrier",
                root: 0,
                kind: "Empty",
                len: 0,
                first: None,
                ok: true,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let events = sample();
        let text = events_to_jsonl(&events);
        let back = events_from_jsonl(&text).unwrap();
        assert_eq!(back, events);
        // And serialization is a fixed point: re-rendering the parsed
        // trace yields byte-identical text.
        assert_eq!(events_to_jsonl(&back), text);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(events_from_jsonl("not json").is_err());
        assert!(events_from_jsonl("{\"ev\":\"warp\"}").is_err());
        assert!(events_from_jsonl("{\"ev\":\"send\",\"to\":1}").is_err());
        assert!(events_from_jsonl(
            "{\"ev\":\"send\",\"to\":1,\"tag\":2,\"kind\":\"Q8\",\"len\":0}"
        )
        .is_err());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let events = sample();
        let mut text = String::from("\n");
        text.push_str(&events_to_jsonl(&events));
        text.push('\n');
        assert_eq!(events_from_jsonl(&text).unwrap(), events);
    }
}
