//! ASCII timelines of virtual-time runs — adapter over [`pdnn_obs`].
//!
//! The span type, validation, and Gantt renderer live in `pdnn_obs`
//! ([`pdnn_obs::SpanRecord`], [`pdnn_obs::render_gantt`]); this module
//! re-exports them under their historical mpisim names and keeps the
//! small [`SpanRecorder`] builder used by virtual-time examples. No
//! accounting logic is defined here.

pub use pdnn_obs::render_gantt;
pub use pdnn_obs::SpanKind;
/// Historical name for [`pdnn_obs::SpanRecord`].
pub use pdnn_obs::SpanRecord as Span;

use std::borrow::Cow;

/// Per-rank span recorder: a builder for `Vec<Span>` timelines.
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span; `end` must not precede `start`. Spans recorded
    /// this way default to [`SpanKind::Scalar`].
    pub fn record(&mut self, name: impl Into<Cow<'static, str>>, start: f64, end: f64) {
        self.record_kind(name, SpanKind::Scalar, start, end);
    }

    /// Record a span with an explicit kind.
    pub fn record_kind(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        kind: SpanKind,
        start: f64,
        end: f64,
    ) {
        self.spans.push(Span::new(name, kind, start, end));
    }

    /// Recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consume into the span list.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_in_order() {
        let mut r = SpanRecorder::new();
        r.record("compute", 0.0, 1.0);
        r.record_kind("reduce", SpanKind::CommCollective, 1.0, 1.5);
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans()[1].name(), "reduce");
        assert_eq!(r.spans()[1].kind, SpanKind::CommCollective);
        let spans = r.into_spans();
        assert_eq!(spans[0].end, 1.0);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_span_rejected() {
        SpanRecorder::new().record("x", 2.0, 1.0);
    }

    #[test]
    fn reexported_gantt_renders_recorded_spans() {
        let mut r = SpanRecorder::new();
        r.record("compute", 0.0, 8.0);
        r.record("reduce", 8.0, 10.0);
        let chart = render_gantt(&[r.into_spans()], 20);
        assert!(chart.contains("legend: c=compute r=reduce"), "{chart}");
    }
}
