//! ASCII timelines of virtual-time runs.
//!
//! The paper's Figures 2–5 are per-process time attributions; this
//! module renders the same story for virtual-time runs: each rank
//! records named spans against its virtual clock and the collected
//! timeline prints as a Gantt-style chart, making the master
//! bottleneck and worker idle time visible at a glance.

/// One named span on a rank's virtual clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Phase label (single char is used in the chart; the legend maps
    /// labels).
    pub name: &'static str,
    /// Start virtual time (seconds).
    pub start: f64,
    /// End virtual time.
    pub end: f64,
}

/// Per-rank span recorder.
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span; `end` must not precede `start`.
    pub fn record(&mut self, name: &'static str, start: f64, end: f64) {
        assert!(end >= start, "span '{name}' ends before it starts");
        self.spans.push(Span { name, start, end });
    }

    /// Recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consume into the span list.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

/// Render per-rank span lists as an ASCII Gantt chart of `width`
/// columns. Rank rows are in input order; spans are drawn with the
/// first character of their name, idle time as `.`, and overlaps
/// resolved last-writer-wins.
pub fn render_gantt(ranks: &[Vec<Span>], width: usize) -> String {
    assert!(width >= 10, "chart needs at least 10 columns");
    let t_max = ranks
        .iter()
        .flat_map(|spans| spans.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);
    if t_max <= 0.0 {
        return String::from("(empty timeline)\n");
    }
    let scale = width as f64 / t_max;
    let mut out = String::new();
    let mut legend: Vec<&'static str> = Vec::new();
    for (rank, spans) in ranks.iter().enumerate() {
        let mut row = vec!['.'; width];
        for span in spans {
            if !legend.contains(&span.name) {
                legend.push(span.name);
            }
            let c = span.name.chars().next().unwrap_or('?');
            let lo = (span.start * scale).floor() as usize;
            let hi = ((span.end * scale).ceil() as usize).clamp(lo + 1, width);
            for slot in row.iter_mut().take(hi.min(width)).skip(lo.min(width - 1)) {
                *slot = c;
            }
        }
        out.push_str(&format!("rank {rank:>3} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "          0{}{:.4}s\n",
        " ".repeat(width.saturating_sub(8)),
        t_max
    ));
    out.push_str("legend: ");
    for name in legend {
        out.push_str(&format!(
            "{}={} ",
            name.chars().next().unwrap_or('?'),
            name
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_in_order() {
        let mut r = SpanRecorder::new();
        r.record("compute", 0.0, 1.0);
        r.record("reduce", 1.0, 1.5);
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans()[1].name, "reduce");
        let spans = r.into_spans();
        assert_eq!(spans[0].end, 1.0);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_span_rejected() {
        SpanRecorder::new().record("x", 2.0, 1.0);
    }

    #[test]
    fn gantt_shows_proportional_blocks() {
        let ranks = vec![
            vec![
                Span { name: "compute", start: 0.0, end: 8.0 },
                Span { name: "reduce", start: 8.0, end: 10.0 },
            ],
            vec![Span { name: "compute", start: 0.0, end: 10.0 }],
        ];
        let chart = render_gantt(&ranks, 20);
        let lines: Vec<&str> = chart.lines().collect();
        // Rank 0: ~16 'c' then ~4 'r'; rank 1: all 'c'.
        assert!(lines[0].contains("rank   0"));
        let row0: String = lines[0].chars().filter(|&c| c == 'c' || c == 'r').collect();
        assert!(row0.matches('c').count() >= 14, "{chart}");
        assert!(row0.matches('r').count() >= 3, "{chart}");
        let row1: String = lines[1].chars().filter(|&c| c == 'c').collect();
        assert_eq!(row1.len(), 20, "{chart}");
        assert!(chart.contains("legend: c=compute r=reduce"));
    }

    #[test]
    fn idle_time_renders_as_dots() {
        let ranks = vec![vec![Span { name: "w", start: 5.0, end: 10.0 }]];
        let chart = render_gantt(&ranks, 20);
        let row = chart.lines().next().unwrap();
        assert!(row.contains('.'), "{chart}");
        assert!(row.contains('w'), "{chart}");
        // Leading half idle.
        let bar: String = row.chars().skip_while(|&c| c != '|').skip(1).take(20).collect();
        assert!(bar.starts_with(".........."), "{chart}");
    }

    #[test]
    fn empty_timeline_is_handled() {
        assert_eq!(render_gantt(&[], 20), "(empty timeline)\n");
        assert_eq!(render_gantt(&[vec![]], 20), "(empty timeline)\n");
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn narrow_chart_rejected() {
        render_gantt(&[], 2);
    }
}
