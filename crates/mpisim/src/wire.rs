//! Wire-level payload compression for collective traffic.
//!
//! A [`WireCodec`] transparently narrows `F32` collective payloads on
//! the simulated wire: `F16` halves bytes-on-wire via IEEE-754
//! binary16 (round-to-nearest-even), `Int8` quarters them via linear
//! quantization with a deterministic per-message scale
//! (`max_abs / 127`). Encoding happens inside [`Comm::send`] while a
//! codec-armed collective is running; decoding happens in the typed
//! receive path, so user code and the collective algorithms never see
//! the wire image. Byte accounting uses the *encoded* size, which is
//! what flows into [`CommTrace`] and the per-collective wire-byte
//! counters.
//!
//! Both codecs are deterministic (same input → same wire bytes) and
//! idempotent on their own output for `F16` (every binary16 value is
//! exactly representable in `f32`, so a decode/encode cycle is the
//! identity). `Int8` re-quantization can wobble by one ULP in the
//! scale, which is why broadcast-shaped collectives forward the
//! original wire image instead of re-encoding — see the
//! "encode-once" pattern in `crate::collectives`.
//!
//! [`Comm::send`]: crate::Comm::send
//! [`CommTrace`]: crate::CommTrace

use crate::message::Payload;

/// Compression applied to `F32` payloads inside codec-armed
/// collectives. `None` is the default and leaves every payload
/// untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireCodec {
    /// No compression: `f32` values travel as 4 bytes each.
    #[default]
    None,
    /// IEEE-754 binary16 with round-to-nearest-even: 2 bytes each.
    F16,
    /// Linear int8 quantization with deterministic scale
    /// `max_abs / 127`: 1 byte each plus a 4-byte scale.
    Int8,
}

impl WireCodec {
    /// Short name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::None => "none",
            WireCodec::F16 => "f16",
            WireCodec::Int8 => "int8",
        }
    }

    /// Parse a CLI spelling; the inverse of [`WireCodec::name`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(WireCodec::None),
            "f16" => Ok(WireCodec::F16),
            "int8" => Ok(WireCodec::Int8),
            other => Err(format!(
                "unknown wire codec `{other}` (expected none, f16, or int8)"
            )),
        }
    }
}

/// Convert an `f32` to binary16 bits, rounding to nearest even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN (NaN keeps a payload bit so it stays a NaN).
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half-precision range.
        let mut half_exp = (unbiased + 15) as u32;
        let mut half_mant = mant >> 13;
        let round = mant & 0x1fff;
        if round > 0x1000 || (round == 0x1000 && half_mant & 1 == 1) {
            half_mant += 1;
            if half_mant == 0x400 {
                half_mant = 0;
                half_exp += 1;
                if half_exp >= 31 {
                    return sign | 0x7c00;
                }
            }
        }
        return sign | ((half_exp as u16) << 10) | half_mant as u16;
    }
    if unbiased < -25 {
        return sign; // underflows past the smallest subnormal
    }
    // Subnormal half: shift the full 24-bit significand into place.
    let full = mant | 0x0080_0000;
    let shift = (13 - 14 - unbiased) as u32;
    let mut h = full >> shift;
    let rem = full & ((1u32 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if rem > halfway || (rem == halfway && h & 1 == 1) {
        h += 1; // a carry into bit 10 lands on the smallest normal
    }
    sign | h as u16
}

/// Convert binary16 bits back to an `f32` (exact: every binary16
/// value is representable).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let mant = u32::from(h & 0x3ff);
    let bits = if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal half: renormalize into an f32 exponent.
            let mut e: i32 = 113; // biased exponent of 2^-14
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
        }
    } else if exp == 31 {
        sign | 0x7f80_0000 | (mant << 13) // inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Quantize to int8 with the deterministic scale `max_abs / 127`.
/// All-zero (or non-finite-max) inputs use scale 0 and decode to
/// zeros.
fn quantize_i8(v: &[f32]) -> (f32, Vec<i8>) {
    // Note: an explicit loop, not `fold(max)` — `f32::max` ignores a
    // NaN operand, which would let a NaN element slip past the guard.
    let mut max_abs = 0.0f32;
    for &x in v {
        if !x.is_finite() {
            return (0.0, vec![0; v.len()]);
        }
        max_abs = max_abs.max(x.abs());
    }
    if pdnn_util::float::exactly_zero_f32(max_abs) {
        return (0.0, vec![0; v.len()]);
    }
    let scale = max_abs / 127.0;
    let q = v
        .iter()
        .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (scale, q)
}

/// Encode an `F32` payload under `codec`; every other payload kind
/// (and `WireCodec::None`) passes through untouched, so the hook is
/// safe to apply to already-encoded or non-float traffic.
pub fn encode(codec: WireCodec, payload: Payload) -> Payload {
    match (codec, payload) {
        (WireCodec::F16, Payload::F32(v)) => {
            Payload::F16(v.into_iter().map(f32_to_f16_bits).collect())
        }
        (WireCodec::Int8, Payload::F32(v)) => {
            let (scale, q) = quantize_i8(&v);
            Payload::QI8 { scale, q }
        }
        (_, p) => p,
    }
}

/// Decode a wire image by reference: `Some(F32)` for `F16`/`QI8`
/// payloads, `None` for anything already in its final form. Lets the
/// ring allgather decode a received chunk into the caller's buffer
/// while still forwarding the original wire image untouched, without
/// cloning the packet payload first.
pub fn decode_ref(payload: &Payload) -> Option<Payload> {
    match payload {
        Payload::F16(v) => Some(Payload::F32(
            v.iter().map(|&h| f16_bits_to_f32(h)).collect(),
        )),
        Payload::QI8 { scale, q } => Some(Payload::F32(
            q.iter().map(|&x| f32::from(x) * *scale).collect(),
        )),
        _ => None,
    }
}

/// Decode a wire image back to `F32`; payloads that are not wire
/// images pass through untouched. Unconditional: `F16`/`QI8`
/// payloads only ever originate from [`encode`].
pub fn decode(payload: Payload) -> Payload {
    match payload {
        Payload::F16(v) => Payload::F32(v.into_iter().map(f16_bits_to_f32).collect()),
        Payload::QI8 { scale, q } => {
            Payload::F32(q.into_iter().map(|x| f32::from(x) * scale).collect())
        }
        p => p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_f16(x: f32) -> f32 {
        f16_bits_to_f32(f32_to_f16_bits(x))
    }

    #[test]
    fn f16_exact_values_round_trip() {
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            1.5,
            0.25,
            65504.0,
            -65504.0,
            6.103_515_6e-5,
        ] {
            assert_eq!(roundtrip_f16(x).to_bits(), x.to_bits(), "x={x}");
        }
    }

    #[test]
    fn f16_is_idempotent_on_its_output() {
        let mut rng = pdnn_util::Prng::new(7);
        for _ in 0..10_000 {
            let x = rng.range(-1e4, 1e4) as f32;
            let once = roundtrip_f16(x);
            assert_eq!(roundtrip_f16(once).to_bits(), once.to_bits(), "x={x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly halfway between 1.0 and the next
        // binary16 value 1 + 2^-10; even mantissa (1.0) wins.
        assert_eq!(roundtrip_f16(1.0 + 2f32.powi(-11)), 1.0);
        // 1 + 3·2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9;
        // rounding up makes the mantissa even.
        assert_eq!(
            roundtrip_f16(1.0 + 3.0 * 2f32.powi(-11)),
            1.0 + 2f32.powi(-9)
        );
    }

    #[test]
    fn f16_handles_overflow_underflow_and_subnormals() {
        assert_eq!(roundtrip_f16(1e6), f32::INFINITY);
        assert_eq!(roundtrip_f16(-1e6), f32::NEG_INFINITY);
        assert_eq!(roundtrip_f16(1e-10), 0.0);
        assert!(roundtrip_f16(f32::NAN).is_nan());
        // Smallest binary16 subnormal: 2^-24.
        let tiny = 2f32.powi(-24);
        assert_eq!(roundtrip_f16(tiny), tiny);
        assert_eq!(roundtrip_f16(-tiny), -tiny);
    }

    #[test]
    fn f16_error_is_within_half_ulp() {
        let mut rng = pdnn_util::Prng::new(11);
        for _ in 0..10_000 {
            let x = rng.range(-100.0, 100.0) as f32;
            let y = roundtrip_f16(x);
            // binary16 has a 10-bit mantissa: relative error ≤ 2^-11.
            assert!((y - x).abs() <= x.abs() * 2f32.powi(-11) + 2f32.powi(-24));
        }
    }

    #[test]
    fn int8_scale_is_deterministic_and_max_maps_to_127() {
        let v = vec![0.5f32, -2.0, 1.25, 0.0];
        let (scale, q) = quantize_i8(&v);
        assert_eq!(scale, 2.0 / 127.0);
        assert_eq!(q[1], -127);
        let (scale2, q2) = quantize_i8(&v);
        assert_eq!((scale, q), (scale2, q2));
    }

    #[test]
    fn int8_zero_and_nonfinite_degrade_to_zeros() {
        assert_eq!(quantize_i8(&[0.0, 0.0]), (0.0, vec![0, 0]));
        let (scale, q) = quantize_i8(&[f32::NAN, 1.0]);
        assert_eq!(scale, 0.0);
        assert_eq!(q, vec![0, 0]);
    }

    #[test]
    fn encode_decode_round_trip_shapes() {
        let v: Vec<f32> = (0..17).map(|i| (i as f32).sin()).collect();
        for codec in [WireCodec::F16, WireCodec::Int8] {
            let enc = encode(codec, Payload::F32(v.clone()));
            assert_ne!(enc.kind(), "F32");
            assert!(enc.size_bytes() < Payload::F32(v.clone()).size_bytes());
            let dec = decode(enc.clone());
            let out = dec.into_f32();
            assert_eq!(out.len(), v.len());
            // Deterministic: encoding again yields identical wire bytes.
            assert_eq!(encode(codec, Payload::F32(v.clone())), enc);
        }
    }

    #[test]
    fn non_f32_payloads_pass_through() {
        let p = Payload::U64(vec![1, 2, 3]);
        assert_eq!(encode(WireCodec::F16, p.clone()), p);
        assert_eq!(decode(p.clone()), p);
        let f = Payload::F32(vec![1.0]);
        assert_eq!(encode(WireCodec::None, f.clone()), f);
    }

    #[test]
    fn decode_error_bounds() {
        let v: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        let f16 = decode(encode(WireCodec::F16, Payload::F32(v.clone()))).into_f32();
        for (a, b) in v.iter().zip(&f16) {
            assert!((a - b).abs() <= a.abs() * 2f32.powi(-11) + 1e-7);
        }
        let i8v = decode(encode(WireCodec::Int8, Payload::F32(v.clone()))).into_f32();
        let max_abs = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (a, b) in v.iter().zip(&i8v) {
            // Quantization step is max_abs/127; error ≤ half a step.
            assert!((a - b).abs() <= max_abs / 127.0 * 0.5 + 1e-7);
        }
    }
}
