//! Virtual time: protocol-accurate timing simulation.
//!
//! The functional runtime executes the *real* communication protocol;
//! attaching a [`LinkModel`] makes each rank additionally carry a
//! virtual clock:
//!
//! * a send advances the **sender's** clock by the modeled transfer
//!   time (injection serializes — the mechanism that makes a
//!   sequential master fan-out linear in ranks, paper Section V.B);
//! * a receive advances the **receiver's** clock to at least the
//!   sender's completion time (a message cannot be consumed before it
//!   was produced);
//! * [`crate::Comm::advance_vtime`] charges modeled compute.
//!
//! Because the collectives are implemented on point-to-point
//! messages, their virtual cost *emerges* as the critical path of the
//! actual algorithm — a binomial broadcast costs ~⌈log₂ P⌉ message
//! times without any collective-specific model. This bridges the
//! functional layer and the analytic model in `pdnn-perfmodel`: the
//! same protocol that is tested for correctness also produces
//! modeled timings whose *shape* can be cross-checked against the
//! closed-form expressions (see `tests/model_validation.rs`).

/// Cost model for a single point-to-point transfer.
pub trait LinkModel: Send + Sync {
    /// Seconds to move `bytes` from one rank to another (software
    /// latency + wire time).
    fn p2p_seconds(&self, bytes: u64) -> f64;
}

/// Constant-parameter α–β model: `α + bytes / bandwidth`.
#[derive(Clone, Copy, Debug)]
pub struct AlphaBeta {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Bandwidth, bytes/second.
    pub beta_bytes_per_s: f64,
}

impl LinkModel for AlphaBeta {
    fn p2p_seconds(&self, bytes: u64) -> f64 {
        self.alpha + pdnn_util::cast::exact_f64(bytes) / self.beta_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use crate::runner::run_world;
    use crate::{ReduceOp, Src};
    use std::sync::Arc;

    const COST: f64 = 1.0; // 1 second per message, bytes ignored
    fn unit_model() -> Arc<dyn LinkModel> {
        Arc::new(AlphaBeta {
            alpha: COST,
            beta_bytes_per_s: f64::INFINITY,
        })
    }

    #[test]
    fn alpha_beta_formula() {
        let m = AlphaBeta {
            alpha: 2e-6,
            beta_bytes_per_s: 1e9,
        };
        assert!((m.p2p_seconds(0) - 2e-6).abs() < 1e-15);
        assert!((m.p2p_seconds(1_000_000_000) - 1.000002).abs() < 1e-9);
    }

    #[test]
    fn send_serializes_on_the_sender() {
        // A 1 -> many fan-out costs the sender one unit per message.
        let results = run_world(5, |comm| {
            comm.set_link_model(unit_model());
            if comm.rank() == 0 {
                for dst in 1..comm.size() {
                    comm.send(dst, 1, Payload::Empty).unwrap();
                }
            } else {
                comm.recv(Src::Of(0), 1).unwrap();
            }
            comm.vtime()
        });
        assert!((results[0].result - 4.0 * COST).abs() < 1e-12);
        // The last receiver sees the fan-out tail: its message was
        // completed at t = 4.
        assert!((results[4].result - 4.0 * COST).abs() < 1e-12);
        // The first receiver only waits one message time.
        assert!((results[1].result - COST).abs() < 1e-12);
    }

    #[test]
    fn binomial_bcast_costs_log_rounds() {
        // The emergent-collective-cost property: with unit message
        // cost, a binomial broadcast over P ranks completes at
        // ceil(log2 P) on the deepest leaf, vs P-1 for the fan-out.
        for size in [4usize, 8, 16, 32] {
            let results = run_world(size, move |comm| {
                comm.set_link_model(unit_model());
                let mut buf = if comm.rank() == 0 {
                    vec![1.0f32]
                } else {
                    vec![]
                };
                comm.bcast(&mut buf, 0).unwrap();
                comm.vtime()
            });
            let max_vtime = results.iter().map(|r| r.result).fold(0.0, f64::max);
            let depth = (size as f64).log2().ceil();
            // Root sends up to log2(P) messages serially; leaves at
            // depth d receive at sum of ancestors' send positions —
            // bounded by 2*log2(P) units, far below P-1.
            assert!(
                max_vtime <= 2.0 * depth * COST + 1e-9,
                "size={size}: bcast critical path {max_vtime}"
            );
            assert!(max_vtime >= depth * COST - 1e-9, "size={size}: {max_vtime}");
        }
    }

    #[test]
    fn bcast_beats_sequential_fanout_at_scale() {
        // Section V.B, functionally: same payload, same link model,
        // collective vs master fan-out.
        let size = 32;
        let fanout = run_world(size, move |comm| {
            comm.set_link_model(unit_model());
            if comm.rank() == 0 {
                for dst in 1..comm.size() {
                    comm.send(dst, 1, Payload::F32(vec![0.0; 64])).unwrap();
                }
            } else {
                comm.recv(Src::Of(0), 1).unwrap();
            }
            comm.vtime()
        })
        .iter()
        .map(|r| r.result)
        .fold(0.0, f64::max);

        let bcast = run_world(size, move |comm| {
            comm.set_link_model(unit_model());
            let mut buf = if comm.rank() == 0 {
                vec![0.0f32; 64]
            } else {
                vec![]
            };
            comm.bcast(&mut buf, 0).unwrap();
            comm.vtime()
        })
        .iter()
        .map(|r| r.result)
        .fold(0.0, f64::max);

        assert!(
            bcast * 3.0 < fanout,
            "bcast {bcast} not clearly faster than fan-out {fanout}"
        );
    }

    #[test]
    fn compute_charges_propagate_through_reductions() {
        // Synchronous reduce: the root's virtual time is bounded below
        // by the slowest worker's compute charge — the load-imbalance
        // mechanism of paper Section V.C, emerging functionally.
        let results = run_world(4, |comm| {
            comm.set_link_model(unit_model());
            // Worker 3 is the straggler.
            let compute = if comm.rank() == 3 { 10.0 } else { 2.0 };
            comm.advance_vtime(compute);
            let mut v = vec![comm.rank() as f64];
            comm.reduce(&mut v, ReduceOp::Sum, 0).unwrap();
            comm.vtime()
        });
        assert!(
            results[0].result >= 10.0 + COST - 1e-12,
            "root finished at {} before the straggler",
            results[0].result
        );
    }

    #[test]
    fn no_model_means_zero_vtime() {
        let results = run_world(3, |comm| {
            let mut v = vec![1.0f64];
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
            comm.vtime()
        });
        assert!(results.iter().all(|r| r.result == 0.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_compute_charge_rejected() {
        run_world(1, |comm| comm.advance_vtime(-1.0));
    }
}
