//! Vector-clock happens-before tracking for the schedule-perturbation
//! race detector (`pdnn-protocheck` pass 2).
//!
//! Every rank carries a vector clock; each send ticks the sender's own
//! component and stamps the clock onto the packet, each consumed
//! receive merges the sender's clock into the receiver's. Three
//! invariants are checked while a perturbed schedule runs:
//!
//! * **Delivery monotonicity** — the sender component of successive
//!   packets delivered from one source must strictly increase
//!   (senders tick before every send), so a stale component means a
//!   duplicated or transport-reordered message
//!   ([`HbViolation::StaleDelivery`]).
//! * **No future self-knowledge** — a consumed packet cannot carry a
//!   receiver component larger than the receiver's own clock: the
//!   sender would know about receiver events that have not happened,
//!   i.e. a read was not ordered after the write that produced it
//!   ([`HbViolation::FutureSelfKnowledge`]).
//! * **Quiescence at exit** — no packet may remain parked or in
//!   flight when the rank body returns
//!   ([`HbViolation::UnconsumedAtExit`]); the dynamic counterpart of
//!   protocheck's static `p3-unconsumed-message` rule.
//!
//! The tracker is off by default (packets carry no clock and nothing
//! is checked); [`crate::run_world_perturbed`] switches it on.

use crate::message::Packet;
use std::fmt;

/// One detected ordering violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HbViolation {
    /// A delivered packet's sender clock component did not advance
    /// past the previous delivery from that source: duplication or
    /// transport reordering.
    StaleDelivery {
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// The stale sender component.
        clock_src: u64,
        /// The component already seen from that source.
        last_seen: u64,
    },
    /// A consumed packet claims knowledge of this rank's future: its
    /// receiver component exceeds the receiver's own event count.
    FutureSelfKnowledge {
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Receiver component carried by the packet.
        claimed: u64,
        /// Receiver's actual own-component value.
        actual: u64,
    },
    /// A packet was still parked or in flight when the rank exited.
    UnconsumedAtExit {
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
    },
}

impl fmt::Display for HbViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbViolation::StaleDelivery {
                src,
                tag,
                clock_src,
                last_seen,
            } => write!(
                f,
                "stale delivery from rank {src} (tag {tag}): sender clock \
                 {clock_src} <= previously seen {last_seen}"
            ),
            HbViolation::FutureSelfKnowledge {
                src,
                tag,
                claimed,
                actual,
            } => write!(
                f,
                "packet from rank {src} (tag {tag}) knows receiver event \
                 {claimed} but only {actual} have happened"
            ),
            HbViolation::UnconsumedAtExit { src, tag } => write!(
                f,
                "message from rank {src} (tag {tag}) never consumed before exit"
            ),
        }
    }
}

/// Per-rank vector-clock tracker.
#[derive(Clone, Debug)]
pub struct HbTracker {
    rank: usize,
    /// This rank's vector clock; component `r` counts the events of
    /// rank `r` this rank has (transitively) heard about.
    clock: Vec<u64>,
    /// Largest sender component delivered from each source so far.
    last_delivered: Vec<u64>,
    violations: Vec<HbViolation>,
}

impl HbTracker {
    /// Fresh tracker for `rank` in an `size`-rank world.
    pub fn new(rank: usize, size: usize) -> Self {
        assert!(rank < size, "hb tracker rank out of range");
        HbTracker {
            rank,
            clock: vec![0; size],
            last_delivered: vec![0; size],
            violations: Vec::new(),
        }
    }

    /// Record a send event: tick the own component and return the
    /// clock to stamp onto the outgoing packet.
    pub fn on_send(&mut self) -> Vec<u64> {
        self.clock[self.rank] += 1;
        self.clock.clone()
    }

    /// Record a packet entering this rank's custody (popped from the
    /// transport channel, whether or not it matches a posted receive).
    pub fn on_delivered(&mut self, pkt: &Packet) {
        let Some(c) = &pkt.clock else { return };
        let comp = c.get(pkt.src).copied().unwrap_or(0);
        let seen = self.last_delivered.get(pkt.src).copied().unwrap_or(0);
        if comp <= seen {
            self.violations.push(HbViolation::StaleDelivery {
                src: pkt.src,
                tag: pkt.tag,
                clock_src: comp,
                last_seen: seen,
            });
        } else if let Some(slot) = self.last_delivered.get_mut(pkt.src) {
            *slot = comp;
        }
    }

    /// Record a packet being consumed by a matching receive: check the
    /// no-future-self-knowledge invariant, then merge and tick.
    pub fn on_consumed(&mut self, pkt: &Packet) {
        let Some(c) = &pkt.clock else { return };
        let claimed = c.get(self.rank).copied().unwrap_or(0);
        if claimed > self.clock[self.rank] {
            self.violations.push(HbViolation::FutureSelfKnowledge {
                src: pkt.src,
                tag: pkt.tag,
                claimed,
                actual: self.clock[self.rank],
            });
        }
        for (own, &incoming) in self.clock.iter_mut().zip(c.iter()) {
            if incoming > *own {
                *own = incoming;
            }
        }
        self.clock[self.rank] += 1;
    }

    /// Record a packet left unconsumed at rank exit.
    pub fn on_unconsumed(&mut self, pkt: &Packet) {
        self.violations.push(HbViolation::UnconsumedAtExit {
            src: pkt.src,
            tag: pkt.tag,
        });
    }

    /// All violations recorded so far, leaving the tracker empty.
    pub fn take_violations(&mut self) -> Vec<HbViolation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    fn pkt(src: usize, tag: u64, clock: Vec<u64>) -> Packet {
        Packet {
            src,
            tag,
            sent_vtime: 0.0,
            clock: Some(clock),
            payload: Payload::Empty,
        }
    }

    #[test]
    fn clean_send_recv_cycle_has_no_violations() {
        let mut a = HbTracker::new(0, 2);
        let mut b = HbTracker::new(1, 2);
        let c = a.on_send();
        let p = pkt(0, 1, c);
        b.on_delivered(&p);
        b.on_consumed(&p);
        assert!(a.take_violations().is_empty());
        assert!(b.take_violations().is_empty());
    }

    #[test]
    fn duplicate_delivery_is_stale() {
        let mut a = HbTracker::new(0, 2);
        let mut b = HbTracker::new(1, 2);
        let p = pkt(0, 1, a.on_send());
        b.on_delivered(&p);
        b.on_delivered(&p); // duplicated in transport
        let v = b.take_violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], HbViolation::StaleDelivery { src: 0, .. }));
    }

    #[test]
    fn reordered_delivery_is_stale() {
        let mut a = HbTracker::new(0, 2);
        let mut b = HbTracker::new(1, 2);
        let first = pkt(0, 1, a.on_send());
        let second = pkt(0, 1, a.on_send());
        b.on_delivered(&second);
        b.on_delivered(&first); // transport reordered the pair
        let v = b.take_violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], HbViolation::StaleDelivery { .. }));
    }

    #[test]
    fn future_self_knowledge_is_flagged() {
        let mut b = HbTracker::new(1, 2);
        // Rank 0 claims to have seen 5 of rank 1's events; rank 1 has
        // had none.
        let p = pkt(0, 1, vec![1, 5]);
        b.on_delivered(&p);
        b.on_consumed(&p);
        let v = b.take_violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            HbViolation::FutureSelfKnowledge {
                claimed: 5,
                actual: 0,
                ..
            }
        ));
    }

    #[test]
    fn self_send_is_not_future_knowledge() {
        let mut a = HbTracker::new(0, 1);
        let p = pkt(0, 1, a.on_send());
        a.on_delivered(&p);
        a.on_consumed(&p);
        assert!(a.take_violations().is_empty());
    }

    #[test]
    fn clockless_packets_are_ignored() {
        let mut b = HbTracker::new(1, 2);
        let p = Packet {
            src: 0,
            tag: 1,
            sent_vtime: 0.0,
            clock: None,
            payload: Payload::Empty,
        };
        b.on_delivered(&p);
        b.on_consumed(&p);
        assert!(b.take_violations().is_empty());
    }

    #[test]
    fn unconsumed_at_exit_is_reported() {
        let mut a = HbTracker::new(0, 2);
        let mut b = HbTracker::new(1, 2);
        let p = pkt(0, 9, a.on_send());
        b.on_delivered(&p);
        b.on_unconsumed(&p);
        let v = b.take_violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            HbViolation::UnconsumedAtExit { src: 0, tag: 9 }
        ));
    }
}
