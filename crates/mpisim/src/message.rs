//! Message payloads.
//!
//! The distributed trainer exchanges parameter vectors (`f32`), loss
//! partials (`f64`), control words (`u64`), and occasionally raw
//! bytes. A small closed enum keeps the transport simple and lets the
//! tracer attribute byte counts without reflection.

/// Typed message body.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Empty body (barriers, acks, control signals).
    Empty,
    /// Single-precision vector (parameters, gradients, directions).
    F32(Vec<f32>),
    /// Double-precision vector (loss sums, scalar reductions).
    F64(Vec<f64>),
    /// Unsigned words (commands, counts, seeds).
    U64(Vec<u64>),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Half-precision wire image of an `F32` payload, produced by the
    /// wire codec (see `crate::wire`); 2 bytes per element.
    F16(Vec<u16>),
    /// Int8-quantized wire image of an `F32` payload: element `i`
    /// decodes to `q[i] as f32 * scale`; 1 byte per element plus the
    /// 4-byte scale.
    QI8 {
        /// Deterministic dequantization scale (`max_abs / 127`).
        scale: f32,
        /// Quantized values in `[-127, 127]`.
        q: Vec<i8>,
    },
}

impl Payload {
    /// Size on the (simulated) wire, in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::F32(v) => 4 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
            Payload::Bytes(v) => v.len() as u64,
            Payload::F16(v) => 2 * v.len() as u64,
            Payload::QI8 { q, .. } => 4 + q.len() as u64,
        }
    }

    /// Extract an `f32` vector or panic with a protocol error.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            // pdnn-lint: allow(l3-no-unwrap): documented panicking extractor — a payload-kind mismatch is a protocol bug
            other => panic!("protocol error: expected F32, got {}", other.kind()),
        }
    }

    /// Extract an `f64` vector or panic with a protocol error.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            // pdnn-lint: allow(l3-no-unwrap): documented panicking extractor — a payload-kind mismatch is a protocol bug
            other => panic!("protocol error: expected F64, got {}", other.kind()),
        }
    }

    /// Extract a `u64` vector or panic with a protocol error.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            // pdnn-lint: allow(l3-no-unwrap): documented panicking extractor — a payload-kind mismatch is a protocol bug
            other => panic!("protocol error: expected U64, got {}", other.kind()),
        }
    }

    /// Element count (bytes count as elements for `Bytes`).
    pub fn elems(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F32(v) => v.len(),
            Payload::F64(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Bytes(v) => v.len(),
            Payload::F16(v) => v.len(),
            Payload::QI8 { q, .. } => q.len(),
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F32(_) => "F32",
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
            Payload::F16(_) => "F16",
            Payload::QI8 { .. } => "QI8",
        }
    }
}

/// A routed message.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending rank.
    pub src: usize,
    /// User- or collective-assigned tag.
    pub tag: u64,
    /// Sender's virtual time when the transfer completed (0 when
    /// virtual timing is off). See `crate::vtime`.
    pub sent_vtime: f64,
    /// Sender's vector clock at send time (`None` unless the world
    /// runs with happens-before tracking — see `crate::hb`). Metadata
    /// for the race detector; not counted as wire bytes.
    pub clock: Option<Vec<u64>>,
    /// Body.
    pub payload: Payload,
}

/// Source selector for receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Match any sender (MPI_ANY_SOURCE).
    Any,
    /// Match one specific rank.
    Of(usize),
}

impl Src {
    /// Does a packet from `src` match this selector?
    #[inline]
    pub fn matches(self, src: usize) -> bool {
        match self {
            Src::Any => true,
            Src::Of(r) => r == src,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting() {
        assert_eq!(Payload::Empty.size_bytes(), 0);
        assert_eq!(Payload::F32(vec![0.0; 10]).size_bytes(), 40);
        assert_eq!(Payload::F64(vec![0.0; 10]).size_bytes(), 80);
        assert_eq!(Payload::U64(vec![0; 3]).size_bytes(), 24);
        assert_eq!(Payload::Bytes(vec![1, 2, 3]).size_bytes(), 3);
        assert_eq!(Payload::F16(vec![0; 10]).size_bytes(), 20);
        assert_eq!(
            Payload::QI8 {
                scale: 1.0,
                q: vec![0; 10]
            }
            .size_bytes(),
            14
        );
    }

    #[test]
    fn typed_extraction() {
        assert_eq!(Payload::F32(vec![1.5]).into_f32(), vec![1.5]);
        assert_eq!(Payload::F64(vec![2.5]).into_f64(), vec![2.5]);
        assert_eq!(Payload::U64(vec![7]).into_u64(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "protocol error")]
    fn wrong_type_panics() {
        Payload::Empty.into_f32();
    }

    #[test]
    fn src_matching() {
        assert!(Src::Any.matches(5));
        assert!(Src::Of(3).matches(3));
        assert!(!Src::Of(3).matches(4));
    }
}
